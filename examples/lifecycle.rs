//! Version-lifecycle tour: pinning snapshots, GC'ing history, and
//! keeping the log bounded with checkpoint-then-truncate compaction —
//! full snapshot pages first, incremental pages once a base exists.
//!
//! Run with: `cargo run --release --example lifecycle`

use store::{Op, PacStore, RetentionPolicy, Router, ShardedStore, StoreOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("pacstore-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- History, pins, and GC --------------------------------------
    let opts = StoreOptions {
        history_limit: 64,
        ..StoreOptions::default()
    };
    let db: PacStore<u64, u64> = PacStore::open_with(dir.join("kv"), opts).expect("open");
    for round in 0..10u64 {
        db.commit((0..1_000).map(|k| Op::Put(k, round)).collect()).expect("commit");
    }
    // Pin version 4: GC must keep it readable no matter the policy.
    db.pin_version(4).expect("pin");
    let stats = db.gc(RetentionPolicy::keep_last(2));
    println!(
        "gc: dropped {} versions, kept {}, reclaimed {} tree nodes",
        stats.versions_dropped, stats.versions_retained, stats.nodes_reclaimed
    );
    let pinned = db.snapshot_at(4).expect("pinned snapshot");
    assert_eq!(pinned.get(&7), Some(3)); // contents frozen at round 3
    assert!(db.snapshot_at(5).is_err()); // unpinned history is gone
    db.unpin_version(4).expect("unpin");

    // --- Compaction: bounded WAL, incremental checkpoints ------------
    // The first compaction writes a full snapshot page; later ones
    // diff against the pinned checkpoint and persist only new
    // subtrees, chaining incremental pages back to the full base.
    for round in 0..4u64 {
        db.commit(vec![Op::Put(round, 100 + round)]).expect("write");
        let at = db.compact().expect("compact");
        let ls = db.lifecycle_stats();
        println!(
            "compact @ v{at}: {} full / {} incremental pages, {} WAL bytes truncated",
            ls.full_saves, ls.incremental_saves, ls.wal_bytes_truncated
        );
    }
    assert_eq!(db.latest_checkpoint(), Some(db.current_version()));
    let expect_len = db.len();
    drop(db);

    // Reopen walks the incremental chain back to the full page, then
    // replays whatever WAL suffix the last compaction left behind.
    let db: PacStore<u64, u64> = PacStore::open(dir.join("kv")).expect("reopen");
    assert_eq!(db.len(), expect_len);
    assert_eq!(db.get(&3), Some(103));
    println!("reopened at v{} with {} keys", db.current_version(), db.len());
    drop(db);

    // --- The same lifecycle, sharded ---------------------------------
    let sharded: ShardedStore<u64, u64> = ShardedStore::open_or_create(
        dir.join("sharded"),
        Router::uniform_span(4, 4_000),
        StoreOptions::default(),
    )
    .expect("open sharded");
    for round in 0..3u64 {
        sharded
            .commit((0..4_000).map(|k| Op::Put(k, round)).collect())
            .expect("commit");
        sharded.compact().expect("compact");
    }
    let ls = sharded.lifecycle_stats();
    println!(
        "sharded: checkpoint at global v{:?}, {} full / {} incremental pages across 4 shards",
        sharded.latest_checkpoint(),
        ls.full_saves,
        ls.incremental_saves
    );
    assert_eq!(sharded.latest_checkpoint(), Some(3));

    let _ = std::fs::remove_dir_all(&dir);
    println!("lifecycle example finished");
}
