//! Sharded pacstore tour: key-range partitioning, atomic cross-shard
//! commits, consistent version-vector snapshots, and restart recovery.
//!
//! Run with: `cargo run --release --example sharded_store`

use store::{Op, Router, ShardedStore, StoreOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("sharded-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Partition the keyspace into 4 ranges ------------------------
    // Shard 0 owns keys < 250k, shard 1 [250k, 500k), and so on; keys
    // >= 750k land in the last shard. The map is persisted, so a
    // reopen recovers the exact same routing.
    let router = Router::uniform_span(4, 1_000_000);
    let db: ShardedStore<u64, u64> =
        ShardedStore::open_or_create(&dir, router, StoreOptions::default()).expect("open");
    println!("{} shards over 1M keys", db.shard_count());

    // --- One commit, many shards, one atomic version -----------------
    // The batch is split by range and applied to the shards in
    // parallel; the two-phase manifest makes it all-or-nothing.
    let v1 = db
        .commit((0..1_000_000u64).step_by(10).map(|k| Op::Put(k, 0)).collect())
        .expect("bulk load");
    println!(
        "bulk load -> global version {v1}, version vector {:?}, {} keys",
        db.version_vector(),
        db.len()
    );

    // --- Snapshots pin a consistent cross-shard version vector -------
    let snap = db.snapshot();
    db.commit(vec![Op::Put(10, 1), Op::Put(900_000, 1)]).expect("cross-shard update");
    assert_eq!(snap.get(&10), Some(0)); // the pinned vector is immune
    assert_eq!(snap.get(&900_000), Some(0));
    println!(
        "pinned snapshot v{} still consistent; live store at v{}",
        snap.version(),
        db.current_version()
    );

    // Ordered scans compose across shards (ranges are contiguous).
    let window = db.snapshot().range_entries(&249_990, &250_020);
    println!("range scan across a shard boundary: {window:?}");

    // --- Durability: parallel save, then restart ----------------------
    let saved = db.save().expect("save");
    db.commit(vec![Op::Put(123, 9), Op::Put(750_123, 9)]).expect("post-save commit");
    let expected_len = db.len();
    drop(db);

    let db: ShardedStore<u64, u64> = ShardedStore::open(&dir).expect("reopen");
    println!(
        "reopened: global v{} (checkpoint v{saved} + per-shard WAL replay), {} keys",
        db.current_version(),
        db.len()
    );
    assert_eq!(db.len(), expected_len);
    assert_eq!(db.get(&123), Some(9)); // replayed from shard 0's WAL
    assert_eq!(db.get(&750_123), Some(9)); // replayed from shard 3's WAL

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
