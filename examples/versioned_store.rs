//! pacstore tour: commits become versions, reads time-travel, and the
//! whole store survives a restart via snapshot + log replay.
//!
//! Run with: `cargo run --release --example versioned_store`

use store::{Op, PacStore};

fn main() {
    let dir = std::env::temp_dir().join(format!("pacstore-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Commit: batches become immutable versions -------------------
    let db: PacStore<u64, u64> = PacStore::open(&dir).expect("open");
    let v1 = db
        .commit((0..1_000_000u64).map(|k| Op::Put(k, 0)).collect())
        .expect("bulk load");
    let v2 = db
        .commit(vec![Op::Put(42, 1), Op::Put(43, 1), Op::Delete(0)])
        .expect("update");
    println!("bulk load -> version {v1} ({} keys)", db.len());
    println!("update    -> version {v2}");

    // --- Time travel: any retained version is an O(1) snapshot -------
    let now = db.snapshot();
    let before = db.snapshot_at(v1).expect("history");
    println!(
        "key 42: was {:?} at v{}, is {:?} at v{}",
        before.get(&42),
        before.version(),
        now.get(&42),
        now.version()
    );
    // Pinned snapshots are immune to later writes.
    db.commit(vec![Op::Delete(42)]).expect("later write");
    assert_eq!(now.get(&42), Some(1));

    // --- Durability: save a snapshot page, commit more, restart ------
    let saved = db.save().expect("save");
    db.commit(vec![Op::Put(7_000_000, 7)]).expect("post-save commit");
    let expected_len = db.len();
    drop(db);

    let db: PacStore<u64, u64> = PacStore::open(&dir).expect("reopen");
    println!(
        "reopened: version {} (saved snapshot v{saved} + log replay), {} keys",
        db.current_version(),
        db.len()
    );
    assert_eq!(db.len(), expected_len);
    assert_eq!(db.get(&7_000_000), Some(7)); // replayed from the log
    assert_eq!(db.get(&42), None);

    let snap_bytes = std::fs::metadata(db.dir().unwrap().join(store::SNAPSHOT_FILE))
        .expect("snapshot file")
        .len();
    println!(
        "snapshot page: {:.1} MiB for {} u64->u64 entries ({:.1} bytes/entry)",
        snap_bytes as f64 / (1 << 20) as f64,
        db.len(),
        snap_bytes as f64 / db.len() as f64
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
