//! Spatial analytics: 1D interval stabbing and 2D range queries
//! (Section 9's interval-tree and range-tree applications).
//!
//! Run with: `cargo run --release --example spatial_queries`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial::{IntervalTree, RangeTree2D};

fn main() {
    parlay::run(|| {
        let mut rng = StdRng::seed_from_u64(7);

        // --- Interval tree: TCP-connection-style sessions -----------------
        let sessions: Vec<(u64, u64)> = (0..200_000)
            .map(|_| {
                let start = rng.gen_range(0..1_000_000u64);
                (start, start + rng.gen_range(1..2_000))
            })
            .collect();
        let tree = IntervalTree::from_intervals(&sessions);
        println!(
            "interval tree: {} sessions, {:.1} MiB",
            tree.len(),
            tree.space_bytes() as f64 / (1 << 20) as f64
        );
        for t in [0u64, 250_000, 500_000, 999_999] {
            println!("  {} sessions active at t = {t}", tree.stab(t).len());
        }

        // Functional updates: end one session, open another.
        let updated = tree.remove(sessions[0].0, sessions[0].1).insert(0, 2_000_000);
        println!(
            "  after update: {} active at t=1.5M (old tree: {})",
            updated.stab(1_500_000).len(),
            tree.stab(1_500_000).len()
        );

        // --- 2D range tree: point-in-rectangle analytics -------------------
        let points: Vec<(u32, u32)> = (0..200_000)
            .map(|_| (rng.gen_range(0..100_000), rng.gen_range(0..100_000)))
            .collect();
        let rt = RangeTree2D::from_points(&points);
        let (outer, inner) = rt.space_bytes();
        println!(
            "range tree: {} points, outer {:.1} MiB + inner {:.1} MiB",
            rt.len(),
            outer as f64 / (1 << 20) as f64,
            inner as f64 / (1 << 20) as f64
        );
        let count = rt.count(10_000, 10_000, 30_000, 40_000);
        println!("  points in [10k,30k]x[10k,40k]: {count}");
        let sample = rt.report(10_000, 10_000, 10_500, 10_500);
        println!("  small window holds {} points: {:?}", sample.len(), &sample[..sample.len().min(5)]);
    });
}
