//! pacserve tour: serving a durable sharded store over the framed wire
//! protocol — commits, snapshot reads, pins, retries, and a graceful
//! shutdown.
//!
//! Tries a real TCP loopback socket first and falls back to the
//! in-process pipe transport (identical framed byte stream) when the
//! environment forbids sockets, so the example runs anywhere CI does.
//!
//! Run with: `cargo run --release --example server`

use server::{serve_pipe, serve_tcp, Client, ClientOptions, ServerOptions};
use store::{Op, Router, ShardedStore, StoreOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("server-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- A durable sharded store behind a server ---------------------
    let db: ShardedStore<u64, u64> = ShardedStore::open_or_create(
        &dir,
        Router::uniform_span(4, 1_000_000),
        StoreOptions::default(),
    )
    .expect("open");

    // Port 0 = ephemeral; sandboxes without sockets use the pipe.
    let (mut handle, mut client): (_, Client<u64, u64>) =
        match serve_tcp(db.clone(), "127.0.0.1:0", ServerOptions::default()) {
            Ok(handle) => {
                let addr = handle.addr().expect("bound address");
                println!("serving over tcp on {addr}");
                (handle, Client::connect_tcp(addr, ClientOptions::default()))
            }
            Err(e) => {
                println!("serving over in-process pipe (tcp unavailable: {e})");
                let (handle, connector) = serve_pipe(db.clone(), ServerOptions::default());
                (handle, Client::connect_pipe(connector, ClientOptions::default()))
            }
        };

    // --- Writes funnel into the store's group commit ------------------
    let v1 = client
        .put_batch((0..10_000u64).map(|k| Op::Put(k, k * 2)).collect())
        .expect("bulk put");
    println!("bulk put -> global version {v1}");

    // --- Reads pin a consistent snapshot per request ------------------
    assert_eq!(client.get(21).expect("get"), Some(42));
    let window = client.range(4_998, 5_002, 0, None).expect("range");
    println!("range [4998, 5002] over the wire: {window:?}");

    let (global, locals) = client.snapshot().expect("snapshot");
    println!("version vector: global v{global}, locals {locals:?}");

    // --- Pins survive on the server across later commits --------------
    client.pin(v1).expect("pin");
    client.put_batch(vec![Op::Put(21, 0)]).expect("overwrite");
    assert_eq!(client.get(21).expect("live read"), Some(0));
    assert_eq!(client.get_at(21, Some(v1)).expect("pinned read"), Some(42));
    println!("pinned v{v1} still reads the old value while the live head moved on");
    client.unpin(v1).expect("unpin");

    // --- The server watches itself ------------------------------------
    let stats = client.stats().expect("stats");
    let served = stats
        .lines()
        .find(|l| l.starts_with("pacserve_requests_total"))
        .expect("request counter");
    println!("server-side metric: {served}");

    // --- Graceful shutdown drains in-flight requests -------------------
    handle.shutdown();
    println!("server drained and stopped");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
