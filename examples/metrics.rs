//! Observability tour: run a store through its whole lifecycle —
//! commits, reads, snapshots, GC, checkpoint, compaction — then scrape
//! the process-wide `obs` registry both ways (Prometheus text and
//! JSON).
//!
//! Nothing here configures anything: every `PacStore`/`ShardedStore`
//! records its write-path stages into `obs::global()` unconditionally
//! (relaxed atomics; the registry lock is never taken on a hot path),
//! so any binary can scrape latency percentiles after the fact.
//!
//! Run with: `cargo run --release --example metrics`

use store::{Op, PacStore, RetentionPolicy, Router, ShardedStore, StoreOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("pacstore-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Exercise the write path -------------------------------------
    let db: PacStore<u64, u64> = PacStore::open(dir.join("single")).expect("open");
    for i in 0..50u64 {
        db.commit((0..200).map(|k| Op::Put(i * 200 + k, i)).collect()).expect("commit");
    }
    let snap = db.snapshot();
    for k in (0..10_000u64).step_by(7) {
        std::hint::black_box(db.get(&k));
    }
    std::hint::black_box(db.range_entries(&100, &400));
    db.gc(RetentionPolicy { keep_last: 2 });
    db.save().expect("save");
    db.commit(vec![Op::Put(1, 99)]).expect("commit");
    db.compact().expect("compact");
    drop(snap);

    // A sharded store records the same schema with per-shard labels.
    let sharded: ShardedStore<u64, u64> = ShardedStore::open_or_create(
        dir.join("sharded"),
        Router::uniform_span(4, 10_000),
        StoreOptions::default(),
    )
    .expect("open sharded");
    for i in 0..20u64 {
        sharded
            .commit((0..1_000).map(|k| Op::Put((k * 13 + i) % 10_000, i)).collect())
            .expect("commit");
    }
    sharded.compact().expect("compact");

    // --- Scrape: Prometheus text -------------------------------------
    println!("=== render_text() — grep-able, Prometheus exposition ===\n");
    let text = obs::global().render_text();
    // The full scrape is long; show the headline series.
    for line in text.lines() {
        if line.starts_with("pacstore_commit_ns")
            || line.starts_with("pacstore_compact")
            || line.starts_with("pacstore_wal_append_ns{shard")
            || line.starts_with("cpam_")
            || line.starts_with("pacstore_incr_chain_depth")
        {
            println!("{line}");
        }
    }

    // --- Scrape: percentiles from a histogram snapshot ---------------
    println!("\n=== commit latency, straight from the registry ===\n");
    let commit = obs::global().histogram_snapshot("pacstore_commit_ns").expect("recorded");
    println!(
        "{} commits: p50 = {} ns, p99 = {} ns, max = {} ns",
        commit.count(),
        commit.p50(),
        commit.p99(),
        commit.max_value()
    );
    // Merge the per-shard WAL series into one distribution.
    let wal_all = obs::global().histogram_snapshot_prefixed("pacstore_wal_append_ns{");
    println!(
        "{} per-shard WAL appends merged: p99 = {} ns",
        wal_all.count(),
        wal_all.p99()
    );

    // --- Scrape: JSON ------------------------------------------------
    let json = obs::global().snapshot_json();
    println!("\n=== snapshot_json() — first 400 bytes ===\n");
    println!("{}...", &json[..400.min(json.len())]);

    let _ = std::fs::remove_dir_all(&dir);
}
