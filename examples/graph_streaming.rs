//! Graph streaming: batch updates racing read-only analytics on
//! snapshots — the scenario motivating Aspen and Section 10.5.
//!
//! One thread applies rMAT edge batches; another runs BFS on whatever
//! version was current when it started. Because versions are immutable,
//! no locks are needed and every query sees a consistent graph.
//!
//! Run with: `cargo run --release --example graph_streaming`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use graphs::snapshot::bfs;
use graphs::PacGraph;

fn main() {
    let scale = 14;
    let initial = graphs::rmat::symmetrize(&graphs::rmat::rmat_edges(scale, 100_000, 1));
    let n = 1usize << scale;
    let graph = parlay::run(|| PacGraph::from_edges(n, &initial));
    println!(
        "initial graph: {} vertices, {} directed edges, {:.1} MiB",
        graph.num_vertices(),
        graph.num_edges(),
        graph.space_bytes() as f64 / (1 << 20) as f64
    );

    let current = Mutex::new(graph);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writer: applies 50 batches of 1000 directed edges each.
        scope.spawn(|| {
            for round in 0..50 {
                let batch = graphs::rmat::rmat_edges(scale, 1000, 100 + round);
                let next = {
                    let g = current.lock().expect("writer lock").clone();
                    parlay::run(|| g.insert_edges(batch))
                };
                *current.lock().expect("writer publish") = next;
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Reader: repeatedly snapshots and runs BFS, concurrently.
        scope.spawn(|| {
            let mut queries = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let snap = current.lock().expect("reader lock").clone();
                let fs = snap.flat_snapshot();
                let parents = parlay::run(|| bfs(&fs, 0));
                let reached = parents.iter().filter(|&&p| p != u32::MAX).count();
                queries += 1;
                if queries.is_multiple_of(10) {
                    println!(
                        "  query {queries}: BFS reached {reached} vertices on a {}-edge version",
                        snap.num_edges()
                    );
                }
            }
            println!("reader finished {queries} BFS queries while writes proceeded");
        });
    });

    let final_graph = current.into_inner().expect("final graph");
    println!(
        "final graph: {} directed edges, {:.1} MiB",
        final_graph.num_edges(),
        final_graph.space_bytes() as f64 / (1 << 20) as f64
    );
}
