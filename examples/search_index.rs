//! A small search engine: build a weighted inverted index over a
//! Zipf-distributed corpus, run AND/OR/top-k queries, and merge in new
//! documents while old snapshots keep serving (Section 9's application).
//!
//! Run with: `cargo run --release --example search_index`

use invidx::{Corpus, InvertedIndex};

fn main() {
    parlay::run(|| {
        let corpus = Corpus::zipf(20_000, 120, 50_000, 42);
        println!(
            "corpus: {} documents, {} words total, vocabulary {}",
            corpus.docs.len(),
            corpus.total_words(),
            corpus.vocab
        );

        let index = InvertedIndex::build(&corpus.triples());
        println!(
            "index: {} words, {} postings, {:.1} MiB",
            index.num_words(),
            index.num_postings(),
            index.space_bytes() as f64 / (1 << 20) as f64
        );

        // Top-10 documents for the most common word.
        let top = index.top_k(0, 10);
        println!("top-10 docs for word 0 (score): {top:?}");

        // AND query over the two most common words, ranked.
        let hits = index.and_top_k(0, 1, 10);
        println!("word0 AND word1, top 10 by combined score: {hits:?}");

        // OR query over two mid-frequency words.
        let either = index.or_query(500, 501);
        println!("word500 OR word501 matches {} documents", either.len());

        // Merge a fresh batch of documents; the old snapshot still works.
        let snapshot = index.clone();
        let more = Corpus::zipf(2_000, 120, 50_000, 77);
        let fresh: Vec<(u32, u32, u32)> = more
            .triples()
            .into_iter()
            .map(|(w, d, c)| (w, d + 20_000, c))
            .collect();
        let updated = index.add_documents(&fresh);
        println!(
            "after merge: {} words (snapshot still {})",
            updated.num_words(),
            snapshot.num_words()
        );
    });
}
