//! Ownership-aware updates: the refcount-1 in-place fast path.
//!
//! Every PaC-tree update has two flavours:
//!
//! * the persistent `&self` methods (`insert`, `remove`, `union`, ...)
//!   return a new collection and leave the old one intact — the old
//!   version keeps a reference to every node, so the update path-copies;
//! * the consuming `*_owned` methods take the collection by value. For
//!   each node on the update path the tree checks, at the moment of the
//!   rebuild, whether the caller holds the *only* reference
//!   (`Arc` refcount 1) — and if so overwrites the node in place
//!   instead of allocating a copy.
//!
//! Holding a clone anywhere (a snapshot, an old version, a reader)
//! makes the shared nodes revert to copy-on-write automatically, so
//! persistence semantics never change; only the allocation traffic
//! does. Run with `cargo run --release --example inplace_updates`.

use cpam::{stats, PacMap};

fn main() {
    const N: u64 = 100_000;
    const OPS: u64 = 10_000;

    let base: PacMap<u64, u64> = PacMap::from_pairs((0..N).map(|i| (i * 2, i)).collect());

    // --- Consuming loop: uniquely owned, nodes rebuilt in place. -----
    let before = stats::read();
    let mut hot = base.clone();
    for i in 0..OPS {
        // After the first op `hot` shares nothing with `base` on the
        // update path, so the whole spine is refcount-1.
        hot = hot.insert_owned(i * 31 % (4 * N), i);
    }
    let owned = stats::read().delta(before);
    println!(
        "consuming loop:  {:>7} node rebuilds reused in place, {:>7} copied  ({:.1}% reuse)",
        owned.nodes_reused,
        owned.nodes_copied,
        100.0 * owned.reuse_ratio()
    );

    // --- Persistent loop: every version pinned, every path copied. ---
    let before = stats::read();
    let mut versions = vec![base.clone()];
    for i in 0..OPS / 10 {
        // `insert` (&self) keeps the previous version alive; with the
        // version vector pinning each one, nothing is uniquely owned.
        let next = versions.last().unwrap().insert(i * 31 % (4 * N), i);
        versions.push(next);
    }
    let persistent = stats::read().delta(before);
    println!(
        "persistent loop: {:>7} node rebuilds reused in place, {:>7} copied  ({:.1}% reuse)",
        persistent.nodes_reused,
        persistent.nodes_copied,
        100.0 * persistent.reuse_ratio()
    );

    // Safety: the refcount check is per node, so snapshots stay frozen
    // no matter which flavour ran.
    let snapshot = hot.clone();
    let len_at_snapshot = snapshot.len();
    hot = hot.insert_owned(u64::MAX, 42);
    assert_eq!(snapshot.len(), len_at_snapshot);
    assert_eq!(snapshot.find(&u64::MAX), None);
    assert_eq!(hot.find(&u64::MAX), Some(42));
    assert_eq!(base.len(), N as usize);
    println!("snapshots stay immutable: pinned version unchanged after consuming update");
}
