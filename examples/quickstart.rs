//! Quickstart: the three CPAM collection types, persistence, and
//! compression in one tour.
//!
//! Run with: `cargo run --release --example quickstart`

use cpam::{DiffSet, PacMap, PacSeq, PacSet, SumAug};

fn main() {
    parlay::run(|| {
        // --- Ordered sets ------------------------------------------------
        let primes: PacSet<u64> = PacSet::from_keys(vec![2, 3, 5, 7, 11, 13]);
        let odds: PacSet<u64> = PacSet::from_keys((0..8).map(|i| 2 * i + 1).collect());
        println!("|primes ∪ odds| = {}", primes.union(&odds).len());
        println!("|primes ∩ odds| = {}", primes.intersect(&odds).len());

        // Every operation is functional: `primes` is unchanged.
        assert_eq!(primes.len(), 6);

        // --- Compression -------------------------------------------------
        // A difference-encoded set stores dense 8-byte keys in ~1 byte.
        let keys: Vec<u64> = (0..1_000_000).map(|i| 5_000_000 + i * 2).collect();
        let plain: PacSet<u64> = PacSet::from_keys(keys.clone());
        let packed: DiffSet<u64> = DiffSet::from_keys(keys);
        println!(
            "1M keys: raw blocks {:.1} MiB, difference-encoded {:.1} MiB",
            plain.space_stats().total_bytes as f64 / (1 << 20) as f64,
            packed.space_stats().total_bytes as f64 / (1 << 20) as f64,
        );

        // --- Augmented maps ----------------------------------------------
        // Keep a running sum of all values, queryable per key range.
        let sales: PacMap<u64, u64, SumAug> =
            PacMap::from_pairs((0..10_000u64).map(|day| (day, day % 97)).collect());
        println!("total sales = {}", sales.aug_value());
        println!("sales in days [100, 199] = {}", sales.aug_range(&100, &199));

        // --- Snapshots ---------------------------------------------------
        // A clone is O(1); updates never disturb existing readers.
        let snapshot = sales.clone();
        let updated = sales.multi_insert((0..100u64).map(|d| (d, 1_000)).collect());
        println!(
            "snapshot total {} vs updated total {}",
            snapshot.aug_value(),
            updated.aug_value()
        );

        // --- Sequences ---------------------------------------------------
        // O(log n + B) append and subsequence, unlike O(n) array copies.
        let a: PacSeq<u64> = PacSeq::from_slice(&(0..500_000).collect::<Vec<_>>());
        let b: PacSeq<u64> = PacSeq::from_slice(&(500_000..1_000_000).collect::<Vec<_>>());
        let joined = a.append(&b);
        println!(
            "appended sequence: len {}, element[750_000] = {:?}, sorted: {}",
            joined.len(),
            joined.nth(750_000),
            joined.is_sorted()
        );
    });
}
