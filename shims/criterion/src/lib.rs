//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmark harness exposing the criterion 0.5 API
//! subset `benches/micro.rs` uses: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function` with a [`Bencher`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (use with
//! `harness = false`).
//!
//! Instead of criterion's statistical analysis it reports the mean,
//! minimum, and maximum wall-clock time per iteration over the
//! configured number of samples — enough to eyeball regressions until
//! the real criterion (or a custom harness) replaces it.

use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        per_iter: Vec::new(),
    };
    f(&mut bencher);
    let times = &bencher.per_iter;
    if times.is_empty() {
        println!("  {id:<24} (no measurements)");
        return;
    }
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let min = times.iter().min().unwrap();
    let max = times.iter().max().unwrap();
    println!(
        "  {id:<24} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        times.len()
    );
}

/// Timer handed to a benchmark closure; call [`Bencher::iter`] once.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, first warming up, then collecting timed samples.
    ///
    /// Each sample runs `f` enough times to exceed a minimum measurable
    /// window and records the mean per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up first so one-time costs (lazy pool spawn, cold caches)
        // don't skew the calibration of iterations-per-sample.
        let warmup_deadline = Instant::now() + Duration::from_millis(20);
        while Instant::now() < warmup_deadline {
            std::hint::black_box(f());
        }
        let calibration = Instant::now();
        std::hint::black_box(f());
        let once = calibration.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters_per_sample =
            ((target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)) as u32;

        self.per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.per_iter.push(start.elapsed() / iters_per_sample);
        }
    }
}

/// Bundles benchmark functions into one runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn group_macro_produces_runnable_fn() {
        demo_group();
    }
}
