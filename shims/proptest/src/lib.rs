//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness exposing the subset of
//! the proptest 1.x API its test suites use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, [`any`], integer-range strategies,
//! tuple strategies, [`prop::collection::vec`], [`prop::sample::select`],
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, accepted for an offline build:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   (`Debug`-formatted), the case number, and the exact RNG seed, but
//!   does not minimize.
//! * **Deterministic and replayable.** Case `i` of every test derives
//!   its RNG seed from `i` and the test's name alone, so runs are
//!   reproducible without a persistence file. A failure prints
//!   `PROPTEST_SEED=<seed>`; setting that environment variable makes
//!   every test run exactly one case with precisely that seed — the
//!   local replay of a CI failure.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng as _};

/// Deterministic generator driving all strategies (the workspace's
/// `rand` shim, seeded per case).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The seed [`TestRng::for_case`] uses for one case of one test.
    /// Printed on failure so the case can be replayed exactly via the
    /// `PROPTEST_SEED` environment variable.
    pub fn seed_for_case(case: u64, test_salt: u64) -> u64 {
        case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(test_salt)
            .wrapping_add(0x5851_F42D_4C95_7F2D)
    }

    /// Generator seeded with exactly `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Generator for one test case, salted per test (so different tests
    /// with identical strategies get distinct streams).
    pub fn for_case(case: u64, test_salt: u64) -> Self {
        Self::from_seed(Self::seed_for_case(case, test_salt))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }
}

/// Error carried out of a failing test case body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            message: reason.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The `PROPTEST_SEED` environment variable, parsed once: when set,
/// every `proptest!` test runs exactly one case seeded with this value,
/// replaying a printed failure.
#[doc(hidden)]
pub fn env_seed() -> Option<u64> {
    static ENV_SEED: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *ENV_SEED.get_or_init(|| {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
    })
}

/// FNV-1a hash of a test name, used to salt its RNG streams.
#[doc(hidden)]
pub fn name_salt(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Extracts a readable message from a caught panic payload.
#[doc(hidden)]
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Uniform choice among equally-weighted alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds a union from its arms.
    ///
    /// # Panics
    /// If `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws a value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy generating any value of `T` (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {:?}", self
                );
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($t:ident . $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`) from real proptest.

    pub mod collection {
        //! Strategies for collections.

        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<T>` with lengths drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.size.end - self.size.start;
                let len = if span == 0 {
                    self.size.start
                } else {
                    self.size.start + rng.below(span)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Strategies sampling from explicit value sets.

        use super::super::{Strategy, TestRng};
        use std::fmt;

        /// Strategy that picks one of a fixed list of values.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Picks uniformly from `options`.
        ///
        /// # Panics
        /// At generation time if `options` is empty.
        pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
            Select { options }
        }

        impl<T: Clone + fmt::Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len())].clone()
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// body runs once per generated case, with `prop_assert*` failures and
/// `?`-propagated [`TestCaseError`]s reported alongside the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         #[test]
         fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let salt = $crate::name_salt(concat!(module_path!(), "::", stringify!($name)));
                // PROPTEST_SEED replays exactly one case with that seed.
                let cases: u64 = if $crate::env_seed().is_some() { 1 } else { config.cases as u64 };
                for case in 0..cases {
                    let seed = $crate::env_seed()
                        .unwrap_or_else(|| $crate::TestRng::seed_for_case(case, salt));
                    let mut rng = $crate::TestRng::from_seed(seed);
                    let ($($pat,)+) =
                        ($( $crate::Strategy::generate(&($strategy), &mut rng), )+);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    let error = match outcome {
                        Ok(Ok(())) => None,
                        Ok(Err(error)) => Some(error.to_string()),
                        Err(payload) => Some($crate::panic_message(payload)),
                    };
                    if let Some(error) = error {
                        // Generation is deterministic per seed, so the
                        // consumed inputs can be regenerated for the report.
                        let mut rng = $crate::TestRng::from_seed(seed);
                        let values =
                            ($( $crate::Strategy::generate(&($strategy), &mut rng), )+);
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs: {:#?}\nreproduce with: PROPTEST_SEED={}",
                            case + 1,
                            config.cases,
                            error,
                            values,
                            seed,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Uniform choice among strategies that generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u16),
        Clear,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vecs_respect_size_bounds(xs in prop::collection::vec(any::<u32>(), 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        #[test]
        fn select_picks_from_options(b in prop::sample::select(vec![1usize, 2, 5])) {
            prop_assert!(b == 1 || b == 2 || b == 5);
        }

        #[test]
        fn oneof_and_map_compose(
            op in prop_oneof![
                any::<u16>().prop_map(Op::Add),
                (0u8..1).prop_map(|_| Op::Clear),
            ],
            pair in (any::<u16>(), 0u64..10),
        ) {
            match op {
                Op::Add(_) | Op::Clear => {}
            }
            prop_assert!(pair.1 < 10);
        }

        #[test]
        fn question_mark_propagates(x in 0u32..100) {
            let checked: Result<u32, String> = Ok(x);
            let value = checked.map_err(TestCaseError::fail)?;
            prop_assert_eq!(value, x);
        }

        #[test]
        fn mut_patterns_work(mut xs in prop::collection::vec(any::<u16>(), 0..50)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn failing_case_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("proptest case"), "got: {message}");
        assert!(message.contains("inputs"), "got: {message}");
        assert!(message.contains("PROPTEST_SEED="), "got: {message}");

        // The printed seed regenerates the failing inputs exactly: the
        // replay contract behind `PROPTEST_SEED`.
        let seed: u64 = message
            .rsplit("PROPTEST_SEED=")
            .next()
            .unwrap()
            .trim()
            .parse()
            .expect("seed parses");
        let mut rng = crate::TestRng::from_seed(seed);
        let x = crate::Strategy::generate(&(0u32..10), &mut rng);
        assert!(x < 10, "regenerated input {x} out of strategy range");
        let mut rng2 = crate::TestRng::from_seed(seed);
        assert_eq!(x, crate::Strategy::generate(&(0u32..10), &mut rng2));
    }

    #[test]
    fn seed_for_case_is_stable_and_distinct() {
        let a = crate::TestRng::seed_for_case(0, 1);
        let b = crate::TestRng::seed_for_case(1, 1);
        let c = crate::TestRng::seed_for_case(0, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, crate::TestRng::seed_for_case(0, 1));
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn panicking_body_still_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(2))]
                #[test]
                fn always_panics(xs in prop::collection::vec(any::<u16>(), 1..4)) {
                    let _ = xs[xs.len() + 10]; // out-of-bounds panic, not a prop_assert
                }
            }
            always_panics();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("proptest case"), "got: {message}");
        assert!(message.contains("panic"), "got: {message}");
        assert!(message.contains("inputs"), "got: {message}");
    }
}
