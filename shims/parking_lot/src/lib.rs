//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal API-compatible subset of `parking_lot` implemented
//! on top of `std::sync`. Only the surface the `parlay` scheduler uses
//! is provided: a [`Mutex`] whose `lock` returns a guard directly (no
//! poison `Result`), and a [`Condvar`] that waits on a `&mut` guard.
//!
//! Lock poisoning is deliberately ignored (`parking_lot` has no notion
//! of it): a poisoned `std` lock is recovered with `into_inner`.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(recover(self.0.lock())))
    }
}

fn recover<G>(result: Result<G, sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(sync::PoisonError::into_inner)
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`]/[`Condvar::wait_for`], which need to move the `std`
/// guard by value and put a fresh one back before returning.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// A condition variable usable with [`MutexGuard`]s.
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        guard.0 = Some(recover(self.0.wait(inner)));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r.timed_out())
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timing out rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
