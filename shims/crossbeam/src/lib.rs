//! Offline stand-in for the `crossbeam` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors an API-compatible subset of `crossbeam::deque` — the only
//! module the `parlay` scheduler uses — implemented with locked
//! `VecDeque`s instead of the lock-free Chase–Lev deque. Semantics
//! match the original ([`deque::Worker`] pops LIFO, [`deque::Stealer`]
//! and [`deque::Injector`] steal FIFO); throughput under contention is lower,
//! which is an accepted trade-off until a lock-free deque lands (see
//! DESIGN.md §Substitutions).

pub mod deque {
    //! Work-stealing deques: a per-worker LIFO [`Worker`] end, FIFO
    //! [`Stealer`] handles, and a shared FIFO [`Injector`].

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        ///
        /// The locked implementation never loses races, but callers
        /// written against crossbeam match on this variant.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    fn lock<T>(queue: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The owner end of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops the most recently pushed task (LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Creates a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle that steals from the opposite (FIFO) end of a [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the deque.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A FIFO queue for tasks injected from outside the worker pool.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals the oldest injected task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_pops_lifo_stealer_steals_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(2));
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert!(matches!(inj.steal(), Steal::Success("a")));
            assert!(matches!(inj.steal(), Steal::Success("b")));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn concurrent_steals_see_each_task_once() {
            let w = Worker::new_lifo();
            for i in 0..10_000u64 {
                w.push(i);
            }
            let total = std::sync::atomic::AtomicU64::new(0);
            let count = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let s = w.stealer();
                    let total = &total;
                    let count = &count;
                    scope.spawn(move || loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                                count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    });
                }
            });
            assert_eq!(count.into_inner(), 10_000);
            assert_eq!(total.into_inner(), 10_000 * 9_999 / 2);
        }
    }
}
