//! Offline stand-in for the `crossbeam` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors an API-compatible subset of `crossbeam::deque` — the only
//! module the `parlay` scheduler uses — implemented with locked
//! `VecDeque`s instead of the lock-free Chase–Lev deque. Semantics
//! match the original ([`deque::Worker`] pops LIFO, [`deque::Stealer`]
//! and [`deque::Injector`] steal FIFO, and — like the lock-free
//! original — steal attempts that lose a race report [`deque::Steal::Retry`]
//! instead of blocking: a contended steal `try_lock`s and bails, so the
//! scheduler's bounded-retry policy is exercised for real. Throughput
//! under contention is lower than the Chase–Lev deque, which is an
//! accepted trade-off until a lock-free deque lands (see DESIGN.md
//! §Substitutions).

pub mod deque {
    //! Work-stealing deques: a per-worker LIFO [`Worker`] end, FIFO
    //! [`Stealer`] handles, and a shared FIFO [`Injector`].

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};

    /// Largest number of tasks moved by one `steal_batch_and_pop`
    /// (mirrors crossbeam's `MAX_BATCH`).
    const MAX_BATCH: usize = 32;

    /// Outcome of a steal attempt.
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        ///
        /// The locked implementation returns this when the queue lock is
        /// held by another thread at the moment of the attempt — the
        /// moral equivalent of losing a CAS race in the lock-free
        /// original. Callers must bound their retries (an unbounded
        /// retry loop can livelock under contention).
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    fn lock<T>(queue: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
        queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking acquire: `None` means the lock is contended and the
    /// caller should report [`Steal::Retry`].
    fn try_lock<T>(queue: &Mutex<VecDeque<T>>) -> Option<MutexGuard<'_, VecDeque<T>>> {
        match queue.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Steals up to `MAX_BATCH` (32) tasks (at most half the queue, always
    /// at least one) from the front of `src`, moving all but the first
    /// into `dest` and returning the first.
    fn drain_batch<T>(src: &mut VecDeque<T>, dest: &Worker<T>) -> Steal<T> {
        let Some(first) = src.pop_front() else {
            return Steal::Empty;
        };
        let extra = (src.len().div_ceil(2)).min(MAX_BATCH - 1);
        if extra > 0 {
            let mut dest_queue = lock(&dest.queue);
            for task in src.drain(..extra) {
                dest_queue.push_back(task);
            }
        }
        Steal::Success(first)
    }

    /// The owner end of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops the most recently pushed task (LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Creates a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle that steals from the opposite (FIFO) end of a [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the deque.
        pub fn steal(&self) -> Steal<T> {
            match try_lock(&self.queue) {
                Some(mut queue) => match queue.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                None => Steal::Retry,
            }
        }

        /// Steals a batch of tasks from the front of the deque, moves
        /// all but the first into `dest`, and returns the first.
        ///
        /// Batching amortizes the per-steal synchronization: an idle
        /// worker grabs up to half the victim's queue (capped at
        /// `MAX_BATCH`) in one acquisition instead of coming back for
        /// every job.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            match try_lock(&self.queue) {
                Some(mut queue) => drain_batch(&mut queue, dest),
                None => Steal::Retry,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A FIFO queue for tasks injected from outside the worker pool.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals the oldest injected task.
        pub fn steal(&self) -> Steal<T> {
            match try_lock(&self.queue) {
                Some(mut queue) => match queue.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                None => Steal::Retry,
            }
        }

        /// Steals a batch of injected tasks, moves all but the first
        /// into `dest`, and returns the first. See
        /// [`Stealer::steal_batch_and_pop`].
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            match try_lock(&self.queue) {
                Some(mut queue) => drain_batch(&mut queue, dest),
                None => Steal::Retry,
            }
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_pops_lifo_stealer_steals_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(2));
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert!(matches!(inj.steal(), Steal::Success("a")));
            assert!(matches!(inj.steal(), Steal::Success("b")));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn steal_batch_moves_half_and_pops_first() {
            let victim = Worker::new_lifo();
            let thief = Worker::new_lifo();
            for i in 0..10 {
                victim.push(i);
            }
            let s = victim.stealer();
            // First batch: pops 0, moves ceil(9/2) = 5 (1..=5) to thief.
            assert!(matches!(s.steal_batch_and_pop(&thief), Steal::Success(0)));
            assert_eq!(thief.pop(), Some(5));
            assert_eq!(thief.pop(), Some(4));
            assert_eq!(thief.pop(), Some(3));
            assert_eq!(thief.pop(), Some(2));
            assert_eq!(thief.pop(), Some(1));
            assert_eq!(thief.pop(), None);
            // Victim still holds 6..=9 (LIFO end untouched).
            assert_eq!(victim.pop(), Some(9));
        }

        #[test]
        fn steal_batch_caps_at_max_batch() {
            let victim = Worker::new_lifo();
            let thief = Worker::new_lifo();
            for i in 0..200 {
                victim.push(i);
            }
            let s = victim.stealer();
            assert!(matches!(s.steal_batch_and_pop(&thief), Steal::Success(0)));
            let mut moved = 0;
            while thief.pop().is_some() {
                moved += 1;
            }
            assert_eq!(moved, MAX_BATCH - 1);
        }

        #[test]
        fn injector_batch_steal() {
            let inj = Injector::new();
            let thief = Worker::new_lifo();
            for i in 0..6 {
                inj.push(i);
            }
            assert!(matches!(inj.steal_batch_and_pop(&thief), Steal::Success(0)));
            // ceil(5/2) = 3 moved (1, 2, 3), FIFO order preserved under pop
            // from the thief's LIFO end reversed — drain pushed 1 first.
            let mut moved = Vec::new();
            while let Some(v) = thief.pop() {
                moved.push(v);
            }
            assert_eq!(moved, vec![3, 2, 1]);
            assert!(matches!(inj.steal(), Steal::Success(4)));
        }

        #[test]
        fn concurrent_steals_see_each_task_once() {
            let w = Worker::new_lifo();
            for i in 0..10_000u64 {
                w.push(i);
            }
            let total = std::sync::atomic::AtomicU64::new(0);
            let count = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let s = w.stealer();
                    let total = &total;
                    let count = &count;
                    scope.spawn(move || loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                                count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => std::thread::yield_now(),
                        }
                    });
                }
            });
            assert_eq!(count.into_inner(), 10_000);
            assert_eq!(total.into_inner(), 10_000 * 9_999 / 2);
        }

        #[test]
        fn concurrent_batch_steals_see_each_task_once() {
            let w = Worker::new_lifo();
            for i in 0..10_000u64 {
                w.push(i);
            }
            let total = std::sync::atomic::AtomicU64::new(0);
            let count = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let s = w.stealer();
                    let total = &total;
                    let count = &count;
                    scope.spawn(move || {
                        let local = Worker::new_lifo();
                        loop {
                            let task = match local.pop() {
                                Some(v) => Some(v),
                                None => match s.steal_batch_and_pop(&local) {
                                    Steal::Success(v) => Some(v),
                                    Steal::Empty => break,
                                    Steal::Retry => {
                                        std::thread::yield_now();
                                        continue;
                                    }
                                },
                            };
                            if let Some(v) = task {
                                total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                                count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            assert_eq!(count.into_inner(), 10_000);
            assert_eq!(total.into_inner(), 10_000 * 9_999 / 2);
        }
    }
}
