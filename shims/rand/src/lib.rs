//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small surface its data generators use: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] over half-open integer ranges, and
//! [`Rng::gen_bool`]. [`rngs::StdRng`] is a SplitMix64 generator — high
//! quality for synthetic-data purposes, deterministic per seed, but
//! **not** bit-compatible with the real `StdRng` (ChaCha12) and not
//! cryptographically secure.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable over a half-open range.
pub trait UniformInt: Sized {
    /// Samples uniformly from `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let width = (range.end as i128 - range.start as i128) as u128;
                // Widened modulo reduction: drawing 128 bits makes the
                // modulo bias negligible for any 64-bit-wide range
                // (no rejection loop, so not exactly uniform).
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (range.start as i128 + (draw % width) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xorshift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
    }
}
