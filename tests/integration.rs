//! Cross-crate integration tests: differential testing between the
//! PaC-tree implementation and the independent P-tree baseline, plus
//! snapshot semantics under concurrent readers.

use cpam::{PacMap, PacSet};
use pam::{PamMap, PamSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn cpam_and_pam_agree_on_set_algebra() {
    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..5 {
        let xs: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..5000)).collect();
        let ys: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..5000)).collect();
        let (cx, cy) = (
            PacSet::<u64>::from_keys(xs.clone()),
            PacSet::<u64>::from_keys(ys.clone()),
        );
        let (px, py) = (PamSet::from_keys(xs), PamSet::from_keys(ys));
        assert_eq!(cx.union(&cy).to_vec(), px.union(&py).to_vec(), "round {round}");
        assert_eq!(
            cx.intersect(&cy).to_vec(),
            px.intersect(&py).to_vec(),
            "round {round}"
        );
        assert_eq!(
            cx.difference(&cy).to_vec(),
            px.difference(&py).to_vec(),
            "round {round}"
        );
    }
}

#[test]
fn cpam_and_pam_agree_on_map_updates() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut c: PacMap<u64, u64> = PacMap::new();
    let mut p: PamMap<u64, u64> = PamMap::new();
    for step in 0..400u64 {
        match rng.gen_range(0..4) {
            0 | 1 => {
                let (k, v) = (rng.gen_range(0..500), step);
                c = c.insert(k, v);
                p = p.insert(k, v);
            }
            2 => {
                let k = rng.gen_range(0..500);
                c = c.remove(&k);
                p = p.remove(&k);
            }
            _ => {
                let batch: Vec<(u64, u64)> =
                    (0..50).map(|i| (rng.gen_range(0..500), step + i)).collect();
                c = c.multi_insert(batch.clone());
                p = p.multi_insert(batch);
            }
        }
    }
    assert_eq!(c.to_vec(), p.to_vec());
}

#[test]
fn snapshots_survive_concurrent_updates() {
    // Writers produce new versions while readers consume fixed snapshots.
    let base: PacSet<u64> = PacSet::from_keys((0..100_000).collect());
    let snapshot = base.clone();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let snap = snapshot.clone();
            std::thread::spawn(move || {
                // Each reader checks the snapshot is intact.
                assert_eq!(snap.len(), 100_000);
                assert!(snap.contains(&(t * 10_000)));
                snap.map_reduce(|k| *k, |a, b| a.wrapping_add(b), 0u64)
            })
        })
        .collect();
    // Meanwhile produce 20 new versions.
    let mut latest = base;
    for i in 0..20 {
        latest = latest.multi_insert((0..1000).map(|j| 200_000 + i * 1000 + j).collect());
    }
    let expected: u64 = (0..100_000u64).fold(0, |a, b| a.wrapping_add(b));
    for h in handles {
        assert_eq!(h.join().expect("reader"), expected);
    }
    assert_eq!(latest.len(), 120_000);
}

#[test]
fn graph_updates_match_model() {
    use graphs::{GraphSnapshot, PacGraph};
    let mut rng = StdRng::seed_from_u64(5);
    let mut g = PacGraph::from_edges(256, &[]);
    let mut model = std::collections::BTreeSet::new();
    for _ in 0..20 {
        let batch: Vec<(u32, u32)> = (0..300)
            .map(|_| (rng.gen_range(0..256), rng.gen_range(0..256)))
            .collect();
        if rng.gen_bool(0.3) {
            for e in &batch {
                model.remove(e);
            }
            g = g.delete_edges(batch);
        } else {
            for e in &batch {
                model.insert(*e);
            }
            g = g.insert_edges(batch);
        }
        assert_eq!(g.num_edges(), model.len() as u64);
    }
    let snap = g.flat_snapshot();
    for v in 0..256u32 {
        let mut got = Vec::new();
        snap.for_each_neighbor(v, &mut |u| got.push(u));
        let expected: Vec<u32> = model
            .range((v, 0)..=(v, u32::MAX))
            .map(|&(_, u)| u)
            .collect();
        assert_eq!(got, expected, "vertex {v}");
    }
}

#[test]
fn inverted_index_matches_linear_scan() {
    let corpus = invidx::Corpus::zipf(400, 40, 1000, 3);
    let index = invidx::InvertedIndex::build(&corpus.triples());
    // Linear-scan oracle for an AND query.
    for (w1, w2) in [(0u32, 1u32), (3, 9)] {
        let expected: Vec<u32> = corpus
            .docs
            .iter()
            .enumerate()
            .filter(|(_, ws)| ws.contains(&w1) && ws.contains(&w2))
            .map(|(d, _)| d as u32)
            .collect();
        let got: Vec<u32> = index.and_query(w1, w2).into_iter().map(|(d, _)| d).collect();
        assert_eq!(got, expected, "{w1} AND {w2}");
    }
}

#[test]
fn spatial_structures_agree_with_each_other() {
    let mut rng = StdRng::seed_from_u64(9);
    let intervals: Vec<(u64, u64)> = (0..5000)
        .map(|_| {
            let l = rng.gen_range(0..100_000u64);
            (l, l + rng.gen_range(0..500))
        })
        .collect();
    let pac = spatial::IntervalTree::from_intervals(&intervals);
    let pam = spatial::PamIntervalTree::from_intervals(&intervals);
    for q in [0u64, 50_000, 99_999, 100_400] {
        assert_eq!(pac.stab(q), pam.stab(q), "stab {q}");
    }

    let points: Vec<(u32, u32)> = (0..5000)
        .map(|_| (rng.gen_range(0..10_000), rng.gen_range(0..10_000)))
        .collect();
    let rt = spatial::RangeTree2D::from_points(&points);
    let prt = spatial::PamRangeTree2D::from_points(&points);
    for _ in 0..10 {
        let (x1, y1) = (rng.gen_range(0..9000u32), rng.gen_range(0..9000u32));
        let (x2, y2) = (x1 + rng.gen_range(0..1000), y1 + rng.gen_range(0..1000));
        assert_eq!(rt.count(x1, y1, x2, y2), prt.count(x1, y1, x2, y2));
    }
}

#[test]
fn store_survives_restart_with_concurrent_commits_and_pinned_readers() {
    use store::{Op, PacStore, StoreError};

    let dir = std::env::temp_dir().join(format!("pacstore-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (saved_version, expected, history_before) = {
        let store: PacStore<u64, u64> = PacStore::open(&dir).expect("open fresh");
        store
            .commit((0..10_000u64).map(|k| Op::Put(k, k)).collect())
            .expect("preload");
        let pinned = store.snapshot();

        // Concurrent writers commit disjoint key ranges while readers
        // hold pinned snapshots and verify they never change.
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let store = store.clone();
                scope.spawn(move || {
                    for c in 0..10 {
                        let base = 100_000 + w * 10_000 + c * 100;
                        let ops = (0..100).map(|i| Op::Put(base + i, w)).collect();
                        store.commit(ops).expect("commit");
                    }
                });
            }
            for _ in 0..3 {
                let pinned = pinned.clone();
                scope.spawn(move || {
                    for probe in 0..2_000u64 {
                        assert_eq!(pinned.get(&(probe * 5 % 10_000)), Some(probe * 5 % 10_000));
                    }
                    assert_eq!(pinned.len(), 10_000);
                });
            }
        });
        assert_eq!(store.len(), 10_000 + 4 * 1_000);

        let saved = store.save().expect("save");
        // Post-save commits exist only in the batch log.
        store.commit(vec![Op::Put(7, 700), Op::Delete(8)]).expect("log-only 1");
        store.commit(vec![Op::Put(999_999, 1)]).expect("log-only 2");
        (saved, store.snapshot().map().to_vec(), store.versions())
    };

    // Reopen: snapshot load + log replay must reproduce the exact state
    // and the post-save version history.
    let store: PacStore<u64, u64> = PacStore::open(&dir).expect("reopen");
    assert_eq!(store.current_version(), saved_version + 2);
    assert_eq!(store.snapshot().map().to_vec(), expected);
    assert_eq!(store.get(&7), Some(700));
    assert_eq!(store.get(&8), None);
    assert_eq!(store.get(&999_999), Some(1));

    // Version history: the reopened store reaches the saved version and
    // each replayed one; those versions also appear in the pre-restart
    // history (the old handle retains more, from before the save).
    let history_after = store.versions();
    assert_eq!(
        history_after,
        vec![saved_version, saved_version + 1, saved_version + 2]
    );
    for v in &history_after {
        assert!(history_before.contains(v), "version {v} lost across restart");
    }
    // Time travel to the replayed middle version works after restart.
    let mid = store.snapshot_at(saved_version + 1).expect("mid version");
    assert_eq!(mid.get(&7), Some(700));
    assert_eq!(mid.get(&999_999), None);
    assert!(matches!(
        store.snapshot_at(12345),
        Err(StoreError::VersionNotFound(12345))
    ));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sequence_baselines_agree_with_arrays() {
    // CPAM sequences vs the ParallelSTL-style array baseline.
    let values: Vec<u64> = (0..50_000).map(|i| (i * 31) % 1013).collect();
    let seq = cpam::PacSeq::<u64>::from_slice(&values);

    let sum_tree = seq.map_reduce(|v| *v, |a, b| a + b, 0u64);
    let sum_array = parlay::run(|| parlay::sum(&values));
    assert_eq!(sum_tree, sum_array);

    assert_eq!(seq.is_sorted(), parlay::slice::is_sorted(&values));

    let pred = |v: &u64| *v == 999;
    assert_eq!(
        seq.find_first(pred),
        parlay::run(|| parlay::slice::find_first(&values, pred))
    );

    let rev_tree = seq.reverse().to_vec();
    let rev_array = parlay::slice::reverse(&values);
    assert_eq!(rev_tree, rev_array);
}

#[test]
fn sharded_store_readers_only_see_committed_version_vectors() {
    use store::{Op, Router, ShardedStore};

    // Keys are chosen so each writer's pair of keys lands on two
    // *different* shards: a torn (non-atomic) cross-shard publish would
    // show the pair at different values.
    let writers = 4u64;
    let readers = 4usize;
    let commits_per_writer = 60u64;
    let store: ShardedStore<u64, u64> =
        ShardedStore::in_memory(Router::uniform_span(4, 4_000)).unwrap();
    for w in 0..writers {
        // Commit 0 so every key exists before readers start probing.
        store
            .commit(vec![Op::Put(w, 0), Op::Put(3_000 + w, 0)])
            .unwrap();
    }
    assert_ne!(store.shard_of(&0), store.shard_of(&3_000), "keys must cross shards");

    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = store.clone();
            scope.spawn(move || {
                for c in 1..=commits_per_writer {
                    // One atomic cross-shard commit: both keys move to
                    // `c` together or not at all.
                    store
                        .commit(vec![Op::Put(w, c), Op::Put(3_000 + w, c)])
                        .unwrap();
                }
            });
        }
        for _ in 0..readers {
            let store = store.clone();
            scope.spawn(move || {
                let mut last_global = 0u64;
                let mut last_vector = vec![0u64; store.shard_count()];
                let mut last_counters = vec![0u64; writers as usize];
                for _ in 0..400 {
                    let snap = store.snapshot();
                    // Global version and the version vector are
                    // monotonic: a published state never rolls back.
                    assert!(snap.version() >= last_global, "global version went backwards");
                    for (a, b) in snap.version_vector().iter().zip(&last_vector) {
                        assert!(a >= b, "a shard's local version went backwards");
                    }
                    last_global = snap.version();
                    last_vector = snap.version_vector().to_vec();
                    for w in 0..writers {
                        // Cross-shard atomicity: the two halves of every
                        // writer's commit are always equal in any
                        // pinned snapshot...
                        let lo = snap.get(&w).expect("low key present");
                        let hi = snap.get(&(3_000 + w)).expect("high key present");
                        assert_eq!(lo, hi, "writer {w}: cross-shard commit torn");
                        // ...and each writer's counter is monotonic per
                        // reader (snapshots are consistent cuts).
                        assert!(
                            lo >= last_counters[w as usize],
                            "writer {w}: counter went backwards"
                        );
                        last_counters[w as usize] = lo;
                    }
                }
            });
        }
    });

    // Everything landed: final state is every writer's last commit.
    for w in 0..writers {
        assert_eq!(store.get(&w), Some(commits_per_writer));
        assert_eq!(store.get(&(3_000 + w)), Some(commits_per_writer));
    }
    // Group commit coalesces concurrent batches: at most one global
    // version per submitted commit, at least one per leader group.
    let groups = store.current_version();
    assert!(groups <= writers * (commits_per_writer + 1));
    assert!(groups >= commits_per_writer, "a writer's commits cannot share one group");
    // No shard's local version can exceed the global commit counter.
    let final_snap = store.snapshot();
    assert!(final_snap.version_vector().iter().all(|&l| l <= groups));
}
