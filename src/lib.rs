//! Umbrella crate for the CPAM / PaC-tree reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can
//! use a single dependency. See `README.md` for the project overview,
//! `DESIGN.md` for the system inventory and substitution policy, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use codecs;
pub use cpam;
pub use ctree;
pub use graphs;
pub use invidx;
pub use obs;
pub use pam;
pub use parlay;
pub use server;
pub use spatial;
pub use store;
