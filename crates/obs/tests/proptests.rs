//! Property tests for the log-bucketed histogram: the bucket layout's
//! error bound, quantiles against an exact sorted oracle, merge
//! algebra, and lossless concurrent recording. Failures replay with
//! `PROPTEST_SEED`.

use obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, SUB, SUB_BITS};
use proptest::prelude::*;

/// Records every value into a fresh histogram and snapshots it.
fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The exact `q`-quantile of `values` under the histogram's rank rule
/// (`ceil(q * n)`, clamped to `[1, n]`), from a sorted copy.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[rank as usize - 1]
}

/// The histogram quantile estimate never falls below the true sample
/// and overshoots by at most `x / SUB` (the relative error bound).
fn assert_within_bound(est: u64, exact: u64) {
    assert!(est >= exact, "estimate {est} below true quantile {exact}");
    assert!(
        est - exact <= exact / SUB,
        "estimate {est} more than 1/{SUB} above true quantile {exact}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Every value lands in a bucket that contains it, and the bucket
    // is narrow enough for the advertised relative error: exact below
    // `SUB`, width at most `lo >> SUB_BITS` above it.
    #[test]
    fn bucket_contains_value_within_error_bound(v in any::<u64>()) {
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
        if v < SUB {
            prop_assert_eq!((lo, hi), (v, v));
        } else {
            prop_assert!(hi - lo <= lo >> SUB_BITS);
        }
    }

    // Quantile estimates stay within the error bound against an exact
    // sorted oracle, across the whole quantile ladder.
    #[test]
    fn quantiles_match_sorted_oracle(
        values in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        let snap = snap_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            assert_within_bound(snap.quantile(q), exact_quantile(&values, q));
        }
        // min is exact on a direct snapshot; max always is.
        prop_assert_eq!(snap.min_value(), *values.iter().min().unwrap());
        prop_assert_eq!(snap.max_value(), *values.iter().max().unwrap());
    }

    // `merge` is associative and commutative, and merging is the same
    // distribution as recording the concatenation.
    #[test]
    fn merge_is_assoc_comm_and_matches_concat(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
        c in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(sa.merge(&sb).merge(&sc), snap_of(&all));

        // Quantiles of the merged distribution still obey the bound.
        if !all.is_empty() {
            let merged = sa.merge(&sb).merge(&sc);
            for q in [0.50, 0.99] {
                assert_within_bound(merged.quantile(q), exact_quantile(&all, q));
            }
        }
    }

    // A delta window between two snapshots of one histogram holds
    // exactly the values recorded in between.
    #[test]
    fn delta_window_is_exact(
        first in prop::collection::vec(any::<u64>(), 0..200),
        second in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = Histogram::new();
        for &v in &first {
            h.record(v);
        }
        let before = h.snapshot();
        for &v in &second {
            h.record(v);
        }
        let window = h.snapshot().delta(&before);
        prop_assert_eq!(window.count(), second.len() as u64);
        let sum: u64 = second.iter().fold(0, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(window.sum, sum);
        if !second.is_empty() {
            for q in [0.50, 0.99] {
                // Window min/max are bucket-resolution, so the estimate
                // may also undershoot by up to one bucket width.
                let est = window.quantile(q);
                let exact = exact_quantile(&second, q);
                let slack = exact / SUB;
                prop_assert!(est.saturating_add(slack) >= exact);
                prop_assert!(est.saturating_sub(exact) <= slack.max(1).saturating_add(slack));
            }
        }
    }
}

/// Concurrent recording from 8 threads loses no counts: the bucket
/// totals, sum, and extrema all match the sequential oracle.
#[test]
fn concurrent_recording_loses_nothing() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Distinct deterministic values per thread, spanning
                // several orders of magnitude.
                let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1) | 1;
                let mut sum = 0u64;
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let v = x >> (x % 40);
                    hist.record(v);
                    sum = sum.wrapping_add(v);
                }
                sum
            })
        })
        .collect();
    let expected_sum = handles
        .into_iter()
        .fold(0u64, |acc, h| acc.wrapping_add(h.join().unwrap()));

    let snap = hist.snapshot();
    assert_eq!(snap.count(), (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.sum, expected_sum);
}
