//! Lock-free log-bucketed latency histograms.
//!
//! # Bucket layout
//!
//! Values below [`SUB`] (32) land in exact unit-width buckets. Above
//! that, every power-of-two range `[2^e, 2^(e+1))` is split into
//! [`SUB`] linear sub-buckets of width `2^(e-SUB_BITS)`. A value `v`
//! therefore falls in a bucket whose width is at most `v / SUB`, which
//! bounds the relative error of any reconstructed quantile:
//!
//! > **error bound:** `quantile(q)` returns the *upper* bound of the
//! > bucket holding the rank-`q` sample, so the estimate `est`
//! > satisfies `x <= est <= x + x/32` (within **3.125%** above the
//! > true sample `x`, and never below it).
//!
//! The full `u64` range needs `32 * 60 = 1920` buckets (~15 KiB of
//! `AtomicU64` per histogram) — cheap enough to allocate one per stage
//! per shard.
//!
//! # Concurrency
//!
//! [`Histogram::record`] is four relaxed atomic RMWs (bucket
//! `fetch_add`, `sum` `fetch_add`, `min`/`max` `fetch_min`/`fetch_max`)
//! and never takes a lock, so it is safe on the hottest paths.
//! Snapshots are taken bucket-by-bucket without stopping writers; the
//! reported `count` is derived as the sum of the bucket counts read, so
//! a snapshot is always internally consistent (quantile ranks match
//! bucket totals) even if records race with the scan.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// log2 of the number of linear sub-buckets per power-of-two range.
pub const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power-of-two range (32).
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index for a value. Exact below `SUB`; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // e = position of the most significant set bit, >= SUB_BITS here.
    let e = 63 - v.leading_zeros();
    let shift = e - SUB_BITS;
    // (v >> shift) is in [SUB, 2*SUB); its offset within that range
    // picks the linear sub-bucket.
    let sub = (v >> shift) as usize;
    (shift as usize + 1) * SUB as usize + (sub - SUB as usize)
}

/// Inclusive `(lo, hi)` value bounds of bucket `i`.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let subu = SUB as usize;
    if i < subu {
        return (i as u64, i as u64);
    }
    let shift = (i / subu - 1) as u32;
    let off = (i % subu) as u64;
    let lo = (SUB + off) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

/// A lock-free log-bucketed histogram of `u64` samples (typically
/// nanoseconds). See the module docs for the bucket layout and the
/// relative-error bound.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Relaxed atomics only; never blocks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start a scoped timer that records its elapsed nanoseconds into
    /// this histogram when dropped. See also the [`span!`](crate::span!)
    /// macro.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: Instant::now(),
            armed: true,
        }
    }

    /// A point-in-time copy of the histogram state. Does not stop
    /// writers; see the module docs for the consistency guarantee.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum)
            .finish()
    }
}

/// Scoped timer tied to a [`Histogram`]; records elapsed nanoseconds on
/// drop unless [`cancel`](Span::cancel)led.
#[must_use = "a span records on drop; bind it to a variable (`let _span = ...`)"]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> Span<'a> {
    /// Start a span recording into `hist` on drop (what
    /// [`span!`](crate::span!) expands to).
    #[inline]
    pub fn enter(hist: &'a Histogram) -> Span<'a> {
        hist.span()
    }

    /// Drop without recording (e.g. on an error path that should not
    /// pollute the latency distribution).
    #[inline]
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
///
/// Snapshots support [`merge`](HistogramSnapshot::merge) (combine two
/// distributions, e.g. across shards) and
/// [`delta`](HistogramSnapshot::delta) (the samples recorded *between*
/// two snapshots of the same histogram — the idiom benches use to
/// scope percentiles to a measured region).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Sum of all recorded values (wrapping on overflow of `u64`).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total number of samples (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Inclusive value bounds of the outermost non-empty buckets, or
    /// `None` when every bucket is empty. The fallback extrema when the
    /// tracked `min`/`max` can't be trusted.
    fn bucket_extrema(&self) -> Option<(u64, u64)> {
        let first = self.buckets.iter().position(|&c| c != 0)?;
        let last = self.buckets.iter().rposition(|&c| c != 0).expect("first exists");
        Some((bucket_bounds(first).0, bucket_bounds(last).1))
    }

    /// Smallest recorded value, or 0 when empty.
    ///
    /// [`Histogram::record`] bumps the bucket count before updating the
    /// tracked extrema, so a snapshot racing a histogram's first record
    /// can carry `count > 0` with `min` still at its `u64::MAX` sentinel
    /// (and `max` at 0). Rather than leak the sentinel into scrapes,
    /// such a torn snapshot falls back to the first non-empty bucket's
    /// lower bound — correct to bucket resolution.
    pub fn min_value(&self) -> u64 {
        match self.bucket_extrema() {
            None => 0,
            Some((lo, _)) if self.min == u64::MAX => lo,
            _ => self.min,
        }
    }

    /// Largest recorded value, or 0 when empty. Falls back to the last
    /// non-empty bucket's upper bound when the tracked `max` is stale
    /// (see [`min_value`](Self::min_value) for the race).
    pub fn max_value(&self) -> u64 {
        match self.bucket_extrema() {
            None => 0,
            Some((lo, hi)) if self.max < lo => hi,
            _ => self.max,
        }
    }

    /// Iterate the non-empty buckets as `(lo, hi, count)` with
    /// inclusive value bounds.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 <= q <= 1.0`).
    ///
    /// Uses rank `ceil(q * count)` (clamped to `[1, count]`) and
    /// returns the holding bucket's upper bound clamped to the tracked
    /// `[min, max]`, so the estimate is never below the true sample and
    /// at most `x/32` above it. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min_value(), self.max_value().max(self.min_value()));
            }
        }
        self.max
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Combine two distributions (e.g. the same stage across shards).
    /// Associative and commutative.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(&other.buckets)
            .map(|(a, b)| a + b)
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The samples recorded between `earlier` and `self`, where both
    /// are snapshots of the *same* histogram and `earlier` was taken
    /// first.
    ///
    /// Bucket counts and `sum` are exact for the window; `min`/`max`
    /// cannot be recovered from cumulative extrema, so they are
    /// re-derived from the window's outermost non-empty buckets
    /// (tightened by the cumulative values where sound) — i.e. they are
    /// correct to bucket resolution.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            if c != 0 {
                let (lo, hi) = bucket_bounds(i);
                min = min.min(lo);
                max = max.max(hi);
            }
        }
        // The cumulative extrema still bound the window.
        min = min.max(earlier.min.min(self.min));
        max = max.min(self.max.max(min));
        HistogramSnapshot {
            buckets,
            sum: self.sum.wrapping_sub(earlier.sum),
            min,
            max: if min == u64::MAX { 0 } else { max },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exact_below_sub() {
        for v in 0..SUB {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_roundtrip_and_width_bound() {
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            4095,
            4096,
            1 << 33,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            let width = hi - lo;
            assert!(width <= v / SUB, "width bound: v={v} width={width}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        let mut next = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} not contiguous");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            next = hi + 1;
        }
        panic!("buckets do not reach u64::MAX");
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500500);
        assert_eq!(s.min_value(), 1);
        assert_eq!(s.max_value(), 1000);
        // Exact samples 1..=1000; estimates are within the 1/32 bound
        // above the true order statistic.
        for (q, truth) in [(0.50, 500u64), (0.90, 900), (0.99, 990), (0.999, 999)] {
            let est = s.quantile(q);
            assert!(est >= truth, "q={q} est={est} truth={truth}");
            assert!(est - truth <= truth / SUB, "q={q} est={est} truth={truth}");
        }
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.min_value(), 0);
        assert_eq!(s.max_value(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn torn_snapshot_never_reports_the_min_sentinel() {
        // `record` bumps the bucket count before updating min/max, so a
        // snapshot racing a histogram's first record can see count == 1
        // with min still u64::MAX and max still 0. Scrape accessors
        // must fall back to bucket bounds, never leak the sentinel.
        let mut buckets = vec![0u64; BUCKETS];
        buckets[bucket_index(100)] = 1;
        let torn = HistogramSnapshot {
            buckets,
            sum: 0,
            min: u64::MAX,
            max: 0,
        };
        assert_eq!(torn.count(), 1);
        let (lo, hi) = bucket_bounds(bucket_index(100));
        assert_eq!(torn.min_value(), lo);
        assert_eq!(torn.max_value(), hi);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let v = torn.quantile(q);
            assert!(v >= lo && v <= hi, "q={q} leaked {v}");
        }
    }

    #[test]
    fn span_records_on_drop_and_cancel_suppresses() {
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        assert_eq!(h.snapshot().count(), 1);
        let s = h.span();
        s.cancel();
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn delta_scopes_to_the_window() {
        let h = Histogram::new();
        h.record(5);
        h.record(1_000_000);
        let before = h.snapshot();
        h.record(100);
        h.record(200);
        let after = h.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 300);
        assert!(d.min_value() <= 100 && d.min_value() >= 5);
        assert!(d.max_value() >= 200 && d.max_value() <= 200 + 200 / SUB);
        assert!(d.p50() >= 100 && d.p50() <= 100 + 100 / SUB);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count(), 2);
        assert_eq!(m.min_value(), 10);
        assert!(m.max_value() >= 1000);
        assert_eq!(m.sum, 1010);
    }
}
