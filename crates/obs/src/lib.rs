//! `obs` — dependency-free observability core for the pactrees
//! workspace.
//!
//! Three pieces (see `DESIGN.md` §10 for the full policy):
//!
//! - a process-wide [`Registry`] of named atomic [`Counter`]s,
//!   [`Gauge`]s, and pull-style callbacks (used to bridge pre-existing
//!   counter sets like `cpam::stats` without changing their API);
//! - lock-free log-bucketed latency [`Histogram`]s (base-2 buckets with
//!   32 linear sub-buckets each: quantile estimates within 3.125% above
//!   the true sample, ~15 KiB per histogram, relaxed atomics only) with
//!   mergeable/deltable [`HistogramSnapshot`]s;
//! - scoped [`Span`] timers (and the [`span!`] macro) that record their
//!   elapsed nanoseconds into a histogram on drop.
//!
//! Exposition is Prometheus-style text ([`Registry::render_text`]) or
//! hand-rolled JSON ([`Registry::snapshot_json`]) — no serde, no
//! dependencies at all, so every crate in the workspace (including
//! `cpam`) can depend on `obs` without cycles.
//!
//! # Example
//!
//! ```
//! let r = obs::Registry::new();
//! let commits = r.counter("commits_total");
//! let lat = r.histogram(&obs::labeled("commit_ns", &[("shard", "000")]));
//!
//! for _ in 0..10 {
//!     let _span = obs::span!(lat); // records on scope exit
//!     commits.inc();
//! }
//!
//! let snap = r.histogram_snapshot(&obs::labeled("commit_ns", &[("shard", "000")])).unwrap();
//! assert_eq!(snap.count(), 10);
//! assert!(snap.p99() >= snap.p50());
//! let text = r.render_text();
//! assert!(text.contains("commits_total 10"));
//! ```
//!
//! Production code records into [`global()`], the process-wide
//! registry, so benches and the (future) server can scrape one place.

mod hist;
mod registry;

pub use hist::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, Span, BUCKETS, SUB, SUB_BITS,
};
pub use registry::{global, labeled, Counter, Gauge, Registry};

/// Start a [`Span`] recording into the given histogram on scope exit:
/// `let _span = obs::span!(hist);`. Accepts anything that derefs to a
/// [`Histogram`] (e.g. `Arc<Histogram>`).
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $crate::Span::enter(&$hist)
    };
}
