//! Process-wide registry of named metrics.
//!
//! A [`Registry`] maps metric names to shared handles: monotone
//! [`Counter`]s, signed [`Gauge`]s, [`Histogram`]s, and pull-style
//! callbacks (for bridging pre-existing counters, e.g. `cpam::stats`,
//! without changing their API). Handles are `Arc`s resolved once at
//! setup time; the hot path touches only the handle's relaxed atomics,
//! never the registry lock.
//!
//! # Naming scheme
//!
//! Names are flat strings with optional Prometheus-style labels baked
//! in: `pacstore_wal_append_ns{shard="003"}`. Use [`labeled`] to build
//! them; the exposition formats split at the first `{` so quantile
//! labels merge correctly in [`Registry::render_text`]. Conventions
//! (enforced by review, not code): `_ns` suffix for nanosecond
//! histograms, `_total` for monotone counters, bare nouns for gauges.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

type Callback = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    callbacks: BTreeMap<String, Callback>,
}

/// A named-metric registry. See the module docs.
///
/// `Registry::new()` is `const`, so the process-wide instance
/// ([`crate::global`]) is a plain `static` with no lazy-init cost.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("callbacks", &inner.callbacks.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                callbacks: BTreeMap::new(),
            }),
        }
    }

    /// Get or create the counter named `name`. Repeated calls with the
    /// same name return the same underlying atomic.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Set a batch of gauges under one lock acquisition — the idiom for
    /// publishing a consistent multi-field snapshot (e.g. a buffer
    /// pool's residency stats) where per-name [`Registry::gauge`]
    /// round-trips would let a scrape interleave between fields.
    /// Missing gauges are created.
    pub fn gauge_set(&self, values: &[(&str, i64)]) {
        let mut inner = self.inner.lock().unwrap();
        for (name, v) in values {
            inner.gauges.entry((*name).to_string()).or_default().set(*v);
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Register a pull-style callback rendered as a counter. The first
    /// registration for a name wins; later ones are ignored (so bridge
    /// installation can be idempotent).
    pub fn register_callback<F>(&self, name: &str, f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        let mut inner = self.inner.lock().unwrap();
        inner
            .callbacks
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(f));
    }

    /// Snapshot of the histogram named `name`, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let h = {
            let inner = self.inner.lock().unwrap();
            inner.histograms.get(name).cloned()
        };
        h.map(|h| h.snapshot())
    }

    /// Merged snapshot of every histogram whose name starts with
    /// `prefix` (e.g. all per-shard series of one stage).
    pub fn histogram_snapshot_prefixed(&self, prefix: &str) -> HistogramSnapshot {
        let hists: Vec<Arc<Histogram>> = {
            let inner = self.inner.lock().unwrap();
            inner
                .histograms
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(_, v)| v.clone())
                .collect()
        };
        hists
            .iter()
            .fold(HistogramSnapshot::empty(), |acc, h| acc.merge(&h.snapshot()))
    }

    /// Current value of the counter or callback named `name`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        if let Some(c) = inner.counters.get(name) {
            return Some(c.get());
        }
        inner.callbacks.get(name).cloned().map(|f| f())
    }

    /// Current value of the gauge named `name`.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let inner = self.inner.lock().unwrap();
        inner.gauges.get(name).map(|g| g.get())
    }

    /// Prometheus-style text exposition.
    ///
    /// Counters and callbacks render as `counter`, gauges as `gauge`,
    /// histograms as `summary` with `quantile` labels merged into any
    /// labels already baked into the name:
    ///
    /// ```text
    /// # TYPE pacstore_commit_ns summary
    /// pacstore_commit_ns{quantile="0.5"} 10431
    /// pacstore_commit_ns{quantile="0.99"} 29360
    /// pacstore_commit_ns_count 42
    /// pacstore_commit_ns_sum 524288
    /// pacstore_commit_ns_max 31744
    /// ```
    pub fn render_text(&self) -> String {
        let (counters, gauges, histograms, callbacks) = self.collect();
        let mut out = String::new();
        for (name, v) in counters {
            let (base, _) = split_labels(&name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in callbacks {
            let (base, _) = split_labels(&name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in gauges {
            let (base, _) = split_labels(&name);
            let _ = writeln!(out, "# TYPE {base} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, s) in histograms {
            let (base, labels) = split_labels(&name);
            let _ = writeln!(out, "# TYPE {base} summary");
            for (q, qv) in [
                ("0.5", s.p50()),
                ("0.9", s.p90()),
                ("0.99", s.p99()),
                ("0.999", s.p999()),
            ] {
                match labels {
                    Some(l) => {
                        let _ = writeln!(out, "{base}{{{l},quantile=\"{q}\"}} {qv}");
                    }
                    None => {
                        let _ = writeln!(out, "{base}{{quantile=\"{q}\"}} {qv}");
                    }
                }
            }
            let suffix = |out: &mut String, kind: &str, v: u64| {
                let _ = match labels {
                    Some(l) => writeln!(out, "{base}_{kind}{{{l}}} {v}"),
                    None => writeln!(out, "{base}_{kind} {v}"),
                };
            };
            suffix(&mut out, "count", s.count());
            suffix(&mut out, "sum", s.sum);
            suffix(&mut out, "min", s.min_value());
            suffix(&mut out, "max", s.max_value());
        }
        out
    }

    /// Serde-free JSON exposition (same hand-rolled idiom as the
    /// `bench` crate's BENCH files): counters (including callbacks),
    /// gauges, and per-histogram percentile summaries.
    pub fn snapshot_json(&self) -> String {
        let (counters, gauges, histograms, callbacks) = self.collect();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in counters.iter().chain(callbacks.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", esc(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", esc(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, s) in &histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                esc(name),
                s.count(),
                s.sum,
                s.mean(),
                s.min_value(),
                s.p50(),
                s.p90(),
                s.p99(),
                s.p999(),
                s.max_value()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Materialize a consistent-enough view without holding the lock
    /// while reading histogram buckets or running callbacks.
    #[allow(clippy::type_complexity)]
    fn collect(
        &self,
    ) -> (
        Vec<(String, u64)>,
        Vec<(String, i64)>,
        Vec<(String, HistogramSnapshot)>,
        Vec<(String, u64)>,
    ) {
        let (counters, gauges, hists, callbacks) = {
            let inner = self.inner.lock().unwrap();
            (
                inner
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .callbacks
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        (
            counters.into_iter().map(|(k, c)| (k, c.get())).collect(),
            gauges.into_iter().map(|(k, g)| (k, g.get())).collect(),
            hists
                .into_iter()
                .map(|(k, h)| (k, h.snapshot()))
                .collect(),
            callbacks.into_iter().map(|(k, f)| (k, f())).collect(),
        )
    }
}

/// The process-wide registry every store/bench/example records into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// Build a labeled metric name: `labeled("x_ns", &[("shard", "003")])`
/// is `x_ns{shard="003"}`. Multiple labels join with `,`.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Split `name{labels}` into `(name, Some(labels))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Escape a string for embedding in a JSON key/value.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x_total"), Some(3));
        let h1 = r.histogram("h_ns");
        let h2 = r.histogram("h_ns");
        h1.record(10);
        h2.record(20);
        assert_eq!(r.histogram_snapshot("h_ns").unwrap().count(), 2);
        assert_eq!(r.histogram_snapshot("missing"), None);
    }

    #[test]
    fn gauges_and_callbacks() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge_value("depth"), Some(3));
        r.register_callback("cb_total", || 42);
        r.register_callback("cb_total", || 999); // first wins
        assert_eq!(r.counter_value("cb_total"), Some(42));
    }

    #[test]
    fn gauge_set_batches_under_one_lock() {
        let r = Registry::new();
        r.gauge("a").set(1); // pre-existing handle is reused, not shadowed
        let a = r.gauge("a");
        r.gauge_set(&[("a", 10), ("b", -3), ("c", 0)]);
        assert_eq!(a.get(), 10);
        assert_eq!(r.gauge_value("b"), Some(-3));
        assert_eq!(r.gauge_value("c"), Some(0));
        let text = r.render_text();
        assert!(text.contains("# TYPE b gauge\nb -3\n"), "{text}");
    }

    #[test]
    fn labeled_names_and_prefix_merge() {
        let r = Registry::new();
        let n0 = labeled("w_ns", &[("shard", "000")]);
        let n1 = labeled("w_ns", &[("shard", "001")]);
        assert_eq!(n0, "w_ns{shard=\"000\"}");
        r.histogram(&n0).record(100);
        r.histogram(&n1).record(200);
        let merged = r.histogram_snapshot_prefixed("w_ns");
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum, 300);
    }

    #[test]
    fn render_text_format() {
        let r = Registry::new();
        r.counter("c_total").add(7);
        r.gauge("g").set(-4);
        r.histogram(&labeled("h_ns", &[("shard", "000")])).record(100);
        r.register_callback("cb_total", || 1);
        let text = r.render_text();
        assert!(text.contains("# TYPE c_total counter\nc_total 7\n"), "{text}");
        assert!(text.contains("# TYPE g gauge\ng -4\n"), "{text}");
        assert!(text.contains("# TYPE cb_total counter\ncb_total 1\n"), "{text}");
        assert!(
            text.contains("h_ns{shard=\"000\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("h_ns_count{shard=\"000\"} 1"), "{text}");
        assert!(text.contains("h_ns_sum{shard=\"000\"} 100"), "{text}");
    }

    #[test]
    fn empty_histogram_scrapes_are_sentinel_free() {
        // A registered-but-never-recorded histogram must scrape as
        // zeros in both exposition formats — no u64::MAX sentinel.
        let r = Registry::new();
        r.histogram("idle_ns");
        let text = r.render_text();
        assert!(text.contains("idle_ns_count 0"), "{text}");
        assert!(text.contains("idle_ns_min 0"), "{text}");
        assert!(text.contains("idle_ns_max 0"), "{text}");
        assert!(text.contains("idle_ns{quantile=\"0.99\"} 0"), "{text}");
        assert!(!text.contains("18446744073709551615"), "{text}");
        let json = r.snapshot_json();
        assert!(
            json.contains("\"idle_ns\": {\"count\": 0, \"sum\": 0, \"mean\": 0.0, \"min\": 0"),
            "{json}"
        );
        assert!(!json.contains("18446744073709551615"), "{json}");
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter("c_total").add(7);
        r.gauge("g").set(3);
        r.histogram("h_ns").record(50);
        let json = r.snapshot_json();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"c_total\": 7"), "{json}");
        assert!(json.contains("\"g\": 3"), "{json}");
        assert!(json.contains("\"h_ns\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"p99\": 50"), "{json}");
        // Balanced braces — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
