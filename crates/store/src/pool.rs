//! A capped buffer pool of decoded leaf blocks — the residency policy
//! behind out-of-core paged stores.
//!
//! A [`BufferPool`] holds up to `capacity` *frames*, each caching one
//! decoded page (an `Arc<B>` plus its byte accounting). Lookups pin the
//! frame with a [`PageGuard`]; eviction is **clock** (second chance):
//! every hit sets a referenced bit (admission does not, so one-touch
//! scans are evicted before re-used pages), the clock hand sweeps
//! frames clearing bits and evicts the first unreferenced, unpinned
//! frame it finds. Pinned frames are never evicted — when every frame is pinned
//! the pool *overflows* (admits beyond capacity) rather than deadlock;
//! capacity is a target, pins are correctness.
//!
//! "Eviction" only drops the pool's strong `Arc`: queries already
//! holding the block (and the cpam layer's per-leaf weak caches) keep
//! it alive until they finish, so eviction bounds *pool-owned* memory
//! without invalidating in-flight readers.
//!
//! Stats (hits/misses/evictions plus resident/pinned gauges) are
//! plain atomics so metric scrapes never contend with the page path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::StoreError;

/// One cached page.
struct Frame<B> {
    page: u32,
    block: Arc<B>,
    /// Accounted heap bytes (payload + block header), fixed at admission.
    bytes: usize,
    /// Second-chance bit: set on every hit, cleared by the clock sweep.
    referenced: bool,
    /// Outstanding [`PageGuard`]s; non-zero frames are never evicted.
    pins: u32,
}

/// Table + frames behind one mutex: the page path takes it once per
/// lookup, metric reads never do.
struct PoolState<B> {
    /// Frame slots; `None` slots are listed in `free`.
    frames: Vec<Option<Frame<B>>>,
    /// page id -> slot index.
    table: HashMap<u32, usize>,
    /// Recycled empty slots.
    free: Vec<usize>,
    /// Clock hand: next slot the eviction sweep examines.
    hand: usize,
}

/// Point-in-time pool statistics. Counters are monotone; gauges are
/// instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured frame budget.
    pub capacity_pages: usize,
    /// Frames currently holding a page (may exceed capacity while
    /// overflowed by pins).
    pub resident_pages: usize,
    /// Accounted bytes of resident pages.
    pub resident_bytes: usize,
    /// Frames with at least one outstanding guard.
    pub pinned_pages: usize,
    /// Lookups served from a resident frame.
    pub hits: u64,
    /// Lookups that had to fetch.
    pub misses: u64,
    /// Frames dropped by the clock sweep.
    pub evictions: u64,
}

/// A capped, pinning, clock-evicting cache of decoded pages. See the
/// module docs for the policy.
pub struct BufferPool<B> {
    capacity: usize,
    state: Mutex<PoolState<B>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident_bytes: AtomicUsize,
    resident_pages: AtomicUsize,
    pinned_pages: AtomicUsize,
}

impl<B> BufferPool<B> {
    /// Creates a pool targeting `capacity` resident pages (clamped to
    /// at least one frame).
    pub fn new(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(BufferPool {
            capacity,
            state: Mutex::new(PoolState {
                frames: Vec::new(),
                table: HashMap::new(),
                free: Vec::new(),
                hand: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            resident_pages: AtomicUsize::new(0),
            pinned_pages: AtomicUsize::new(0),
        })
    }

    /// The configured frame budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `page` pinned, fetching (and possibly evicting) on miss.
    ///
    /// `fetch` produces the decoded block and its accounted byte size;
    /// it runs under the pool lock, so concurrent lookups of the same
    /// page fetch once. The guard keeps the frame pinned until dropped.
    ///
    /// # Errors
    ///
    /// Propagates `fetch`'s error; the pool is unchanged on failure.
    pub fn get(
        self: &Arc<Self>,
        page: u32,
        fetch: impl FnOnce() -> Result<(Arc<B>, usize), StoreError>,
    ) -> Result<PageGuard<B>, StoreError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&slot) = state.table.get(&page) {
            let frame = state.frames[slot].as_mut().expect("table points at empty slot");
            frame.referenced = true;
            if frame.pins == 0 {
                self.pinned_pages.fetch_add(1, Ordering::Relaxed);
            }
            frame.pins += 1;
            self.hits.fetch_add(1, Ordering::Relaxed);
            let block = Arc::clone(&frame.block);
            return Ok(PageGuard { pool: Arc::clone(self), slot, block });
        }

        // Miss: fetch under the lock (single-flight per page), then
        // find a slot — free list, growth up to capacity, clock sweep,
        // or overflow when everything is pinned.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (block, bytes) = fetch()?;
        let slot = match state.free.pop() {
            Some(slot) => slot,
            None if state.frames.len() < self.capacity => {
                state.frames.push(None);
                state.frames.len() - 1
            }
            None => match self.clock_evict(&mut state) {
                Some(slot) => slot,
                None => {
                    // Every frame pinned: overflow rather than fail.
                    state.frames.push(None);
                    state.frames.len() - 1
                }
            },
        };
        state.table.insert(page, slot);
        state.frames[slot] = Some(Frame {
            page,
            block: Arc::clone(&block),
            bytes,
            // Admitted *without* the reference bit: only a later hit
            // earns the second chance, so a one-touch scan cannot
            // flush pages that are actually being re-used.
            referenced: false,
            pins: 1,
        });
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.resident_pages.fetch_add(1, Ordering::Relaxed);
        self.pinned_pages.fetch_add(1, Ordering::Relaxed);
        Ok(PageGuard { pool: Arc::clone(self), slot, block })
    }

    /// Runs the clock hand until it frees a slot, or returns `None`
    /// after two full sweeps find only pinned frames.
    fn clock_evict(&self, state: &mut PoolState<B>) -> Option<usize> {
        let n = state.frames.len();
        debug_assert!(n > 0);
        // Two passes suffice: the first clears every referenced bit the
        // sweep crosses, so the second can only be stopped by pins.
        for _ in 0..2 * n {
            let slot = state.hand;
            state.hand = (state.hand + 1) % n;
            let Some(frame) = state.frames[slot].as_mut() else { continue };
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let frame = state.frames[slot].take().expect("checked above");
            state.table.remove(&frame.page);
            self.resident_bytes.fetch_sub(frame.bytes, Ordering::Relaxed);
            self.resident_pages.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Some(slot);
        }
        None
    }

    fn unpin(&self, slot: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let frame = state.frames[slot].as_mut().expect("unpin of evicted frame");
        debug_assert!(frame.pins > 0);
        frame.pins -= 1;
        if frame.pins == 0 {
            self.pinned_pages.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// True if `page` is currently resident (regardless of pins).
    pub fn contains(&self, page: u32) -> bool {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.table.contains_key(&page)
    }

    /// Snapshot of the pool's counters and gauges.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity_pages: self.capacity,
            resident_pages: self.resident_pages.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            pinned_pages: self.pinned_pages.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl<B> std::fmt::Debug for BufferPool<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool").field("stats", &self.stats()).finish()
    }
}

/// A pinned page: dereferences to the block, unpins its frame on drop.
/// The frame cannot be evicted while any guard on it lives.
#[derive(Debug)]
pub struct PageGuard<B> {
    pool: Arc<BufferPool<B>>,
    slot: usize,
    block: Arc<B>,
}

impl<B> PageGuard<B> {
    /// A shared handle to the block that outlives the pin. The pool may
    /// evict the frame after the guard drops; the returned `Arc` keeps
    /// the block itself alive regardless.
    pub fn share(&self) -> Arc<B> {
        Arc::clone(&self.block)
    }
}

impl<B> std::ops::Deref for PageGuard<B> {
    type Target = B;

    fn deref(&self) -> &B {
        &self.block
    }
}

impl<B> Drop for PageGuard<B> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(v: u32) -> impl FnOnce() -> Result<(Arc<Vec<u32>>, usize), StoreError> {
        move || Ok((Arc::new(vec![v; 4]), 16))
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let pool = BufferPool::new(4);
        {
            let g = pool.get(7, fetch(7)).unwrap();
            assert_eq!(*g, vec![7; 4]);
        }
        let g = pool.get(7, || panic!("resident page refetched")).unwrap();
        assert_eq!(*g, vec![7; 4]);
        drop(g);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident_pages, 1);
        assert_eq!(s.resident_bytes, 16);
        assert_eq!(s.pinned_pages, 0);
    }

    #[test]
    fn capacity_bounds_residency() {
        let pool = BufferPool::new(3);
        for p in 0..10 {
            drop(pool.get(p, fetch(p)).unwrap());
        }
        let s = pool.stats();
        assert_eq!(s.resident_pages, 3);
        assert_eq!(s.resident_bytes, 48);
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 7);
    }

    #[test]
    fn second_chance_protects_hot_page() {
        let pool = BufferPool::new(2);
        drop(pool.get(0, fetch(0)).unwrap());
        drop(pool.get(1, fetch(1)).unwrap());
        // Re-reference page 0, then force an eviction: the sweep gives
        // 0 its second chance and takes 1.
        drop(pool.get(0, || panic!("page 0 evicted")).unwrap());
        drop(pool.get(2, fetch(2)).unwrap());
        assert!(pool.contains(0), "hot page lost its second chance");
        assert!(!pool.contains(1));
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let pool = BufferPool::new(2);
        let hold = pool.get(0, fetch(0)).unwrap();
        for p in 1..6 {
            drop(pool.get(p, fetch(p)).unwrap());
        }
        assert!(pool.contains(0), "pinned page evicted");
        assert_eq!(*hold, vec![0; 4]);
        drop(hold);
        // Unpinned now; further pressure may take it.
        for p in 6..12 {
            drop(pool.get(p, fetch(p)).unwrap());
        }
        assert!(!pool.contains(0));
        assert!(pool.stats().resident_pages <= 2);
    }

    #[test]
    fn all_pinned_overflows_instead_of_deadlocking() {
        let pool = BufferPool::new(2);
        let a = pool.get(0, fetch(0)).unwrap();
        let b = pool.get(1, fetch(1)).unwrap();
        let c = pool.get(2, fetch(2)).unwrap();
        let s = pool.stats();
        assert_eq!(s.resident_pages, 3, "overflow frame admitted");
        assert_eq!(s.pinned_pages, 3);
        drop((a, b, c));
        assert_eq!(pool.stats().pinned_pages, 0);
        // The overflow frame is reclaimable once unpinned.
        for p in 3..8 {
            drop(pool.get(p, fetch(p)).unwrap());
        }
        assert!(pool.stats().resident_pages <= 3);
    }

    #[test]
    fn fetch_error_leaves_pool_unchanged() {
        let pool = BufferPool::<Vec<u32>>::new(2);
        let err = pool.get(9, || Err(StoreError::Truncated("page"))).unwrap_err();
        assert!(matches!(err, StoreError::Truncated("page")));
        let s = pool.stats();
        assert_eq!(s.resident_pages, 0);
        assert_eq!(s.misses, 1);
        assert!(!pool.contains(9));
    }

    #[test]
    fn share_outlives_eviction() {
        let pool = BufferPool::new(1);
        let shared = pool.get(0, fetch(0)).unwrap().share();
        drop(pool.get(1, fetch(1)).unwrap());
        assert!(!pool.contains(0));
        assert_eq!(*shared, vec![0; 4], "evicted block stays alive via Arc");
    }
}
