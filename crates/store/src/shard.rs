//! The sharded store: N independent MVCC shards over disjoint key
//! ranges, with atomic cross-shard batch commits.
//!
//! Each shard is a complete single-directory store in miniature — its
//! own PaC-tree state, snapshot page, and write-ahead log in a
//! `shard-NNN/` subdirectory — so independent key ranges commit with
//! independent tree updates, applied **in parallel** with
//! [`parlay::join`] (the same batch-parallel ethos as the paper's
//! `multi_insert`, scaled out across trees). What makes the composite
//! a single store rather than N stores is the *global commit
//! protocol*:
//!
//! 1. **Prepare** — a global commit id `g` is assigned, the batch is
//!    split by key range ([`crate::Router`]), and each participating
//!    shard appends one WAL record tagged with `g` and the full
//!    participant set.
//! 2. **Commit** — one record `{g, participants, version vector}` is
//!    appended to the `manifest.pac` log (`fsync`ed when
//!    [`StoreOptions::fsync_commits`] is set). This is the
//!    acknowledgment point.
//! 3. **Publish** — the new shard maps and the version vector become
//!    visible to readers atomically, under one state lock.
//!
//! Recovery (open) replays the manifest and every shard WAL, then
//! rolls a global commit forward **iff it is fully prepared**: every
//! participant either holds a checksum-valid WAL record for `g` or has
//! `g`'s effect baked into its snapshot page. A partially prepared
//! commit — a crash between shard appends — is dropped from *every*
//! WAL (truncated at the record boundary), so a global commit is never
//! partially visible. A fully prepared commit whose manifest record
//! was lost rolls forward and the manifest is healed. With
//! `fsync_commits`, shard WALs are synced before the manifest record
//! is written, so every *acknowledged* commit is fully prepared on
//! disk and survives; without it the same ordering holds for process
//! crashes (completed `write`s survive) but not machine crashes.
//!
//! Readers get cross-shard snapshot isolation: [`ShardedStore::snapshot`]
//! pins one consistent version vector (one `Arc` bump per shard) and
//! never observes a half-published commit.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use codecs::{bytecode, BlockIo, RawCodec};
use cpam::{NoAug, PacMap};
use parking_lot::{Condvar, Mutex};

use crate::error::StoreError;
use crate::lifecycle::{self, GcStats, LifecycleStats, RetentionPolicy, VersionRegistry};
use crate::metrics::StoreMetrics;
use crate::mvcc::{
    apply_ops, Op, StoreKey, StoreOptions, StoreValue, LOCK_FILE, LOG_FILE, MAX_INCR_CHAIN,
    PAGED_FILE, SNAPSHOT_FILE,
};
use crate::pagefmt;
use crate::router::{Router, PARTITION_FILE};
use crate::wal;

/// File name of the global-commit manifest inside a sharded store
/// directory.
pub const MANIFEST_FILE: &str = "manifest.pac";

/// Name of shard `i`'s subdirectory inside a sharded store directory.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

// ---------------------------------------------------------------------
// Manifest records
// ---------------------------------------------------------------------

/// One manifest record: global commit `global` committed with the given
/// participant set, leaving the store at `locals` (one local version
/// per shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ManifestRecord {
    pub global: u64,
    pub participants: Vec<u32>,
    pub locals: Vec<u64>,
}

/// Encodes one manifest record with the same framing as a WAL record
/// (`wal::frame`): payload = `format byte (wal::LOG_FORMAT), global
/// varint, pcount varint + ids, shard count varint + locals`.
pub(crate) fn encode_manifest_record(rec: &ManifestRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(rec.locals.len() * 4 + 16);
    payload.push(wal::LOG_FORMAT);
    bytecode::write_varint(rec.global, &mut payload);
    bytecode::write_varint(rec.participants.len() as u64, &mut payload);
    for &p in &rec.participants {
        bytecode::write_varint(u64::from(p), &mut payload);
    }
    bytecode::write_varint(rec.locals.len() as u64, &mut payload);
    for &l in &rec.locals {
        bytecode::write_varint(l, &mut payload);
    }
    wal::frame(&payload)
}

/// Result of replaying a manifest image: the longest valid prefix of
/// records (strictly increasing globals), each with its starting byte
/// offset, plus torn-tail information — mirroring [`wal::replay`].
#[derive(Debug)]
pub(crate) struct ManifestReplay {
    pub records: Vec<ManifestRecord>,
    pub offsets: Vec<usize>,
    pub valid_len: usize,
    pub torn: bool,
    /// A checksum-valid record with a foreign format byte: the manifest
    /// was written by a build with a different record layout.
    pub format_mismatch: Option<u8>,
}

/// Parses one checksum-verified manifest payload; `None` when it is
/// malformed, `Err(found)` on a foreign format byte.
fn parse_manifest_payload(payload: &[u8], shard_count: usize) -> Result<Option<ManifestRecord>, u8> {
    let mut at = 0;
    let parse = |at: &mut usize| -> Option<ManifestRecord> {
        let global = bytecode::try_read_varint(payload, at)?;
        let pcount = bytecode::try_read_varint(payload, at)? as usize;
        if pcount > shard_count {
            return None;
        }
        let mut participants = Vec::with_capacity(pcount);
        for _ in 0..pcount {
            let p = u32::try_from(bytecode::try_read_varint(payload, at)?).ok()?;
            if p as usize >= shard_count {
                return None;
            }
            participants.push(p);
        }
        let lcount = bytecode::try_read_varint(payload, at)? as usize;
        if lcount != shard_count {
            return None;
        }
        let mut locals = Vec::with_capacity(lcount);
        for _ in 0..lcount {
            locals.push(bytecode::try_read_varint(payload, at)?);
        }
        if *at != payload.len() {
            return None;
        }
        Some(ManifestRecord { global, participants, locals })
    };
    match payload.first() {
        None => Ok(None),
        Some(&f) if f != wal::LOG_FORMAT => Err(f),
        Some(_) => {
            at += 1;
            Ok(parse(&mut at))
        }
    }
}

pub(crate) fn replay_manifest(bytes: &[u8], shard_count: usize) -> ManifestReplay {
    let mut records: Vec<ManifestRecord> = Vec::new();
    let mut offsets: Vec<usize> = Vec::new();
    let mut frames = wal::Frames::new(bytes);
    let mut format_mismatch = None;
    loop {
        let start = frames.pos;
        let Some(payload) = frames.next() else { break };
        match parse_manifest_payload(payload, shard_count) {
            Ok(Some(rec)) => {
                if records.last().is_some_and(|prev| prev.global >= rec.global) {
                    frames.pos = start;
                    break;
                }
                records.push(rec);
                offsets.push(start);
            }
            Err(found) => {
                format_mismatch = Some(found);
                frames.pos = start;
                break;
            }
            Ok(None) => {
                frames.pos = start;
                break;
            }
        }
    }
    ManifestReplay {
        records,
        offsets,
        valid_len: frames.pos,
        torn: format_mismatch.is_none() && frames.pos < bytes.len(),
        format_mismatch,
    }
}

// ---------------------------------------------------------------------
// Parallel helpers
// ---------------------------------------------------------------------

/// Applies `f(i)` to every index in `0..n` in parallel via binary
/// forking ([`parlay::join`]), collecting results in index order. The
/// shard fan-out primitive for commit/save/open.
fn par_for_shards<R: Send>(n: usize, f: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
    fn rec<R: Send>(lo: usize, hi: usize, f: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
        if hi - lo <= 1 {
            return (lo..hi).map(f).collect();
        }
        let mid = lo + (hi - lo) / 2;
        let (mut l, r) = parlay::join(|| rec(lo, mid, f), || rec(mid, hi, f));
        l.extend(r);
        l
    }
    if n == 0 {
        return Vec::new();
    }
    parlay::run(|| rec(0, n, f))
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// An immutable cross-shard view: one consistent version vector, pinned
/// for as long as it lives. Obtained from [`ShardedStore::snapshot`] /
/// [`ShardedStore::snapshot_at`].
pub struct ShardedSnapshot<K, V, C = RawCodec>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    global: u64,
    locals: Vec<u64>,
    router: Arc<Router<K>>,
    maps: Vec<PacMap<K, V, NoAug, C>>,
}

impl<K, V, C> Clone for ShardedSnapshot<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn clone(&self) -> Self {
        ShardedSnapshot {
            global: self.global,
            locals: self.locals.clone(),
            router: Arc::clone(&self.router),
            maps: self.maps.clone(),
        }
    }
}

impl<K, V, C> ShardedSnapshot<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    /// The global commit id this snapshot pinned.
    pub fn version(&self) -> u64 {
        self.global
    }

    /// The per-shard local versions this snapshot pinned (one entry per
    /// shard, in shard order).
    pub fn version_vector(&self) -> &[u64] {
        &self.locals
    }

    /// The value under `k` at this version vector.
    pub fn get(&self, k: &K) -> Option<V> {
        self.maps[self.router.shard_of(k)].find(k)
    }

    /// True if `k` exists at this version vector.
    pub fn contains_key(&self, k: &K) -> bool {
        self.maps[self.router.shard_of(k)].contains_key(k)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.maps.iter().map(PacMap::len).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.maps.iter().all(PacMap::is_empty)
    }

    /// All entries in global key order (shards hold contiguous ranges,
    /// so concatenating per-shard entries in shard order is sorted).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        for m in &self.maps {
            out.extend(m.to_vec());
        }
        out
    }

    /// The entries with keys in `[lo, hi]`, in key order, composed from
    /// the per-shard [`PacMap::range_entries`] of the overlapping
    /// shards only.
    pub fn range_entries(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        if lo > hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        for s in self.router.shards_overlapping(lo, hi) {
            out.extend(self.maps[s].range_entries(lo, hi));
        }
        out
    }

    /// The map backing shard `i`, for the full per-range query
    /// interface.
    pub fn shard_map(&self, i: usize) -> &PacMap<K, V, NoAug, C> {
        &self.maps[i]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.maps.len()
    }
}

impl<K, V, C> std::fmt::Debug for ShardedSnapshot<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSnapshot")
            .field("version", &self.global)
            .field("version_vector", &self.locals)
            .field("len", &self.len())
            .finish()
    }
}

/// One retained version: `(global, locals, maps)`.
type HistoryEntry<K, V, C> = (u64, Vec<u64>, Vec<PacMap<K, V, NoAug, C>>);

struct ShardedState<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    global: u64,
    locals: Vec<u64>,
    maps: Vec<PacMap<K, V, NoAug, C>>,
    /// Recent `(global, locals, maps)` triples, oldest first; always
    /// contains the current version as its back element.
    history: VecDeque<HistoryEntry<K, V, C>>,
}

/// The durable half of a sharded store: per-shard WAL handles plus the
/// manifest. `Poisoned` mirrors [`crate::PacStore`]'s log poisoning: an
/// append failure that could not be rolled back refuses further commits
/// until [`ShardedStore::save`] resets every log.
enum DurableState {
    /// In-memory store: nothing to log.
    None,
    /// Healthy logs, appends allowed.
    Active { shard_logs: Vec<File>, manifest: File },
    /// Unrolled-back append failure; the shard logs are kept so
    /// `save()` can reset and heal them (the manifest is reopened from
    /// its checkpoint).
    Poisoned { shard_logs: Vec<File> },
}

/// One shard's latest persisted checkpoint: the version its on-disk
/// page chain reaches, the pinned tree at that version (the base the
/// next incremental page diffs against — pinning it keeps its nodes
/// shared, so pointer identity against it is sound), and the chain
/// length (bounding `open`'s chain walk via [`MAX_INCR_CHAIN`]).
struct ShardCheckpoint<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    version: u64,
    map: PacMap<K, V, NoAug, C>,
    chain_len: usize,
}

/// The sharded store's checkpoint state: the global commit id the last
/// checkpoint covered plus one optional pin per shard (`None` until the
/// shard's first page is written).
struct Checkpoints<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    global: Option<u64>,
    shards: Vec<Option<ShardCheckpoint<K, V, C>>>,
}

impl<K, V, C> Checkpoints<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn empty(shards: usize) -> Self {
        Checkpoints {
            global: None,
            shards: (0..shards).map(|_| None).collect(),
        }
    }
}

struct CommitQueue<K, V> {
    pending: Vec<(u64, Vec<Op<K, V>>)>,
    next_ticket: u64,
    results: HashMap<u64, Result<u64, String>>,
    leader_running: bool,
}

struct Inner<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    opts: StoreOptions,
    router: Arc<Router<K>>,
    dir: Option<PathBuf>,
    /// Held for the lifetime of this store's handles (see
    /// [`crate::PacStore`]'s lock discussion).
    _dir_lock: Option<File>,
    /// Lock order: `checkpoint_lock` before `log` before `state`
    /// (leaders hold `log` across prepare, manifest append, *and*
    /// publish; `save`/`compact` hold `checkpoint_lock` across a whole
    /// checkpoint cycle).
    checkpoint_lock: Mutex<()>,
    log: Mutex<DurableState>,
    state: Mutex<ShardedState<K, V, C>>,
    commit: Mutex<CommitQueue<K, V>>,
    commit_cv: Condvar,
    /// Per-shard checkpoint pins; `checkpoint_lock` serializes writers.
    checkpoints: Mutex<Checkpoints<K, V, C>>,
    registry: VersionRegistry,
    lifecycle: Mutex<LifecycleStats>,
    /// Pre-resolved observability handles (see [`crate::metrics`]); hot
    /// paths record via relaxed atomics only.
    metrics: Arc<StoreMetrics>,
    /// Per-shard page caches behind lazy (paged) opens; entries are
    /// `Some` exactly when [`StoreOptions::pool_pages`] is set on a
    /// durable store. Independent pools keep shard opens and query
    /// paging embarrassingly parallel (no shared lock).
    pools: Vec<Option<Arc<crate::pool::BufferPool<C::Block>>>>,
}

/// A versioned, persistent key-value store partitioned into N
/// independent MVCC shards by key range, with atomic cross-shard batch
/// commits (prepare: per-shard WAL records tagged with a global commit
/// id; commit: one manifest record; recovery: roll forward fully
/// prepared commits, drop partial ones — see DESIGN.md §6).
///
/// Handles are cheap to clone and share one store; all methods take
/// `&self`.
///
/// ```
/// use store::{Op, Router, ShardedStore};
///
/// let store: ShardedStore<u64, u64> =
///     ShardedStore::in_memory(Router::uniform_span(4, 1000)).unwrap();
///
/// // One commit spanning several shards: atomic, one global version.
/// let v1 = store
///     .commit((0..1000).map(|k| Op::Put(k, k)).collect())
///     .unwrap();
/// assert_eq!(v1, 1);
/// assert_eq!(store.len(), 1000);
///
/// // Snapshots pin a consistent version vector across all shards.
/// let snap = store.snapshot();
/// store.commit(vec![Op::Delete(0), Op::Put(999, 7)]).unwrap();
/// assert_eq!(snap.get(&0), Some(0));
/// assert_eq!(snap.version_vector().len(), 4);
/// ```
pub struct ShardedStore<K, V, C = RawCodec>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    inner: Arc<Inner<K, V, C>>,
}

impl<K, V, C> Clone for ShardedStore<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn clone(&self) -> Self {
        ShardedStore { inner: Arc::clone(&self.inner) }
    }
}

impl<K, V, C> std::fmt::Debug for ShardedStore<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.state.lock();
        f.debug_struct("ShardedStore")
            .field("shards", &self.inner.router.shard_count())
            .field("version", &s.global)
            .field("version_vector", &s.locals)
            .field("len", &s.maps.iter().map(PacMap::len).sum::<usize>())
            .field("dir", &self.inner.dir)
            .finish()
    }
}

impl<K, V, C> ShardedStore<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    // One argument per piece of open state the two open paths assemble;
    // bundling them into a struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        opts: StoreOptions,
        router: Router<K>,
        durable_dir: Option<(PathBuf, File)>,
        log: DurableState,
        state: ShardedState<K, V, C>,
        checkpoints: Checkpoints<K, V, C>,
        registry: VersionRegistry,
        pools: Vec<Option<Arc<crate::pool::BufferPool<C::Block>>>>,
    ) -> Self {
        let metrics = StoreMetrics::new(router.shard_count());
        let (dir, dir_lock) = match durable_dir {
            Some((dir, lock)) => (Some(dir), Some(lock)),
            None => (None, None),
        };
        ShardedStore {
            inner: Arc::new(Inner {
                opts,
                router: Arc::new(router),
                dir,
                _dir_lock: dir_lock,
                checkpoint_lock: Mutex::new(()),
                log: Mutex::new(log),
                state: Mutex::new(state),
                commit: Mutex::new(CommitQueue {
                    pending: Vec::new(),
                    next_ticket: 0,
                    results: HashMap::new(),
                    leader_running: false,
                }),
                commit_cv: Condvar::new(),
                checkpoints: Mutex::new(checkpoints),
                registry,
                lifecycle: Mutex::new(LifecycleStats::default()),
                metrics,
                pools,
            }),
        }
    }

    fn fresh_state(opts: &StoreOptions, shards: usize) -> ShardedState<K, V, C> {
        let maps: Vec<PacMap<K, V, NoAug, C>> =
            (0..shards).map(|_| PacMap::with_block_size(opts.block_size)).collect();
        let locals = vec![0u64; shards];
        let mut history = VecDeque::new();
        history.push_back((0, locals.clone(), maps.clone()));
        ShardedState { global: 0, locals, maps, history }
    }

    /// An empty, ephemeral sharded store (no directory: `save` is an
    /// error).
    ///
    /// # Errors
    ///
    /// Currently none (the router is already validated); fallible for
    /// signature stability with the durable constructors.
    pub fn in_memory(router: Router<K>) -> Result<Self, StoreError> {
        Self::in_memory_with(router, StoreOptions::default())
    }

    /// [`ShardedStore::in_memory`] with explicit options.
    ///
    /// # Errors
    ///
    /// See [`ShardedStore::in_memory`].
    pub fn in_memory_with(router: Router<K>, opts: StoreOptions) -> Result<Self, StoreError> {
        let shards = router.shard_count();
        let state = Self::fresh_state(&opts, shards);
        Ok(Self::from_parts(
            opts,
            router,
            None,
            DurableState::None,
            state,
            Checkpoints::empty(shards),
            VersionRegistry::default(),
            vec![None; shards],
        ))
    }

    /// Opens an existing sharded store in `dir`, recovering the routing
    /// from the persisted partition map.
    ///
    /// # Errors
    ///
    /// [`StoreError::PartitionMismatch`] when `dir` has no partition
    /// map; otherwise see [`ShardedStore::open_or_create`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`ShardedStore::open`] with explicit options.
    ///
    /// # Errors
    ///
    /// See [`ShardedStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        if !dir.join(PARTITION_FILE).exists() {
            return Err(StoreError::PartitionMismatch(format!(
                "{} has no partition map; create the store with open_or_create",
                dir.display()
            )));
        }
        Self::open_impl(dir, None, opts)
    }

    /// Opens the sharded store in `dir`, creating it with `router`'s
    /// partitioning if the directory holds no partition map yet. When
    /// the store already exists, the *persisted* partition map wins —
    /// `router` is checked against it and a mismatch is a typed error
    /// (re-partitioning an existing store would misroute its data).
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another handle holds the directory;
    /// [`StoreError::PartitionMismatch`] when `router` disagrees with
    /// the persisted map; every shard-level open error of
    /// [`crate::PacStore::open`]; [`StoreError::Corrupt`] for torn
    /// manifests or WAL tails under [`StoreOptions::strict_log`].
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        router: Router<K>,
        opts: StoreOptions,
    ) -> Result<Self, StoreError> {
        Self::open_impl(dir.as_ref(), Some(router), opts)
    }

    fn open_impl(
        dir: &Path,
        router: Option<Router<K>>,
        opts: StoreOptions,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;

        // One advisory lock for the whole sharded directory.
        let dir_lock = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(LOCK_FILE))?;
        match dir_lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => return Err(StoreError::Locked),
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }

        // Partition map: persisted one wins; a supplied router must
        // agree with it.
        let partition_path = dir.join(PARTITION_FILE);
        let router = if partition_path.exists() {
            let persisted = Router::<K>::load(&partition_path)?;
            if let Some(given) = router {
                if given != persisted {
                    return Err(StoreError::PartitionMismatch(format!(
                        "supplied router ({} shards) differs from the persisted partition map \
                         ({} shards or different boundaries)",
                        given.shard_count(),
                        persisted.shard_count()
                    )));
                }
            }
            persisted
        } else {
            let router = router.ok_or_else(|| {
                StoreError::PartitionMismatch(format!(
                    "{} has no partition map; create the store with open_or_create",
                    dir.display()
                ))
            })?;
            router.save(&partition_path)?;
            router
        };
        let shards = router.shard_count();

        // Load shard page chains (full page plus incrementals) in
        // parallel. `None` chain length = no pages yet. With a pool
        // budget configured, each shard gets its own page cache and a
        // paged shard snapshot opens lazily through it.
        let pools: Vec<Option<Arc<crate::pool::BufferPool<C::Block>>>> =
            (0..shards).map(|_| opts.pool_pages.map(crate::pool::BufferPool::new)).collect();
        type Loaded<K, V, C> =
            Vec<Result<(PacMap<K, V, NoAug, C>, u64, Option<usize>), StoreError>>;
        let loaded: Loaded<K, V, C> = {
            let pools = &pools;
            par_for_shards(shards, &move |i| {
                let sdir = dir.join(shard_dir_name(i));
                std::fs::create_dir_all(&sdir)?;
                match crate::paged::load_chain_auto::<K, V, C>(
                    &sdir,
                    PAGED_FILE,
                    SNAPSHOT_FILE,
                    pools[i].as_ref(),
                )? {
                    Some((m, v, applied)) => Ok((m, v, Some(applied))),
                    None => Ok((PacMap::with_block_size(opts.block_size), 0, None)),
                }
            })
        };
        let mut maps = Vec::with_capacity(shards);
        let mut snap_vers = Vec::with_capacity(shards);
        let mut chain_lens = Vec::with_capacity(shards);
        for r in loaded {
            let (m, v, cl) = r?;
            maps.push(m);
            snap_vers.push(v);
            chain_lens.push(cl);
        }
        // Pin each shard's checkpoint *before* WAL replay mutates the
        // maps: the pinned clone is the diff base for the next
        // incremental page, and must be exactly what the pages decode
        // to.
        let checkpoint_pins: Vec<Option<ShardCheckpoint<K, V, C>>> = maps
            .iter()
            .zip(&snap_vers)
            .zip(&chain_lens)
            .map(|((m, &v), &cl)| {
                cl.map(|chain_len| ShardCheckpoint { version: v, map: m.clone(), chain_len })
            })
            .collect();

        // Pins persisted by a previous handle, loaded *before* the
        // recovery walk: its history eviction must honor them or a
        // pinned global commit silently vanishes across a reopen.
        let registry = VersionRegistry::from_pins(lifecycle::load_pins(dir)?);

        // Replay the manifest and every shard WAL.
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest_bytes =
            if manifest_path.exists() { std::fs::read(&manifest_path)? } else { Vec::new() };
        let manifest = replay_manifest(&manifest_bytes, shards);
        if let Some(found) = manifest.format_mismatch {
            return Err(StoreError::Corrupt(format!(
                "manifest record format {found:#04x}, this build reads {:#04x}",
                wal::LOG_FORMAT
            )));
        }
        if manifest.torn && opts.strict_log {
            return Err(StoreError::Corrupt(format!(
                "torn or corrupt manifest tail after byte {}",
                manifest.valid_len
            )));
        }
        let manifest_by_global: HashMap<u64, &ManifestRecord> =
            manifest.records.iter().map(|r| (r.global, r)).collect();

        let expected = crate::checksum::schema_id::<(K, V)>();
        let mut shard_replays = Vec::with_capacity(shards);
        for i in 0..shards {
            let log_path = dir.join(shard_dir_name(i)).join(LOG_FILE);
            let bytes = if log_path.exists() { std::fs::read(&log_path)? } else { Vec::new() };
            let replay = wal::replay::<K, V>(&bytes, expected);
            if let Some(found) = replay.schema_mismatch {
                return Err(StoreError::SchemaMismatch { found, expected });
            }
            if let Some(found) = replay.format_mismatch {
                return Err(StoreError::Corrupt(format!(
                    "shard {i}: log record format {found:#04x}, this build reads {:#04x}",
                    wal::LOG_FORMAT
                )));
            }
            if replay.torn && opts.strict_log {
                return Err(StoreError::Corrupt(format!(
                    "shard {i}: torn or corrupt log tail after byte {}",
                    replay.valid_len
                )));
            }
            shard_replays.push(replay);
        }

        // ----- Reconcile: roll forward fully-prepared global commits,
        // drop partial ones. ------------------------------------------
        //
        // Gather the globally-ordered list of commit ids appearing in
        // any WAL *or* the manifest (a manifest-only id is an empty
        // commit or a checkpoint). At most the last in-flight commit
        // can be incomplete, but the walk handles any prefix uniformly.
        let mut all_globals: Vec<u64> = shard_replays
            .iter()
            .flat_map(|r| r.records.iter().map(|rec| rec.global))
            .chain(manifest.records.iter().map(|r| r.global))
            .collect();
        all_globals.sort_unstable();
        all_globals.dedup();

        // Per shard, an index into its record list as we consume them
        // in global order (records within a WAL are strictly increasing
        // in both local version and global id).
        let mut cursor = vec![0usize; shards];
        let mut locals = snap_vers.clone();
        // The checkpoint baseline: the latest manifest record whose
        // whole version vector is covered by the snapshot pages (the
        // last checkpoint, in the common case). Every commit at or
        // below it is provably baked into the pages — locals are
        // monotone in the global id — so such commits are never
        // re-judged (stale WAL records left by an interrupted save()
        // must not be mistaken for partial prepares). Local versions
        // never exceed the global commit counter, so the pages also
        // give a floor when the manifest is gone entirely.
        let checkpoint_global = manifest
            .records
            .iter()
            .filter(|r| r.locals.iter().zip(&snap_vers).all(|(l, s)| l <= s))
            .map(|r| r.global)
            .max()
            .unwrap_or(0);
        let mut global =
            checkpoint_global.max(snap_vers.iter().copied().max().unwrap_or(0));

        let mut history: VecDeque<HistoryEntry<K, V, C>> = VecDeque::new();
        history.push_back((global, locals.clone(), maps.clone()));

        // Truncation decision: byte length to keep per shard WAL and
        // for the manifest (None = keep everything valid).
        let mut cut: Option<(u64, Vec<usize>, usize)> = None;
        let mut healed: Vec<ManifestRecord> = Vec::new();

        'walk: for &g in &all_globals {
            if g <= checkpoint_global {
                // Covered by the checkpoint: consume any stale records
                // without judging (their effects are in the pages).
                for i in 0..shards {
                    while shard_replays[i]
                        .records
                        .get(cursor[i])
                        .is_some_and(|rec| rec.global <= g)
                    {
                        cursor[i] += 1;
                    }
                }
                continue;
            }
            // Which shards hold a record for g? The WAL prepare records
            // carry the authoritative participant list (a checkpoint
            // record for the same id has an empty one), so prefer
            // theirs; fall back to the manifest for record-less ids.
            let mut holders: Vec<usize> = Vec::new();
            let mut participants: Option<Vec<u32>> = None;
            for i in 0..shards {
                while shard_replays[i]
                    .records
                    .get(cursor[i])
                    .is_some_and(|rec| rec.global < g)
                {
                    cursor[i] += 1;
                }
                if let Some(rec) = shard_replays[i].records.get(cursor[i]) {
                    if rec.global == g {
                        holders.push(i);
                        if participants.is_none() {
                            participants = Some(rec.participants.clone());
                        }
                    }
                }
            }
            let manifest_rec = manifest_by_global.get(&g).copied();
            let participants = participants
                .or_else(|| manifest_rec.map(|r| r.participants.clone()))
                .unwrap_or_default();

            // Fully prepared? A manifest record whose whole version
            // vector is covered by the snapshot pages is already
            // applied (checkpoints; a save() interrupted before WAL
            // truncation). Otherwise every participant must hold its
            // record or have the commit baked into its page — and a
            // participant-less id must at least be manifested (an
            // empty commit), never inferred from nothing.
            let covered = manifest_rec
                .is_some_and(|r| r.locals.iter().zip(&snap_vers).all(|(l, s)| l <= s));
            let prepared = covered
                || ((!participants.is_empty() || manifest_rec.is_some())
                    && participants.iter().all(|&p| {
                        let p = p as usize;
                        holders.contains(&p)
                            || manifest_rec.is_some_and(|r| snap_vers[p] >= r.locals[p])
                    }));

            if !prepared {
                // A cut is only legitimate for the *last* in-flight
                // commit: the manifest record is appended after every
                // prepare, so an acknowledged (manifested) commit
                // *later* than g proves g was once fully prepared too —
                // its records were truncated by a checkpoint whose
                // pages no longer reach it. That is missing history,
                // never a torn tail; cutting would silently resurrect
                // an old state.
                if manifest.records.iter().any(|r| r.global > g) {
                    return Err(StoreError::VersionGap { checkpoint: global, first: g });
                }
                // Drop g and everything after it from every WAL and
                // from the manifest: all-or-nothing.
                let wal_cuts: Vec<usize> = (0..shards)
                    .map(|i| {
                        shard_replays[i]
                            .records
                            .iter()
                            .position(|rec| rec.global >= g)
                            .map_or(shard_replays[i].valid_len, |idx| shard_replays[i].offsets[idx])
                    })
                    .collect();
                let manifest_cut = manifest
                    .records
                    .iter()
                    .position(|rec| rec.global >= g)
                    .map_or(manifest.valid_len, |idx| manifest.offsets[idx]);
                cut = Some((g, wal_cuts, manifest_cut));
                break 'walk;
            }

            // Roll forward: apply each holder's record (skipping shards
            // whose snapshot page already covers it).
            for &i in &holders {
                let rec = &shard_replays[i].records[cursor[i]];
                // Local versions advance by exactly one per commit a
                // shard participates in; a farther jump means the
                // record's predecessors are in neither the pages nor
                // the WAL (a shard page chain was deleted or rolled
                // back after its WAL was truncated past it).
                if rec.version > locals[i] + 1 {
                    return Err(StoreError::VersionGap {
                        checkpoint: locals[i],
                        first: rec.version,
                    });
                }
                if rec.version > locals[i] {
                    maps[i] = apply_ops(std::mem::take(&mut maps[i]), rec.ops.clone());
                    locals[i] = rec.version;
                }
                cursor[i] += 1;
            }
            // A manifest record asserts the whole version vector at g;
            // after rolling g forward every shard must have reached it
            // (participants via their records or pages, bystanders via
            // earlier commits). A shard left behind lost history.
            if let Some(mrec) = manifest_rec {
                for (&have, &want) in locals.iter().zip(&mrec.locals) {
                    if have < want {
                        return Err(StoreError::VersionGap { checkpoint: have, first: want });
                    }
                }
            }
            if g > global {
                global = g;
                if !manifest_by_global.contains_key(&g) {
                    healed.push(ManifestRecord {
                        global: g,
                        participants,
                        locals: locals.clone(),
                    });
                }
                history.push_back((global, locals.clone(), maps.clone()));
                // Same pin-aware eviction as the commit path: a pinned
                // commit must survive the recovery walk exactly as it
                // survives live commits.
                lifecycle::evict_history(
                    &mut history,
                    opts.history_limit,
                    |(g, _, _)| *g,
                    &registry,
                );
            }
        }
        // The back of the history must always be the current state
        // (the walk skips history entries for commits at or below the
        // baseline, which can drift `locals` without advancing `global`
        // when a manifest was deleted out from under the store).
        if history.back().is_none_or(|(g, l, _)| *g != global || *l != locals) {
            history.push_back((global, locals.clone(), maps.clone()));
            lifecycle::evict_history(&mut history, opts.history_limit, |(g, _, _)| *g, &registry);
        }

        if (cut.is_some() || !healed.is_empty()) && opts.strict_log {
            return Err(StoreError::Corrupt(
                "manifest and shard logs disagree (partially prepared or unmanifested \
                 global commit)"
                    .into(),
            ));
        }

        // ----- Apply the recovery decisions to the files. -------------
        for (i, replay) in shard_replays.iter().enumerate() {
            let keep = cut.as_ref().map_or(replay.valid_len, |(_, wal_cuts, _)| wal_cuts[i]);
            let log_path = dir.join(shard_dir_name(i)).join(LOG_FILE);
            let file_len = if log_path.exists() { std::fs::metadata(&log_path)?.len() } else { 0 };
            if u64::try_from(keep).unwrap_or(u64::MAX) < file_len {
                let f = OpenOptions::new().write(true).open(&log_path)?;
                f.set_len(keep as u64)?;
            }
        }
        {
            let keep = cut.as_ref().map_or(manifest.valid_len, |(_, _, mcut)| *mcut);
            if (keep as u64) < manifest_bytes.len() as u64 {
                let f = OpenOptions::new().write(true).create(true).truncate(false).open(&manifest_path)?;
                f.set_len(keep as u64)?;
            }
        }

        // Open append handles, then heal the manifest (fully-prepared
        // commits whose manifest record was lost by the crash).
        let shard_logs: Vec<File> = (0..shards)
            .map(|i| -> Result<File, StoreError> {
                let sdir = dir.join(shard_dir_name(i));
                let log_path = sdir.join(LOG_FILE);
                let existed = log_path.exists();
                let f = OpenOptions::new().create(true).append(true).open(&log_path)?;
                if !existed {
                    // Persist the directory entry; appended commits sync
                    // only the file's data.
                    pagefmt::fsync_dir(&sdir)?;
                }
                Ok(f)
            })
            .collect::<Result<_, _>>()?;
        let manifest_existed = manifest_path.exists();
        let mut manifest_file =
            OpenOptions::new().create(true).append(true).open(&manifest_path)?;
        if !manifest_existed {
            pagefmt::fsync_dir(dir)?;
        }
        // Heal: at most one commit can have been in flight at the
        // crash, so a healed record always extends the manifest's
        // ascending global order; guard anyway so a hand-edited
        // directory cannot make us write an out-of-order record.
        let manifest_last = cut
            .as_ref()
            .map(|(cut_g, _, _)| {
                manifest
                    .records
                    .iter()
                    .filter(|r| r.global < *cut_g)
                    .map(|r| r.global)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or_else(|| manifest.records.last().map_or(0, |r| r.global));
        for rec in healed.iter().filter(|r| r.global > manifest_last) {
            let bytes = encode_manifest_record(rec);
            wal::append_bytes(&mut manifest_file, &bytes, opts.fsync_commits)
                .map_err(|fail| StoreError::Io(fail.error))?;
        }

        let checkpoints = Checkpoints {
            global: checkpoint_pins
                .iter()
                .any(Option::is_some)
                .then_some(checkpoint_global),
            shards: checkpoint_pins,
        };
        let state = ShardedState { global, locals, maps, history };
        Ok(Self::from_parts(
            opts,
            router,
            Some((dir.to_path_buf(), dir_lock)),
            DurableState::Active { shard_logs, manifest: manifest_file },
            state,
            checkpoints,
            registry,
            pools,
        ))
    }

    /// Submits one batch and blocks until it is durably prepared on
    /// every participating shard, recorded in the manifest, and visible
    /// in a published version vector; returns the global commit id.
    /// Batches queued concurrently are applied together by a group
    /// leader — one parallel fan-out over shards and one manifest
    /// append for the whole group.
    ///
    /// Within a batch and across a group, later ops win per key.
    ///
    /// # Errors
    ///
    /// [`StoreError::CommitFailed`] when the group's prepare or
    /// manifest append failed; no version is published in that case.
    pub fn commit(&self, ops: Vec<Op<K, V>>) -> Result<u64, StoreError> {
        let inner = &self.inner;
        let enqueued = Instant::now();
        let mut wait_ns = 0u64;
        let mut q = inner.commit.lock();
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.pending.push((ticket, ops));
        loop {
            if let Some(result) = q.results.remove(&ticket) {
                drop(q);
                inner.metrics.ticket_wait.record(wait_ns);
                inner.metrics.commit.record_duration(enqueued.elapsed());
                return result.map_err(StoreError::CommitFailed);
            }
            if q.leader_running {
                let parked = Instant::now();
                inner.commit_cv.wait(&mut q);
                wait_ns += parked.elapsed().as_nanos() as u64;
                continue;
            }
            q.leader_running = true;
            let group = std::mem::take(&mut q.pending);
            drop(q);
            let tickets: Vec<u64> = group.iter().map(|(t, _)| *t).collect();
            let all_ops: Vec<Op<K, V>> = group.into_iter().flat_map(|(_, ops)| ops).collect();
            let outcome = self.apply_group(all_ops);
            q = inner.commit.lock();
            q.leader_running = false;
            match &outcome {
                Ok(version) => {
                    for t in tickets {
                        q.results.insert(t, Ok(*version));
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for t in tickets {
                        q.results.insert(t, Err(msg.clone()));
                    }
                }
            }
            inner.commit_cv.notify_all();
        }
    }

    /// Shorthand for committing a single [`Op::Put`].
    ///
    /// # Errors
    ///
    /// See [`ShardedStore::commit`].
    pub fn put(&self, key: K, value: V) -> Result<u64, StoreError> {
        self.commit(vec![Op::Put(key, value)])
    }

    /// Shorthand for committing a single [`Op::Delete`].
    ///
    /// # Errors
    ///
    /// See [`ShardedStore::commit`].
    pub fn delete(&self, key: K) -> Result<u64, StoreError> {
        self.commit(vec![Op::Delete(key)])
    }

    /// Applies one commit group: range-split, parallel per-shard tree
    /// updates, the two-phase durable protocol, one published version
    /// vector.
    fn apply_group(&self, all_ops: Vec<Op<K, V>>) -> Result<u64, StoreError> {
        let inner = &self.inner;
        let mut log_guard = inner.log.lock();
        if matches!(*log_guard, DurableState::Poisoned { .. }) {
            return Err(StoreError::LogPoisoned);
        }
        let (base_maps, base_locals, base_global) = {
            let s = inner.state.lock();
            (s.maps.clone(), s.locals.clone(), s.global)
        };
        let g = base_global + 1;

        // Range-split the group; participants are the shards with ops.
        let buckets = inner.router.split_ops(all_ops);
        let participants: Vec<u32> = buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| i as u32)
            .collect();

        // Parallel fan-out: per participating shard, encode the prepare
        // record and apply the sub-batch to its tree.
        let durable = matches!(*log_guard, DurableState::Active { .. });
        let schema = crate::checksum::schema_id::<(K, V)>();
        struct ShardResult<M> {
            shard: usize,
            new_map: M,
            new_local: u64,
            record: Option<Vec<u8>>,
        }
        let work: Vec<(usize, Vec<Op<K, V>>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .collect();
        let apply_start = Instant::now();
        let results: Vec<ShardResult<PacMap<K, V, NoAug, C>>> = {
            let work = &work;
            let base_maps = &base_maps;
            let base_locals = &base_locals;
            let participants = &participants;
            par_for_shards(work.len(), &move |w| {
                let (shard, ops) = &work[w];
                let new_local = base_locals[*shard] + 1;
                let record = durable
                    .then(|| wal::encode_record(new_local, g, participants, schema, ops));
                ShardResult {
                    shard: *shard,
                    // Hand the leader's private clone of the shard map to
                    // the consuming path (the published original stays in
                    // `state`, untouched).
                    new_map: apply_ops(base_maps[*shard].clone(), ops.iter().cloned()),
                    new_local,
                    record,
                }
            })
        };
        inner.metrics.apply.record_duration(apply_start.elapsed());

        // Durability before visibility: prepare every shard, then write
        // the manifest record (the commit point), rolling back every
        // appended prepare on failure.
        if let DurableState::Active { shard_logs, manifest } = &mut *log_guard {
            let mut appended: Vec<(usize, u64)> = Vec::new(); // (shard, prior len)
            let mut failure: Option<std::io::Error> = None;
            for r in &results {
                let file = &mut shard_logs[r.shard];
                let prior = match file.metadata() {
                    Ok(m) => m.len(),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                };
                match wal::append_bytes(
                    file,
                    r.record.as_deref().expect("durable record"),
                    inner.opts.fsync_commits,
                ) {
                    Ok(timings) => {
                        inner.metrics.record_wal_append(
                            r.shard,
                            timings,
                            inner.opts.fsync_commits,
                        );
                        appended.push((r.shard, prior));
                    }
                    Err(fail) => {
                        if !fail.rolled_back {
                            appended.push((r.shard, prior));
                        }
                        failure = Some(fail.error);
                        break;
                    }
                }
            }
            let mut stranded = false;
            if failure.is_none() {
                let mut locals = base_locals.clone();
                for r in &results {
                    locals[r.shard] = r.new_local;
                }
                let rec = encode_manifest_record(&ManifestRecord {
                    global: g,
                    participants: participants.clone(),
                    locals,
                });
                match wal::append_bytes(manifest, &rec, inner.opts.fsync_commits) {
                    Ok(timings) => {
                        inner.metrics.manifest_append.record(timings.write_ns);
                        if inner.opts.fsync_commits {
                            inner.metrics.wal_fsync.record(timings.sync_ns);
                        }
                    }
                    Err(fail) => {
                        // A partial manifest record that could not be
                        // truncated away would swallow every later
                        // record at replay: poison below.
                        stranded = !fail.rolled_back;
                        failure = Some(fail.error);
                    }
                }
            }
            if let Some(error) = failure {
                // Undo every prepare so the next commit starts from a
                // clean record boundary; if any rollback fails, poison.
                // Under fsync_commits the truncation itself must reach
                // disk, or a power loss could resurrect the prepared
                // records of this *failed* commit and recovery would
                // roll it forward.
                for (shard, prior) in appended {
                    let f = &shard_logs[shard];
                    let ok = f.set_len(prior).is_ok()
                        && (!inner.opts.fsync_commits || f.sync_data().is_ok());
                    if !ok {
                        stranded = true;
                    }
                }
                if stranded {
                    let state = std::mem::replace(&mut *log_guard, DurableState::None);
                    if let DurableState::Active { shard_logs, .. } = state {
                        *log_guard = DurableState::Poisoned { shard_logs };
                    }
                }
                return Err(error.into());
            }
        }

        // Publish atomically.
        let mut s = inner.state.lock();
        s.global = g;
        for r in results {
            s.locals[r.shard] = r.new_local;
            s.maps[r.shard] = r.new_map;
        }
        let snapshot = (g, s.locals.clone(), s.maps.clone());
        s.history.push_back(snapshot);
        lifecycle::evict_history(
            &mut s.history,
            inner.opts.history_limit,
            |(g, _, _)| *g,
            &inner.registry,
        );
        drop(s);
        drop(log_guard);
        Ok(g)
    }

    /// Pins the current version vector: one `Arc` bump per shard under
    /// a briefly-held lock; never observes a half-published commit.
    pub fn snapshot(&self) -> ShardedSnapshot<K, V, C> {
        self.inner.metrics.snapshots.inc();
        let s = self.inner.state.lock();
        ShardedSnapshot {
            global: s.global,
            locals: s.locals.clone(),
            router: Arc::clone(&self.inner.router),
            maps: s.maps.clone(),
        }
    }

    /// Pins the version vector of a historical global commit
    /// (cross-shard time travel).
    ///
    /// # Errors
    ///
    /// [`StoreError::VersionNotFound`] if `global` is older than the
    /// retained history (or never existed).
    pub fn snapshot_at(&self, global: u64) -> Result<ShardedSnapshot<K, V, C>, StoreError> {
        self.inner.metrics.snapshots.inc();
        let s = self.inner.state.lock();
        s.history
            .iter()
            .find(|(g, _, _)| *g == global)
            .map(|(g, locals, maps)| ShardedSnapshot {
                global: *g,
                locals: locals.clone(),
                router: Arc::clone(&self.inner.router),
                maps: maps.clone(),
            })
            .ok_or(StoreError::VersionNotFound(global))
    }

    /// The global commit ids currently reachable via
    /// [`ShardedStore::snapshot_at`], oldest first.
    pub fn versions(&self) -> Vec<u64> {
        self.inner.state.lock().history.iter().map(|(g, _, _)| *g).collect()
    }

    /// The current (latest committed) global commit id.
    pub fn current_version(&self) -> u64 {
        self.inner.state.lock().global
    }

    /// The current per-shard local versions, in shard order.
    pub fn version_vector(&self) -> Vec<u64> {
        self.inner.state.lock().locals.clone()
    }

    /// The value under `k` in the current version. Unlike
    /// [`ShardedStore::snapshot`], this pins only the owning shard's
    /// map (one `Arc` bump under the state lock), so point reads don't
    /// pay the full version-vector copy.
    pub fn get(&self, k: &K) -> Option<V> {
        let _span = obs::span!(self.inner.metrics.point_read);
        let shard = self.inner.router.shard_of(k);
        let map = self.inner.state.lock().maps[shard].clone();
        map.find(k)
    }

    /// The entries with keys in `[lo, hi]` in the current version, in
    /// key order: pins the version vector and delegates to
    /// [`ShardedSnapshot::range_entries`] (only overlapping shards are
    /// scanned).
    pub fn range_entries(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let _span = obs::span!(self.inner.metrics.range_read);
        self.snapshot().range_entries(lo, hi)
    }

    /// Total number of entries in the current version.
    pub fn len(&self) -> usize {
        self.inner.state.lock().maps.iter().map(PacMap::len).sum()
    }

    /// True if the current version is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.router.shard_count()
    }

    /// The shard owning `k`.
    pub fn shard_of(&self, k: &K) -> usize {
        self.inner.router.shard_of(k)
    }

    /// The partition map.
    pub fn router(&self) -> &Router<K> {
        &self.inner.router
    }

    /// Writes every shard's snapshot page **in parallel**, then resets
    /// all shard WALs and the manifest (a single checkpoint record at
    /// the saved version vector). Returns the saved global commit id.
    ///
    /// # Errors
    ///
    /// [`StoreError::Ephemeral`] for in-memory stores; I/O errors.
    pub fn save(&self) -> Result<u64, StoreError> {
        let inner = &self.inner;
        let dir = inner.dir.as_ref().ok_or(StoreError::Ephemeral)?;
        let _span = obs::span!(inner.metrics.save);
        let _ckpt = inner.checkpoint_lock.lock();
        let mut log_guard = inner.log.lock();
        let (maps, locals, global) = {
            let s = inner.state.lock();
            (s.maps.clone(), s.locals.clone(), s.global)
        };

        // Parallel snapshot-page writes (atomic per shard) in the
        // configured format (paged under a pool budget, classic
        // otherwise). A full page supersedes the shard's incremental
        // chain; stale links and superseded other-format files that
        // survive a crash here are skipped (and re-deleted) next time.
        let paged = inner.opts.pool_pages.is_some();
        let writes: Vec<Result<usize, StoreError>> = {
            let maps = &maps;
            let locals = &locals;
            par_for_shards(maps.len(), &move |i| {
                let sdir = dir.join(shard_dir_name(i));
                std::fs::create_dir_all(&sdir)?;
                crate::paged::write_full_snapshot(
                    paged,
                    &sdir,
                    PAGED_FILE,
                    SNAPSHOT_FILE,
                    &maps[i],
                    locals[i],
                )
            })
        };
        let mut full_page_bytes = 0u64;
        for w in writes {
            full_page_bytes += w? as u64;
        }
        // Re-pin every shard at the pages just written.
        {
            let mut ckpts = inner.checkpoints.lock();
            for (i, m) in maps.iter().enumerate() {
                ckpts.shards[i] = Some(ShardCheckpoint {
                    version: locals[i],
                    map: m.clone(),
                    chain_len: 0,
                });
                inner.metrics.incr_chain_depth[i].set(0);
            }
            ckpts.global = Some(global);
        }
        {
            let mut stats = inner.lifecycle.lock();
            stats.full_saves += maps.len() as u64;
            stats.full_page_bytes += full_page_bytes;
        }

        // Checkpoint the manifest, then reset the WALs it covers.
        // Holding the log lock, no commit is between prepare and
        // publish, so every logged record is covered by the pages just
        // written. A successful reset also heals a poisoned log.
        let checkpoint = encode_manifest_record(&ManifestRecord {
            global,
            participants: Vec::new(),
            locals,
        });
        pagefmt::write_file_atomic(&dir.join(MANIFEST_FILE), &checkpoint)?;
        let state = std::mem::replace(&mut *log_guard, DurableState::None);
        match state {
            DurableState::None => {}
            DurableState::Active { shard_logs, .. } | DurableState::Poisoned { shard_logs } => {
                let mut ok = true;
                let mut truncated = 0u64;
                for f in &shard_logs {
                    truncated += f.metadata().map(|m| m.len()).unwrap_or(0);
                    if f.set_len(0).is_err() {
                        ok = false;
                    }
                }
                inner.lifecycle.lock().wal_bytes_truncated += truncated;
                // The checkpoint replaced the manifest file on disk;
                // reopen an append handle on the new file. Any failure
                // here poisons rather than leaving the state `None`,
                // which would silently stop logging while still
                // acknowledging commits.
                let manifest = match OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(MANIFEST_FILE))
                {
                    Ok(f) => f,
                    Err(e) => {
                        *log_guard = DurableState::Poisoned { shard_logs };
                        return Err(e.into());
                    }
                };
                *log_guard = if ok {
                    DurableState::Active { shard_logs, manifest }
                } else {
                    DurableState::Poisoned { shard_logs }
                };
                if !ok {
                    return Err(StoreError::Io(std::io::Error::other(
                        "failed to truncate a shard log after checkpoint",
                    )));
                }
            }
        }
        Ok(global)
    }

    /// One checkpoint-then-truncate cycle: persists the committed
    /// version vector — per shard, an incremental page diffed against
    /// the shard's pinned checkpoint when the chain is short, a full
    /// page otherwise, nothing at all for shards unchanged since their
    /// checkpoint — then drops the WAL prefixes and manifest records
    /// the pages now cover. Returns the checkpointed global commit id.
    ///
    /// Unlike [`ShardedStore::save`], the page writes happen *outside*
    /// the log lock, so commits keep flowing while pages are encoded;
    /// only the final manifest/WAL truncation briefly excludes writers.
    /// Records appended during the page writes are past the captured
    /// version vector and survive the truncation.
    ///
    /// # Errors
    ///
    /// [`StoreError::Ephemeral`] for in-memory stores; I/O errors. A
    /// failure during the truncation step poisons the log
    /// (conservatively — the on-disk state stays recoverable);
    /// [`ShardedStore::save`] heals it.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let inner = &self.inner;
        let dir = inner.dir.as_ref().ok_or(StoreError::Ephemeral)?;
        let _span = obs::span!(inner.metrics.compact_pause);
        let _ckpt = inner.checkpoint_lock.lock();

        // Capture the committed state to checkpoint. Commits may land
        // after this point; they stay in the logs.
        let (maps, locals, global) = {
            let s = inner.state.lock();
            (s.maps.clone(), s.locals.clone(), s.global)
        };
        let shards = maps.len();

        // ----- Phase 1: page writes, in parallel, no log lock. --------
        enum PageWrite {
            Skipped,
            Incremental(usize),
            Full(usize),
        }
        let mut ckpts = inner.checkpoints.lock();
        let pages_span = obs::span!(inner.metrics.compact_pages);
        let paged = inner.opts.pool_pages.is_some();
        let writes: Vec<Result<PageWrite, StoreError>> = {
            let maps = &maps;
            let locals = &locals;
            let pins = &ckpts.shards;
            par_for_shards(shards, &move |i| {
                let sdir = dir.join(shard_dir_name(i));
                std::fs::create_dir_all(&sdir)?;
                match pins[i].as_ref() {
                    Some(ck) if ck.version == locals[i] => Ok(PageWrite::Skipped),
                    Some(ck) if ck.chain_len < MAX_INCR_CHAIN => {
                        let page = pagefmt::encode_incremental(
                            &maps[i], &ck.map, ck.version, locals[i],
                        );
                        pagefmt::write_file_atomic(
                            &sdir.join(pagefmt::incr_file_name(locals[i])),
                            &page,
                        )?;
                        Ok(PageWrite::Incremental(page.len()))
                    }
                    _ => {
                        let n = crate::paged::write_full_snapshot(
                            paged,
                            &sdir,
                            PAGED_FILE,
                            SNAPSHOT_FILE,
                            &maps[i],
                            locals[i],
                        )?;
                        Ok(PageWrite::Full(n))
                    }
                }
            })
        };
        // Re-pin every shard whose page landed — even when another
        // shard failed, so the pins always match the on-disk chains
        // (the next incremental must diff against the newest link).
        let mut first_err = None;
        {
            let mut stats = inner.lifecycle.lock();
            for (i, w) in writes.into_iter().enumerate() {
                let new_pin = |chain_len| {
                    Some(ShardCheckpoint { version: locals[i], map: maps[i].clone(), chain_len })
                };
                match w {
                    Ok(PageWrite::Skipped) => {}
                    Ok(PageWrite::Incremental(n)) => {
                        let chain_len =
                            ckpts.shards[i].as_ref().map_or(1, |ck| ck.chain_len + 1);
                        ckpts.shards[i] = new_pin(chain_len);
                        inner.metrics.incr_chain_depth[i].set(chain_len as i64);
                        stats.incremental_saves += 1;
                        stats.incremental_page_bytes += n as u64;
                    }
                    Ok(PageWrite::Full(n)) => {
                        ckpts.shards[i] = new_pin(0);
                        inner.metrics.incr_chain_depth[i].set(0);
                        stats.full_saves += 1;
                        stats.full_page_bytes += n as u64;
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
        }
        drop(pages_span);
        if let Some(e) = first_err {
            return Err(e);
        }
        ckpts.global = Some(global);
        drop(ckpts);

        // ----- Phase 2: truncate, under the log lock. -----------------
        //
        // Ordering is WAL trims first, manifest swap last, and every
        // intermediate state recovers exactly: `open` judges coverage
        // against the pages themselves, so a commit's WAL records can
        // vanish the moment the pages reach its version vector, with
        // or without the manifest checkpoint record.
        let truncate_span = obs::span!(inner.metrics.compact_truncate);
        let mut log_guard = inner.log.lock();
        let poisoned = matches!(&*log_guard, DurableState::Poisoned { .. });
        let poison = |log_guard: &mut DurableState| {
            let state = std::mem::replace(log_guard, DurableState::None);
            if let DurableState::Active { shard_logs, .. }
            | DurableState::Poisoned { shard_logs } = state
            {
                *log_guard = DurableState::Poisoned { shard_logs };
            }
        };
        let expected = crate::checksum::schema_id::<(K, V)>();
        let mut wal_bytes_truncated = 0u64;
        for (i, &local) in locals.iter().enumerate() {
            let log_path = dir.join(shard_dir_name(i)).join(LOG_FILE);
            let bytes = if log_path.exists() { std::fs::read(&log_path)? } else { Vec::new() };
            let replay = wal::replay::<K, V>(&bytes, expected);
            // Keep the records past the captured vector (commits that
            // landed during phase 1) and drop any torn tail. A poisoned
            // log holds no acknowledged record past the vector — only
            // the stranded prepares of a *failed* commit, which must
            // not survive into a healed log (their global id will be
            // reused) — so it resets completely.
            let keep: &[u8] = if poisoned {
                &[]
            } else {
                let cut = replay
                    .records
                    .iter()
                    .position(|r| r.version > local)
                    .map_or(replay.valid_len, |idx| replay.offsets[idx]);
                &bytes[cut..replay.valid_len]
            };
            if keep.len() == bytes.len() {
                continue;
            }
            wal_bytes_truncated += (bytes.len() - keep.len()) as u64;
            if pagefmt::write_file_atomic(&log_path, keep).is_err()
                || !self.reopen_shard_log(&mut log_guard, i, &log_path)
            {
                // The old handle may point at the renamed-over file;
                // refuse appends until save() resets everything.
                poison(&mut log_guard);
                return Err(StoreError::Io(std::io::Error::other(format!(
                    "failed to truncate shard {i}'s log during compaction"
                ))));
            }
        }
        // Swap the manifest for one checkpoint record plus the records
        // past the captured global id.
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest_bytes =
            if manifest_path.exists() { std::fs::read(&manifest_path)? } else { Vec::new() };
        let mreplay = replay_manifest(&manifest_bytes, shards);
        let mcut = mreplay
            .records
            .iter()
            .position(|r| r.global > global)
            .map_or(mreplay.valid_len, |idx| mreplay.offsets[idx]);
        let mut new_manifest = encode_manifest_record(&ManifestRecord {
            global,
            participants: Vec::new(),
            locals: locals.clone(),
        });
        new_manifest.extend_from_slice(&manifest_bytes[mcut..mreplay.valid_len]);
        wal_bytes_truncated +=
            (manifest_bytes.len() - (mreplay.valid_len - mcut)) as u64;
        let reopened = pagefmt::write_file_atomic(&manifest_path, &new_manifest)
            .and_then(|()| {
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&manifest_path)
                    .map_err(StoreError::Io)
            });
        let manifest_file = match reopened {
            Ok(f) => f,
            Err(e) => {
                poison(&mut log_guard);
                return Err(e);
            }
        };
        // Install the new manifest handle; a fully truncated log is
        // also a healed one (the stranded bytes are gone).
        let state = std::mem::replace(&mut *log_guard, DurableState::None);
        match state {
            DurableState::None => {}
            DurableState::Active { shard_logs, .. } | DurableState::Poisoned { shard_logs } => {
                *log_guard = DurableState::Active { shard_logs, manifest: manifest_file };
            }
        }
        drop(log_guard);
        drop(truncate_span);

        let mut stats = inner.lifecycle.lock();
        stats.compactions += 1;
        stats.wal_bytes_truncated += wal_bytes_truncated;
        Ok(global)
    }

    /// Replaces shard `i`'s log handle with a fresh append handle on
    /// `path`; `false` when the open failed (caller poisons).
    fn reopen_shard_log(
        &self,
        log_guard: &mut DurableState,
        i: usize,
        path: &Path,
    ) -> bool {
        let (DurableState::Active { shard_logs, .. } | DurableState::Poisoned { shard_logs }) =
            log_guard
        else {
            return true;
        };
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => {
                shard_logs[i] = f;
                true
            }
            Err(_) => false,
        }
    }

    /// The global commit id of the latest persisted checkpoint (full
    /// pages plus incremental chains), or `None` if nothing was saved
    /// yet.
    pub fn latest_checkpoint(&self) -> Option<u64> {
        self.inner.checkpoints.lock().global
    }

    /// Pins global commit `version` against history eviction and
    /// [`ShardedStore::gc`]: [`ShardedStore::snapshot_at`] keeps
    /// working for it until every pin is released. Pins are counted.
    /// For a durable store the pin table is rewritten atomically, so
    /// the pin also survives a reopen (as long as the shard WALs still
    /// reach the commit).
    ///
    /// # Errors
    ///
    /// [`StoreError::VersionNotFound`] when `version` is not currently
    /// in history (an evicted version cannot be resurrected); I/O
    /// errors persisting the pin table (the in-memory pin is rolled
    /// back, so memory and disk never disagree).
    pub fn pin_version(&self, version: u64) -> Result<(), StoreError> {
        let s = self.inner.state.lock();
        if !s.history.iter().any(|(g, _, _)| *g == version) {
            return Err(StoreError::VersionNotFound(version));
        }
        self.inner.registry.pin(version);
        if let Some(dir) = &self.inner.dir {
            if let Err(e) = lifecycle::persist_pins(dir, &self.inner.registry) {
                self.inner.registry.unpin(version);
                return Err(e);
            }
        }
        drop(s);
        self.inner.metrics.pins.inc();
        Ok(())
    }

    /// Releases one pin on global commit `version`. Durable stores
    /// rewrite the pin table.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotPinned`] when `version` holds no pin; I/O
    /// errors persisting the pin table (the in-memory release is
    /// rolled back).
    pub fn unpin_version(&self, version: u64) -> Result<(), StoreError> {
        let s = self.inner.state.lock();
        if !self.inner.registry.unpin(version) {
            return Err(StoreError::NotPinned(version));
        }
        if let Some(dir) = &self.inner.dir {
            if let Err(e) = lifecycle::persist_pins(dir, &self.inner.registry) {
                self.inner.registry.pin(version);
                return Err(e);
            }
        }
        drop(s);
        self.inner.metrics.unpins.inc();
        Ok(())
    }

    /// The currently pinned global commit ids, ascending.
    pub fn pinned_versions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.inner.registry.pinned().into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Drops retained history outside `policy`'s window (pinned
    /// versions and the current version always survive), releasing
    /// every shard subtree no surviving version shares — see
    /// [`crate::PacStore::gc`].
    pub fn gc(&self, policy: RetentionPolicy) -> GcStats {
        let _span = obs::span!(self.inner.metrics.gc_pause);
        let keep = policy.keep_last.max(1);
        let mut dropped = Vec::new();
        let versions_retained;
        {
            let mut s = self.inner.state.lock();
            let pinned = self.inner.registry.pinned();
            let cut = s.history.len().saturating_sub(keep);
            let old = std::mem::take(&mut s.history);
            for (i, entry) in old.into_iter().enumerate() {
                if i >= cut || pinned.contains(&entry.0) {
                    s.history.push_back(entry);
                } else {
                    dropped.push(entry);
                }
            }
            versions_retained = s.history.len();
        }
        // Drop outside the state lock — freeing deep unshared versions
        // walks whole trees — and measure what came back.
        let versions_dropped = dropped.len();
        let before = cpam::stats::read();
        drop(dropped);
        let nodes_reclaimed = cpam::stats::read().delta(before).nodes_dropped;
        self.inner.metrics.gc_versions_dropped.add(versions_dropped as u64);
        self.inner.metrics.gc_nodes_reclaimed.add(nodes_reclaimed);
        let mut stats = self.inner.lifecycle.lock();
        stats.gc_runs += 1;
        stats.versions_dropped += versions_dropped as u64;
        stats.nodes_reclaimed += nodes_reclaimed;
        GcStats { versions_dropped, versions_retained, nodes_reclaimed }
    }

    /// Cumulative lifecycle counters for this store handle.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        *self.inner.lifecycle.lock()
    }

    /// The store's directory (`None` for in-memory stores).
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// Per-shard page-cache statistics; `None` unless
    /// [`StoreOptions::pool_pages`] is set on a durable store.
    pub fn shard_pool_stats(&self) -> Option<Vec<crate::pool::PoolStats>> {
        let stats: Vec<_> =
            self.inner.pools.iter().filter_map(|p| p.as_ref()).map(|p| p.stats()).collect();
        (!stats.is_empty()).then_some(stats)
    }

    /// Page-cache statistics summed across all shards; `None` unless
    /// [`StoreOptions::pool_pages`] is set on a durable store. Reading
    /// also publishes the summed snapshot into the metrics registry
    /// (`pacstore_pool_*` gauges and counters), so a scrape path that
    /// calls this before rendering gets fresh values.
    pub fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        let total = self.shard_pool_stats().map(|per_shard| {
            let mut total = crate::pool::PoolStats {
                capacity_pages: 0,
                resident_pages: 0,
                resident_bytes: 0,
                pinned_pages: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            };
            for s in per_shard {
                total.capacity_pages += s.capacity_pages;
                total.resident_pages += s.resident_pages;
                total.resident_bytes += s.resident_bytes;
                total.pinned_pages += s.pinned_pages;
                total.hits += s.hits;
                total.misses += s.misses;
                total.evictions += s.evictions;
            }
            total
        });
        if let Some(s) = &total {
            self.inner.metrics.pool.publish(s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(shards: usize) -> ShardedStore<u64, u64> {
        ShardedStore::in_memory(Router::uniform_span(shards, 1_000)).unwrap()
    }

    #[test]
    fn commit_routes_across_shards_and_reads_back() {
        let store = mem(4);
        assert_eq!(store.shard_count(), 4);
        let v = store
            .commit(vec![Op::Put(10, 1), Op::Put(300, 2), Op::Put(600, 3), Op::Put(900, 4)])
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(store.version_vector(), vec![1, 1, 1, 1]);
        assert_eq!(store.get(&10), Some(1));
        assert_eq!(store.get(&300), Some(2));
        assert_eq!(store.get(&600), Some(3));
        assert_eq!(store.get(&900), Some(4));
        assert_eq!(store.len(), 4);

        // A commit touching one shard only advances that shard's local.
        store.commit(vec![Op::Put(11, 11)]).unwrap();
        assert_eq!(store.current_version(), 2);
        assert_eq!(store.version_vector(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn last_op_wins_across_the_whole_batch() {
        let store = mem(3);
        store
            .commit(vec![Op::Put(5, 1), Op::Put(500, 9), Op::Delete(5), Op::Put(5, 3)])
            .unwrap();
        assert_eq!(store.get(&5), Some(3));
        assert_eq!(store.get(&500), Some(9));
    }

    #[test]
    fn snapshot_pins_consistent_version_vector() {
        let store = mem(2);
        store.commit(vec![Op::Put(1, 1), Op::Put(900, 1)]).unwrap();
        let snap = store.snapshot();
        store.commit(vec![Op::Put(1, 2), Op::Put(900, 2)]).unwrap();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.version_vector(), &[1, 1]);
        assert_eq!(snap.get(&1), Some(1));
        assert_eq!(snap.get(&900), Some(1));
        assert_eq!(store.get(&1), Some(2));
        // Time travel by global commit id.
        let back = store.snapshot_at(1).unwrap();
        assert_eq!(back.get(&900), Some(1));
        assert_eq!(store.versions(), vec![0, 1, 2]);
    }

    #[test]
    fn to_vec_is_globally_sorted_and_ranges_compose() {
        let store = mem(4);
        let keys = [999u64, 0, 250, 251, 750, 500, 123, 874];
        store
            .commit(keys.iter().map(|&k| Op::Put(k, k * 10)).collect())
            .unwrap();
        let snap = store.snapshot();
        let mut sorted: Vec<u64> = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            snap.to_vec(),
            sorted.iter().map(|&k| (k, k * 10)).collect::<Vec<_>>()
        );
        assert_eq!(
            snap.range_entries(&123, &750),
            sorted
                .iter()
                .filter(|&&k| (123..=750).contains(&k))
                .map(|&k| (k, k * 10))
                .collect::<Vec<_>>()
        );
        assert_eq!(snap.range_entries(&400, &300), Vec::new());
    }

    #[test]
    fn empty_commit_still_advances_the_global_clock() {
        let store = mem(2);
        let v = store.commit(Vec::new()).unwrap();
        assert_eq!(v, 1);
        assert_eq!(store.version_vector(), vec![0, 0]);
    }

    #[test]
    fn single_shard_matches_unsharded_semantics() {
        let store: ShardedStore<u64, u64> =
            ShardedStore::in_memory(Router::single()).unwrap();
        store.put(1, 10).unwrap();
        store.put(2, 20).unwrap();
        store.delete(1).unwrap();
        assert_eq!(store.get(&1), None);
        assert_eq!(store.get(&2), Some(20));
        assert_eq!(store.current_version(), 3);
        assert_eq!(store.version_vector(), vec![3]);
    }

    #[test]
    fn ephemeral_save_is_typed_error() {
        let store = mem(2);
        assert!(matches!(store.save(), Err(StoreError::Ephemeral)));
    }

    #[test]
    fn gc_respects_window_and_pins_across_shards() {
        let store = mem(3);
        let opts_limit = StoreOptions::default().history_limit;
        assert!(opts_limit >= 6, "test assumes the default window holds v0..=v5");
        for i in 0..5u64 {
            store.commit(vec![Op::Put(i, i), Op::Put(900 + i, i)]).unwrap();
        }
        store.pin_version(2).unwrap();
        let stats = store.gc(RetentionPolicy::keep_last(1));
        assert_eq!(store.versions(), vec![2, 5]);
        assert_eq!(stats.versions_retained, 2);
        assert_eq!(stats.versions_dropped, 4);
        // The pinned cross-shard snapshot still reads consistently.
        let snap = store.snapshot_at(2).unwrap();
        assert_eq!(snap.get(&1), Some(1));
        assert_eq!(snap.get(&901), Some(1));
        assert_eq!(snap.get(&4), None);
        // Unpin, GC again: only the current version survives.
        store.unpin_version(2).unwrap();
        assert!(matches!(
            store.unpin_version(2),
            Err(StoreError::NotPinned(2))
        ));
        store.gc(RetentionPolicy::default());
        assert_eq!(store.versions(), vec![5]);
        assert!(matches!(
            store.snapshot_at(2),
            Err(StoreError::VersionNotFound(2))
        ));
        assert_eq!(store.lifecycle_stats().gc_runs, 2);
    }

    #[test]
    fn pinned_versions_survive_commit_time_eviction() {
        let opts = StoreOptions { history_limit: 2, ..StoreOptions::default() };
        let store: ShardedStore<u64, u64> =
            ShardedStore::in_memory_with(Router::uniform_span(2, 1_000), opts).unwrap();
        store.commit(vec![Op::Put(1, 1)]).unwrap();
        store.pin_version(1).unwrap();
        for i in 2..6u64 {
            store.commit(vec![Op::Put(i, i), Op::Put(990, i)]).unwrap();
        }
        // v1 is pinned; the window keeps the newest alongside it.
        assert_eq!(store.versions(), vec![1, 5]);
        assert_eq!(store.snapshot_at(1).unwrap().get(&1), Some(1));
        assert_eq!(store.pinned_versions(), vec![1]);
        // Pinning an evicted version is a typed error.
        assert!(matches!(
            store.pin_version(3),
            Err(StoreError::VersionNotFound(3))
        ));
    }

    #[test]
    fn compact_and_checkpoint_apis_are_typed_on_ephemeral_stores() {
        let store = mem(2);
        assert!(matches!(store.compact(), Err(StoreError::Ephemeral)));
        assert_eq!(store.latest_checkpoint(), None);
    }

    #[test]
    fn manifest_record_roundtrip_and_tears() {
        let rec = ManifestRecord {
            global: 42,
            participants: vec![0, 2],
            locals: vec![7, 0, 9],
        };
        let mut bytes = encode_manifest_record(&rec);
        let r = replay_manifest(&bytes, 3);
        assert!(!r.torn);
        assert_eq!(r.records, vec![rec.clone()]);
        assert_eq!(r.offsets, vec![0]);

        // Every strict prefix is torn with no records.
        for cut in 0..bytes.len() {
            let r = replay_manifest(&bytes[..cut], 3);
            assert!(r.records.is_empty(), "cut {cut}");
            assert_eq!(r.valid_len, 0);
        }

        // A second record with a non-increasing global is dropped.
        let clean = bytes.len();
        bytes.extend(encode_manifest_record(&ManifestRecord {
            global: 42,
            participants: vec![1],
            locals: vec![7, 1, 9],
        }));
        let r = replay_manifest(&bytes, 3);
        assert!(r.torn);
        assert_eq!(r.valid_len, clean);
        assert_eq!(r.records.len(), 1);

        // Wrong shard count is a parse failure, not a misread.
        let one = encode_manifest_record(&rec);
        assert!(replay_manifest(&one, 2).records.is_empty());
    }
}
