//! The store's error type: every way a disk image or a commit can fail,
//! as a typed error rather than a panic.

use codecs::BlockIoError;

/// Errors from store operations (open, load, save, commit, version
/// lookup).
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a pacstore
    /// snapshot (or the header itself was clobbered).
    BadMagic,
    /// The snapshot was written with a different block codec than the
    /// one this store is instantiated with.
    CodecMismatch {
        /// Codec id found in the file header.
        found: u8,
        /// Codec id of the store's type parameter.
        expected: u8,
        /// Name of the expected codec, for the error message.
        expected_name: &'static str,
    },
    /// The checksum stored in the file does not match the checksum of
    /// its contents: the file was truncated or bit-flipped.
    ChecksumMismatch {
        /// Checksum read from the file trailer.
        stored: u32,
        /// Checksum computed over the file contents.
        computed: u32,
    },
    /// The file was written with different key/value types than the
    /// ones this store is instantiated with (entry-type fingerprints
    /// differ; see [`crate::checksum::schema_id`]).
    SchemaMismatch {
        /// Fingerprint found in the file.
        found: u32,
        /// Fingerprint of the store's key/value types.
        expected: u32,
    },
    /// The byte stream ended inside the named structure.
    Truncated(&'static str),
    /// The bytes parsed but described an impossible structure.
    Corrupt(String),
    /// [`crate::PacStore::snapshot_at`] was asked for a version that is
    /// neither current nor retained in history.
    VersionNotFound(u64),
    /// A disk operation (`save`, log append) on an in-memory store.
    Ephemeral,
    /// The store directory is already open (its lock file is held by
    /// another live handle, possibly in another process).
    Locked,
    /// An earlier failed log append could not be rolled back, so the
    /// log cannot accept further records until [`crate::PacStore::save`]
    /// resets it.
    LogPoisoned,
    /// The commit group this batch was part of failed; the message is
    /// the leader's error.
    CommitFailed(String),
    /// The key-range boundaries handed to a [`crate::Router`] were not
    /// strictly ascending.
    InvalidBoundaries(String),
    /// A sharded store directory's partition map disagrees with the
    /// store being opened (shard count, or a missing/foreign file).
    PartitionMismatch(String),
    /// The log (or manifest) references versions the checkpoint pages
    /// do not reach: the first replayable record is more than one step
    /// past the checkpointed version, so the intermediate history is
    /// gone (a snapshot or incremental page was deleted after the WAL
    /// was truncated past it). Replaying anyway would silently resurrect
    /// an old state with the missing commits lost.
    VersionGap {
        /// The version the checkpoint pages reach.
        checkpoint: u64,
        /// The first version the log asks to apply.
        first: u64,
    },
    /// [`crate::PacStore::unpin_version`] was asked to release a
    /// version that holds no pin.
    NotPinned(u64),
    /// [`crate::PacStore::save_incremental`] was asked to diff against
    /// a version that is not the store's latest checkpoint.
    CheckpointMismatch {
        /// The base version the caller asked to diff against.
        requested: u64,
        /// The store's actual latest checkpoint, if any.
        actual: Option<u64>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => f.write_str("not a pacstore snapshot (bad magic)"),
            StoreError::CodecMismatch {
                found,
                expected,
                expected_name,
            } => write!(
                f,
                "snapshot written with codec id {found}, store expects {expected} ({expected_name})"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): \
                 file truncated or corrupted"
            ),
            StoreError::SchemaMismatch { found, expected } => write!(
                f,
                "entry-type mismatch: file written with key/value types fingerprinted \
                 {found:#010x}, store expects {expected:#010x}"
            ),
            StoreError::Truncated(what) => write!(f, "truncated while reading {what}"),
            StoreError::Corrupt(what) => write!(f, "corrupt data: {what}"),
            StoreError::VersionNotFound(v) => write!(f, "version {v} not in history"),
            StoreError::Ephemeral => f.write_str("store has no directory (in-memory)"),
            StoreError::Locked => {
                f.write_str("store directory is locked by another live handle")
            }
            StoreError::LogPoisoned => f.write_str(
                "batch log poisoned by an unrolled-back append failure; save() resets it"
            ),
            StoreError::CommitFailed(msg) => write!(f, "commit group failed: {msg}"),
            StoreError::InvalidBoundaries(msg) => {
                write!(f, "invalid partition boundaries: {msg}")
            }
            StoreError::PartitionMismatch(msg) => {
                write!(f, "partition map mismatch: {msg}")
            }
            StoreError::VersionGap { checkpoint, first } => write!(
                f,
                "log references version {first} but the checkpoint pages only reach \
                 {checkpoint}: intermediate versions are missing (snapshot or \
                 incremental page deleted?)"
            ),
            StoreError::NotPinned(v) => write!(f, "version {v} is not pinned"),
            StoreError::CheckpointMismatch { requested, actual } => match actual {
                Some(actual) => write!(
                    f,
                    "incremental save requested against version {requested}, but the \
                     latest checkpoint is {actual}"
                ),
                None => write!(
                    f,
                    "incremental save requested against version {requested}, but the \
                     store has no checkpoint yet (save a full snapshot first)"
                ),
            },
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<BlockIoError> for StoreError {
    fn from(e: BlockIoError) -> Self {
        match e {
            BlockIoError::Truncated => StoreError::Truncated("block frame"),
            BlockIoError::Malformed(what) => StoreError::Corrupt(what.to_string()),
        }
    }
}
