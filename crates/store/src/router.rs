//! Key-range partitioning for the sharded store: which shard owns a
//! key, how a batch splits across shards, and how the partition map is
//! persisted.
//!
//! A [`Router`] is an ordered list of boundary keys `b_0 < b_1 < ... <
//! b_{n-2}` carving the keyspace into `n` contiguous ranges: shard `0`
//! owns `(-inf, b_0)`, shard `i` owns `[b_{i-1}, b_i)`, and the last
//! shard owns `[b_{n-2}, +inf)`. Contiguity is what makes a sharded
//! store still an *ordered* collection — concatenating per-shard
//! entries in shard order yields the globally sorted sequence, so range
//! queries and ordered scans compose from [`cpam::PacMap::range`]
//! pieces, the same composition PAM uses for augmented-map queries.
//!
//! The partition map is persisted (`partition.pac`) so reopening a
//! store directory recovers the exact same routing; a store whose
//! boundaries changed out from under its shard data would silently
//! misroute reads.
//!
//! On-disk layout (see DESIGN.md §6):
//!
//! ```text
//! magic    8 bytes   b"PACPART1"
//! schema   4 bytes   little-endian key-type fingerprint (schema_id)
//! count    varint    number of boundaries (shard count - 1)
//! keys     ...       ByteEncode'd boundary keys, ascending
//! crc32    4 bytes   little-endian, over everything above
//! ```

use std::path::Path;

use codecs::{bytecode, ByteEncode};
use cpam::ScalarKey;

use crate::checksum::{crc32, schema_id};
use crate::error::StoreError;
use crate::mvcc::Op;

/// Identifies a pacstore partition map, version 01.
pub const PARTITION_MAGIC: [u8; 8] = *b"PACPART1";

/// File name of the partition map inside a sharded store directory.
pub const PARTITION_FILE: &str = "partition.pac";

/// The key-range partition map of a [`crate::ShardedStore`]: routes
/// point operations to shards and splits batches by range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Router<K> {
    /// Strictly ascending boundary keys; `boundaries.len() + 1` shards.
    boundaries: Vec<K>,
}

impl<K: ScalarKey> Router<K> {
    /// A router over `boundaries.len() + 1` shards.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidBoundaries`] unless the boundaries are
    /// strictly ascending.
    pub fn new(boundaries: Vec<K>) -> Result<Self, StoreError> {
        if let Some(i) = (1..boundaries.len()).find(|&i| boundaries[i - 1] >= boundaries[i]) {
            return Err(StoreError::InvalidBoundaries(format!(
                "boundaries must be strictly ascending (violated at index {i})"
            )));
        }
        Ok(Router { boundaries })
    }

    /// The single-shard router (no boundaries): every key routes to
    /// shard 0. Useful as the degenerate point of a shard-count sweep.
    pub fn single() -> Self {
        Router { boundaries: Vec::new() }
    }

    /// Number of shards (`boundaries + 1`).
    pub fn shard_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The boundary keys, ascending.
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }

    /// The shard owning `k`: the number of boundaries `<= k`.
    pub fn shard_of(&self, k: &K) -> usize {
        self.boundaries.partition_point(|b| b <= k)
    }

    /// The inclusive range of shard *indices* whose key ranges overlap
    /// the query `[lo, hi]` — from `lo`'s owner through `hi`'s owner
    /// (ranges are contiguous, so every shard in between overlaps too).
    ///
    /// A reversed query (`lo > hi`) denotes the empty key range and
    /// yields an empty shard range. Callers pass client-supplied bounds
    /// straight in (the pacserve `range` handler does), and the naive
    /// `shard_of(lo)..=shard_of(hi)` is *non-empty* whenever both
    /// reversed bounds land in the same shard.
    pub fn shards_overlapping(&self, lo: &K, hi: &K) -> std::ops::RangeInclusive<usize> {
        if lo > hi {
            #[allow(clippy::reversed_empty_ranges)]
            return 1..=0;
        }
        self.shard_of(lo)..=self.shard_of(hi)
    }

    /// Splits a batch into one sub-batch per shard, preserving the
    /// submission order of ops *within* each shard (ops on different
    /// shards touch disjoint keys, so their relative order is
    /// immaterial). Routing is a binary search per op — no sort.
    pub fn split_ops<V>(&self, ops: Vec<Op<K, V>>) -> Vec<Vec<Op<K, V>>> {
        let mut buckets: Vec<Vec<Op<K, V>>> = (0..self.shard_count()).map(|_| Vec::new()).collect();
        for op in ops {
            let shard = match &op {
                Op::Put(k, _) => self.shard_of(k),
                Op::Delete(k) => self.shard_of(k),
            };
            buckets[shard].push(op);
        }
        buckets
    }
}

impl<K: ScalarKey + ByteEncode> Router<K> {
    /// Encodes the partition map (header + boundaries + CRC trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.boundaries.len() * 8 + 32);
        out.extend_from_slice(&PARTITION_MAGIC);
        out.extend_from_slice(&schema_id::<K>().to_le_bytes());
        bytecode::write_varint(self.boundaries.len() as u64, &mut out);
        for b in &self.boundaries {
            b.write(&mut out);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a partition map written by [`Router::encode`].
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s: [`StoreError::BadMagic`] for foreign
    /// files, [`StoreError::ChecksumMismatch`] for truncation or bit
    /// flips (verified before the payload is parsed),
    /// [`StoreError::SchemaMismatch`] when the key type differs, and
    /// [`StoreError::Corrupt`] / [`StoreError::InvalidBoundaries`] for
    /// framing or ordering violations.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < PARTITION_MAGIC.len() + 4 + 4 {
            return Err(StoreError::Truncated("partition map header"));
        }
        if bytes[..PARTITION_MAGIC.len()] != PARTITION_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        let computed = crc32(body);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        let mut pos = PARTITION_MAGIC.len();
        let found = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
        pos += 4;
        let expected = schema_id::<K>();
        if found != expected {
            return Err(StoreError::SchemaMismatch { found, expected });
        }
        let count = bytecode::try_read_varint(body, &mut pos)
            .ok_or(StoreError::Truncated("boundary count"))?;
        // Checked in the u64 domain (a boundary takes at least one
        // byte) so a hostile count cannot truncate on a 32-bit usize.
        if count > body.len() as u64 {
            return Err(StoreError::Corrupt("boundary count exceeds file size".into()));
        }
        let mut boundaries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            // Fallible read: a CRC-valid but mistyped or truncated
            // boundary is a typed error, not a panic — this file may
            // come from a foreign or hostile writer.
            boundaries.push(
                K::try_read(body, &mut pos).ok_or(StoreError::Truncated("boundary key"))?,
            );
        }
        if pos != body.len() {
            return Err(StoreError::Corrupt("trailing bytes after boundaries".into()));
        }
        Router::new(boundaries)
    }

    /// Writes the partition map to `path` atomically and durably.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        crate::pagefmt::write_file_atomic(path, &self.encode())
    }

    /// Reads a partition map from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors plus every [`Router::decode`] error.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        Self::decode(&std::fs::read(path)?)
    }
}

impl Router<u64> {
    /// `shards` ranges of equal width over the `u64` keyspace — the
    /// convenient default for hash-free integer keys.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn uniform_u64(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let width = u64::MAX / shards as u64;
        Router {
            boundaries: (1..shards as u64).map(|i| i * width).collect(),
        }
    }

    /// `shards` ranges of equal width over `[0, span)`; keys `>= span`
    /// all land in the last shard. Useful when keys are dense in a
    /// known domain.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `span < shards`.
    pub fn uniform_span(shards: usize, span: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(span >= shards as u64, "span must cover all shards");
        let width = span / shards as u64;
        Router {
            boundaries: (1..shards as u64).map(|i| i * width).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_respects_half_open_ranges() {
        let r = Router::new(vec![10u64, 20]).unwrap();
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.shard_of(&0), 0);
        assert_eq!(r.shard_of(&9), 0);
        assert_eq!(r.shard_of(&10), 1); // boundary belongs to the right
        assert_eq!(r.shard_of(&19), 1);
        assert_eq!(r.shard_of(&20), 2);
        assert_eq!(r.shard_of(&u64::MAX), 2);
    }

    #[test]
    fn single_and_uniform_routers() {
        let s = Router::<u64>::single();
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.shard_of(&u64::MAX), 0);

        let u = Router::uniform_u64(4);
        assert_eq!(u.shard_count(), 4);
        assert_eq!(u.shard_of(&0), 0);
        assert_eq!(u.shard_of(&u64::MAX), 3);

        let d = Router::uniform_span(4, 1000);
        assert_eq!(d.shard_of(&0), 0);
        assert_eq!(d.shard_of(&250), 1);
        assert_eq!(d.shard_of(&999), 3);
        assert_eq!(d.shard_of(&5000), 3);
    }

    #[test]
    fn unsorted_boundaries_rejected() {
        assert!(matches!(
            Router::new(vec![5u64, 5]),
            Err(StoreError::InvalidBoundaries(_))
        ));
        assert!(matches!(
            Router::new(vec![9u64, 3]),
            Err(StoreError::InvalidBoundaries(_))
        ));
    }

    #[test]
    fn split_ops_routes_and_preserves_order() {
        let r = Router::new(vec![10u64, 20]).unwrap();
        let buckets = r.split_ops(vec![
            Op::Put(5, 50u64),
            Op::Put(15, 150),
            Op::Delete(5),
            Op::Put(25, 250),
            Op::Put(5, 51),
        ]);
        assert_eq!(
            buckets[0],
            vec![Op::Put(5, 50), Op::Delete(5), Op::Put(5, 51)]
        );
        assert_eq!(buckets[1], vec![Op::Put(15, 150)]);
        assert_eq!(buckets[2], vec![Op::Put(25, 250)]);
    }

    #[test]
    fn shards_overlapping_forward_ranges() {
        let r = Router::new(vec![10u64, 20]).unwrap();
        assert_eq!(r.shards_overlapping(&0, &9), 0..=0);
        assert_eq!(r.shards_overlapping(&5, &15), 0..=1);
        assert_eq!(r.shards_overlapping(&0, &u64::MAX), 0..=2);
        assert_eq!(r.shards_overlapping(&12, &12), 1..=1);
    }

    #[test]
    fn shards_overlapping_reversed_bounds_is_empty() {
        let r = Router::new(vec![10u64]).unwrap();
        // Reversed bounds inside one shard: the naive owner-to-owner
        // range is 1..=1 — a non-empty answer to an empty query.
        assert_eq!(r.shards_overlapping(&15, &12).count(), 0);
        // Reversed across shards, and on a single-shard router.
        assert_eq!(r.shards_overlapping(&15, &5).count(), 0);
        assert_eq!(Router::<u64>::single().shards_overlapping(&9, &3).count(), 0);
        // Degenerate-but-forward single-point query stays non-empty.
        assert_eq!(r.shards_overlapping(&12, &12).count(), 1);
    }

    #[test]
    fn crc_valid_hostile_boundaries_are_typed_errors() {
        // Rebuild a partition file whose CRC is valid but whose body
        // lies: the claimed boundary is a truncated varint. Must be a
        // typed error, not a panic.
        let mut body = Vec::new();
        body.extend_from_slice(&PARTITION_MAGIC);
        body.extend_from_slice(&schema_id::<u64>().to_le_bytes());
        bytecode::write_varint(1, &mut body); // one boundary...
        body.push(0x80); // ...that never terminates
        let mut bytes = body.clone();
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        assert!(matches!(
            Router::<u64>::decode(&bytes).unwrap_err(),
            StoreError::Truncated(_) | StoreError::Corrupt(_)
        ));

        // A boundary count crafted to wrap a 32-bit usize.
        let mut body = Vec::new();
        body.extend_from_slice(&PARTITION_MAGIC);
        body.extend_from_slice(&schema_id::<u64>().to_le_bytes());
        bytecode::write_varint(1 << 33, &mut body);
        let mut bytes = body.clone();
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        assert!(matches!(
            Router::<u64>::decode(&bytes).unwrap_err(),
            StoreError::Corrupt(_)
        ));
    }

    #[test]
    fn partition_map_roundtrip_and_corruption() {
        let r = Router::new(vec![100u64, 2000, 30_000]).unwrap();
        let bytes = r.encode();
        assert_eq!(Router::<u64>::decode(&bytes).unwrap(), r);

        // Truncations and bit flips are typed errors.
        for cut in [0, 7, 8, 11, bytes.len() - 5, bytes.len() - 1] {
            assert!(
                matches!(
                    Router::<u64>::decode(&bytes[..cut]).unwrap_err(),
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::Truncated(_)
                        | StoreError::BadMagic
                ),
                "cut {cut}"
            );
        }
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x20;
        assert!(matches!(
            Router::<u64>::decode(&flipped).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));

        // Wrong key type is a schema error, not a misparse.
        assert!(matches!(
            Router::<u32>::decode(&bytes).unwrap_err(),
            StoreError::SchemaMismatch { .. }
        ));
    }
}
