//! The append-only batch log (write-ahead log).
//!
//! Every commit group appends one self-delimiting record; on open the
//! store replays all records newer than the last saved snapshot. Record
//! layout (see DESIGN.md §"pacstore on-disk formats"):
//!
//! ```text
//! length   varint    byte length of the payload that follows
//! payload  length    format byte (0xA2, this revision),
//!                    varint version, schema (4 bytes LE),
//!                    varint global commit id,
//!                    varint participant count + participant shard ids,
//!                    varint op count, then ops
//! crc32    4 bytes   little-endian, over the payload
//! ```
//!
//! The leading format byte pins the record layout: a checksum-valid
//! record with a different format byte is a typed error at open, not a
//! silently truncated "torn tail" — the hazard any future payload
//! change would otherwise reintroduce.
//!
//! An op is a tag byte (`0` put, `1` delete) followed by the
//! [`codecs::ByteEncode`]d key (and value, for puts). The schema field
//! is the entry-type fingerprint ([`crate::checksum::schema_id`]):
//! replaying a log with mismatched key/value types is a typed error,
//! not a misparse.
//!
//! The global commit id and participant list serve the sharded store's
//! two-phase commit ([`crate::ShardedStore`]): a shard's record is the
//! *prepare* half of a cross-shard commit, tagged with the global id it
//! belongs to and the full set of shards that must also hold a prepare
//! record for that id. A single-directory [`crate::PacStore`] writes
//! `global == version` with an empty participant list.
//!
//! Torn-write policy: replay stops at the first record whose framing or
//! checksum fails, or whose version is not strictly greater than its
//! predecessor's. If that happens anywhere before the end of the file
//! the log is *torn*; the store either truncates the bad tail (default,
//! the standard WAL recovery) or refuses to open (`strict_log`).

use std::fs::File;
use std::io::Write;

use codecs::{bytecode, ByteEncode};

use crate::checksum::crc32;
use crate::mvcc::Op;

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Format byte of every record payload this build writes and reads
/// (revision 2 of the WAL record layout: global id + participants).
pub const LOG_FORMAT: u8 = 0xA2;

/// One replayed log record: the version its commit group produced and
/// the ops it applied, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord<K, V> {
    /// Version the group commit produced (the *local* shard version in
    /// a sharded store).
    pub version: u64,
    /// Global commit id of the cross-shard commit this record prepares
    /// (equal to `version` for a single-directory store).
    pub global: u64,
    /// Shards participating in global commit `global` (empty for a
    /// single-directory store).
    pub participants: Vec<u32>,
    /// The group's operations, in submission order.
    pub ops: Vec<Op<K, V>>,
}

/// Encodes one record (framing + checksum included). `schema` is the
/// entry-type fingerprint the replayer will demand; `global` and
/// `participants` tag the record with the cross-shard commit it
/// prepares (pass `global == version` and no participants for a
/// single-directory store).
pub fn encode_record<K: ByteEncode, V: ByteEncode>(
    version: u64,
    global: u64,
    participants: &[u32],
    schema: u32,
    ops: &[Op<K, V>],
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ops.len() * 8 + 24);
    payload.push(LOG_FORMAT);
    bytecode::write_varint(version, &mut payload);
    payload.extend_from_slice(&schema.to_le_bytes());
    bytecode::write_varint(global, &mut payload);
    bytecode::write_varint(participants.len() as u64, &mut payload);
    for &p in participants {
        bytecode::write_varint(u64::from(p), &mut payload);
    }
    bytecode::write_varint(ops.len() as u64, &mut payload);
    for op in ops {
        match op {
            Op::Put(k, v) => {
                payload.push(OP_PUT);
                k.write(&mut payload);
                v.write(&mut payload);
            }
            Op::Delete(k) => {
                payload.push(OP_DELETE);
                k.write(&mut payload);
            }
        }
    }
    frame(&payload)
}

/// A failed [`append_bytes`]: the original I/O error plus whether the
/// partial record was successfully rolled back. When it was *not*, the
/// stranded bytes would make every later successful append unreachable
/// at replay (torn-tail truncation stops at the first bad frame) — the
/// caller must stop using the log until it is reset.
#[derive(Debug)]
pub struct AppendError {
    /// The I/O error that failed the append.
    pub error: std::io::Error,
    /// True if the file was truncated back to its pre-append length.
    pub rolled_back: bool,
}

/// Stage timings of a successful [`append_bytes`], in nanoseconds —
/// the write-vs-fsync split the observability layer records into
/// per-stage histograms (`pacstore_wal_append_ns` /
/// `pacstore_wal_fsync_ns`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendTimings {
    /// Time spent in `write_all` + `flush`.
    pub write_ns: u64,
    /// Time spent in `sync_data` (0 when `fsync` was not requested).
    pub sync_ns: u64,
}

/// Appends one already-encoded record, all-or-nothing: on a failed or
/// partial write — or a failed `fsync` when requested — the file is
/// truncated back to its previous length. Without the rollback, a
/// record from a *failed* (unacknowledged) group would linger in the
/// log, its version would be reused by the next successful group, and
/// replay would apply the failed group and skip the acknowledged one.
///
/// On success, returns the write/fsync stage timings.
///
/// # Errors
///
/// [`AppendError`]; check its `rolled_back` flag before reusing the log.
pub fn append_bytes(
    file: &mut File,
    record: &[u8],
    fsync: bool,
) -> Result<AppendTimings, AppendError> {
    let prev_len = match file.metadata() {
        Ok(m) => m.len(),
        // Nothing written yet: failing here leaves the log untouched.
        Err(error) => return Err(AppendError { error, rolled_back: true }),
    };
    let mut timings = AppendTimings::default();
    let write_start = std::time::Instant::now();
    let result = file
        .write_all(record)
        .and_then(|()| file.flush())
        .and_then(|()| {
            timings.write_ns = write_start.elapsed().as_nanos() as u64;
            if fsync {
                let sync_start = std::time::Instant::now();
                let r = file.sync_data();
                timings.sync_ns = sync_start.elapsed().as_nanos() as u64;
                r
            } else {
                Ok(())
            }
        });
    match result {
        Ok(()) => Ok(timings),
        Err(error) => Err(AppendError {
            error,
            // Under fsync, the rollback truncation must itself be
            // durable: a resurrected record from this *failed* append
            // would collide with (and at replay, displace) the next
            // acknowledged record that reuses its version.
            rolled_back: file.set_len(prev_len).is_ok()
                && (!fsync || file.sync_data().is_ok()),
        }),
    }
}

/// A reader over the length-prefixed, CRC-trailed frame stream shared
/// by WAL, manifest, and pacserve wire records:
/// `varint len ++ payload ++ crc32 (LE)`.
/// `pos` always sits on a frame boundary, so when [`Frames::next`]
/// returns `None` it is the byte length of the valid prefix.
pub struct Frames<'a> {
    bytes: &'a [u8],
    /// Current frame-boundary offset; writable so a replayer can roll
    /// back to the start of a rejected frame.
    pub pos: usize,
}

impl<'a> Frames<'a> {
    /// A reader positioned at the first frame of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Frames { bytes, pos: 0 }
    }

    /// The next checksum-valid payload, or `None` at end-of-input *or*
    /// at the first bad frame (`pos < bytes.len()` distinguishes the
    /// torn case, and is then the truncation point).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let mut at = self.pos;
        // The length is validated in the u64 domain before narrowing to
        // usize: a hostile 2^33 length must fail here, not truncate to
        // something small on a 32-bit target and slice the wrong bytes.
        let len = usize::try_from(bytecode::try_read_varint(self.bytes, &mut at)?).ok()?;
        let end = at.checked_add(len)?;
        if end.checked_add(4)? > self.bytes.len() {
            return None;
        }
        let payload = &self.bytes[at..end];
        let stored = u32::from_le_bytes(self.bytes[end..end + 4].try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return None;
        }
        self.pos = end + 4;
        Some(payload)
    }
}

/// Frames `payload` for appending: `varint len ++ payload ++ crc32`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    bytecode::write_varint(payload.len() as u64, &mut out);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Result of replaying a log image.
#[derive(Debug)]
pub struct Replay<K, V> {
    /// All records of the longest valid prefix, in order.
    pub records: Vec<LogRecord<K, V>>,
    /// Starting byte offset of each record in `records` — so a caller
    /// rolling back a record (the sharded store dropping a partially
    /// prepared global commit) knows where to truncate.
    pub offsets: Vec<usize>,
    /// Byte length of that valid prefix.
    pub valid_len: usize,
    /// True if bytes remained after the valid prefix (torn or corrupt
    /// tail).
    pub torn: bool,
    /// Set when a checksum-valid record carried a different entry-type
    /// fingerprint than `expected_schema` — the log belongs to a store
    /// with different key/value types. Replay stops there.
    pub schema_mismatch: Option<u32>,
    /// Set when a checksum-valid record carried a different format byte
    /// than [`LOG_FORMAT`] — the log was written by a build with a
    /// different record layout. Replay stops there.
    pub format_mismatch: Option<u8>,
}

/// Replays a log image, stopping at the first invalid record (bad
/// framing or checksum, non-increasing version or global id, or —
/// reported separately — a mismatched format byte or entry-type
/// fingerprint).
pub fn replay<K: ByteEncode, V: ByteEncode>(bytes: &[u8], expected_schema: u32) -> Replay<K, V> {
    let mut records: Vec<LogRecord<K, V>> = Vec::new();
    let mut offsets: Vec<usize> = Vec::new();
    let mut frames = Frames::new(bytes);
    let (mut schema_mismatch, mut format_mismatch) = (None, None);
    loop {
        let start = frames.pos;
        let Some(payload) = frames.next() else { break };
        match parse_payload::<K, V>(payload, expected_schema) {
            Parse::Ok(rec) => {
                if records
                    .last()
                    .is_some_and(|prev| prev.version >= rec.version || prev.global >= rec.global)
                {
                    // Version reuse: a leftover from a failed group.
                    frames.pos = start;
                    break;
                }
                records.push(rec);
                offsets.push(start);
            }
            Parse::SchemaMismatch { found } => {
                schema_mismatch = Some(found);
                frames.pos = start;
                break;
            }
            Parse::FormatMismatch { found } => {
                format_mismatch = Some(found);
                frames.pos = start;
                break;
            }
            Parse::Bad => {
                frames.pos = start;
                break;
            }
        }
    }
    Replay {
        records,
        offsets,
        valid_len: frames.pos,
        torn: schema_mismatch.is_none() && format_mismatch.is_none() && frames.pos < bytes.len(),
        schema_mismatch,
        format_mismatch,
    }
}

enum Parse<K, V> {
    Ok(LogRecord<K, V>),
    SchemaMismatch { found: u32 },
    FormatMismatch { found: u8 },
    Bad,
}

/// Parses one checksum-verified record payload; [`Parse::Bad`] when it
/// is malformed.
///
/// Every field read is fallible ([`bytecode::try_read_varint`] /
/// [`ByteEncode::try_read`]): a CRC-valid frame only proves the payload
/// is what its writer framed, not that the writer was honest, so a
/// crafted record whose op bytes are truncated or mistyped must land in
/// [`Parse::Bad`] — never a panic.
fn parse_payload<K: ByteEncode, V: ByteEncode>(payload: &[u8], expected_schema: u32) -> Parse<K, V> {
    let parse = || -> Option<Parse<K, V>> {
        let mut at = 0;
        let format = *payload.get(at)?;
        at += 1;
        if format != LOG_FORMAT {
            return Some(Parse::FormatMismatch { found: format });
        }
        let version = bytecode::try_read_varint(payload, &mut at)?;
        let schema_end = at.checked_add(4)?;
        if schema_end > payload.len() {
            return None;
        }
        let found = u32::from_le_bytes(payload[at..schema_end].try_into().expect("4 bytes"));
        at = schema_end;
        if found != expected_schema {
            return Some(Parse::SchemaMismatch { found });
        }
        let global = bytecode::try_read_varint(payload, &mut at)?;
        // Counts are checked in the u64 domain (each item takes at
        // least one byte) so a hostile count can neither truncate on
        // narrowing nor pre-allocate an absurd Vec.
        let pcount = bytecode::try_read_varint(payload, &mut at)?;
        if pcount > payload.len() as u64 {
            return None;
        }
        let mut participants = Vec::with_capacity(pcount as usize);
        for _ in 0..pcount {
            participants.push(u32::try_from(bytecode::try_read_varint(payload, &mut at)?).ok()?);
        }
        let count = bytecode::try_read_varint(payload, &mut at)?;
        if count > payload.len() as u64 {
            return None;
        }
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tag = *payload.get(at)?;
            at += 1;
            match tag {
                OP_PUT => {
                    let k = K::try_read(payload, &mut at)?;
                    let v = V::try_read(payload, &mut at)?;
                    ops.push(Op::Put(k, v));
                }
                OP_DELETE => ops.push(Op::Delete(K::try_read(payload, &mut at)?)),
                _ => return None,
            }
        }
        if at != payload.len() {
            return None;
        }
        Some(Parse::Ok(LogRecord {
            version,
            global,
            participants,
            ops,
        }))
    };
    parse().unwrap_or(Parse::Bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::schema_id;

    const SCHEMA: u32 = 0xD00D_F00D;

    fn sample() -> Vec<u8> {
        let mut log = Vec::new();
        log.extend(encode_record::<u64, u64>(1, 1, &[], SCHEMA, &[Op::Put(1, 10), Op::Put(2, 20)]));
        log.extend(encode_record::<u64, u64>(2, 2, &[], SCHEMA, &[Op::Delete(1)]));
        log.extend(encode_record::<u64, u64>(3, 3, &[], SCHEMA, &[Op::Put(3, 30)]));
        log
    }

    #[test]
    fn replay_roundtrips_records() {
        let log = sample();
        let replay = replay::<u64, u64>(&log, SCHEMA);
        assert!(!replay.torn);
        assert_eq!(replay.valid_len, log.len());
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0].version, 1);
        assert_eq!(replay.records[1].ops, vec![Op::Delete(1)]);
        assert_eq!(replay.records[2].ops, vec![Op::Put(3, 30)]);
        // Offsets point at each record's framing byte.
        assert_eq!(replay.offsets.len(), 3);
        assert_eq!(replay.offsets[0], 0);
        for (i, &off) in replay.offsets.iter().enumerate().skip(1) {
            let r = super::replay::<u64, u64>(&log[off..], SCHEMA);
            assert_eq!(r.records.len(), 3 - i, "offset {off} of record {i}");
        }
    }

    #[test]
    fn global_and_participants_roundtrip() {
        // A sharded-store prepare record: local version 5, global commit
        // 9, prepared across shards {0, 2, 3}.
        let rec = encode_record::<u64, u64>(5, 9, &[0, 2, 3], SCHEMA, &[Op::Put(1, 1)]);
        let r = replay::<u64, u64>(&rec, SCHEMA);
        assert!(!r.torn);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].version, 5);
        assert_eq!(r.records[0].global, 9);
        assert_eq!(r.records[0].participants, vec![0, 2, 3]);
    }

    #[test]
    fn non_increasing_global_stops_replay() {
        // Two records with increasing local versions but a reused global
        // commit id: the second is a leftover and must not replay.
        let mut log = Vec::new();
        log.extend(encode_record::<u64, u64>(1, 7, &[0, 1], SCHEMA, &[Op::Put(1, 1)]));
        let clean = log.len();
        log.extend(encode_record::<u64, u64>(2, 7, &[0, 1], SCHEMA, &[Op::Put(2, 2)]));
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.valid_len, clean);
        assert_eq!(r.records.len(), 1);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let log = sample();
        let first_two = replay::<u64, u64>(&log, SCHEMA).records[..2].to_vec();
        // Cut anywhere inside the third record: first two survive.
        let second_end =
            log.len() - encode_record::<u64, u64>(3, 3, &[], SCHEMA, &[Op::Put(3, 30)]).len();
        for cut in second_end + 1..log.len() {
            let r = replay::<u64, u64>(&log[..cut], SCHEMA);
            assert!(r.torn, "cut {cut}");
            assert_eq!(r.valid_len, second_end);
            assert_eq!(r.records, first_two);
        }
    }

    #[test]
    fn bit_flip_invalidates_record() {
        let mut log = sample();
        let n = log.len();
        log[n - 10] ^= 0x40; // somewhere in the last record
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.records.len(), 2);
    }

    #[test]
    fn schema_mismatch_is_reported_not_misparsed() {
        // A log written with (u64, u64) entries replayed expecting a
        // different fingerprint: typed signal, no misparse, no panic.
        let log = sample();
        let r = replay::<u64, u64>(&log, schema_id::<(u64, String)>());
        assert!(!r.torn);
        assert_eq!(r.records.len(), 0);
        assert_eq!(r.schema_mismatch, Some(SCHEMA));
    }

    #[test]
    fn foreign_format_byte_is_reported_not_truncated() {
        // A checksum-valid record whose payload leads with a different
        // format byte: typed signal, not a silent torn-tail truncation.
        let mut rec = encode_record::<u64, u64>(1, 1, &[], SCHEMA, &[Op::Put(1, 1)]);
        // Rewrite the format byte (first payload byte, after the
        // 1-byte length varint) and refresh the trailer CRC.
        rec[1] = 0x01;
        let payload_len = rec.len() - 4;
        let crc = crate::checksum::crc32(&rec[1..payload_len]).to_le_bytes();
        rec.truncate(payload_len);
        rec.extend_from_slice(&crc);
        let r = replay::<u64, u64>(&rec, SCHEMA);
        assert_eq!(r.format_mismatch, Some(0x01));
        assert!(!r.torn);
        assert_eq!(r.records.len(), 0);
        assert_eq!(r.valid_len, 0);
    }

    /// Reframe `payload` with a fresh (valid) CRC trailer — the shape
    /// of a record from a hostile writer: framing intact, content lies.
    fn hostile_frame(payload: &[u8]) -> Vec<u8> {
        frame(payload)
    }

    #[test]
    fn crc_valid_truncated_ops_are_bad_not_panic() {
        // A CRC-valid record that *claims* one put but ends mid-key:
        // the checksum vouches for the writer's bytes, not the writer.
        // Pre-hardening this panicked inside the infallible
        // `ByteEncode::read`; it must be a typed torn stop.
        let mut payload = vec![LOG_FORMAT];
        bytecode::write_varint(1, &mut payload); // version
        payload.extend_from_slice(&SCHEMA.to_le_bytes());
        bytecode::write_varint(1, &mut payload); // global
        bytecode::write_varint(0, &mut payload); // participants
        bytecode::write_varint(1, &mut payload); // one op...
        payload.push(super::OP_PUT);
        payload.push(0x80); // ...whose key varint never terminates
        let log = hostile_frame(&payload);
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.records.len(), 0);
        assert_eq!(r.valid_len, 0);
    }

    #[test]
    fn crc_valid_hostile_counts_are_bad_not_panic() {
        // Op/participant counts far beyond the payload (including ones
        // that would truncate on a 32-bit usize) must be rejected in
        // the u64 domain, without pre-allocating.
        for count in [1u64 << 20, 1 << 33, u64::MAX] {
            let mut payload = vec![LOG_FORMAT];
            bytecode::write_varint(1, &mut payload);
            payload.extend_from_slice(&SCHEMA.to_le_bytes());
            bytecode::write_varint(1, &mut payload);
            bytecode::write_varint(0, &mut payload);
            bytecode::write_varint(count, &mut payload);
            let r = replay::<u64, u64>(&hostile_frame(&payload), SCHEMA);
            assert!(r.torn, "count {count}");
            assert_eq!(r.records.len(), 0, "count {count}");
        }
    }

    #[test]
    fn hostile_frame_length_is_torn_not_panic() {
        // A frame whose length varint claims 2^33 bytes: rejected by
        // the u64-domain bounds check (on any pointer width), leaving
        // the valid prefix intact.
        let mut log = sample();
        let clean = log.len();
        bytecode::write_varint(1 << 33, &mut log);
        log.extend_from_slice(&[0xAB; 64]);
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.valid_len, clean);
        assert_eq!(r.records.len(), 3);
    }

    #[test]
    fn fuzz_mutated_frames_never_panic() {
        // Random single- and multi-byte mutations over a valid log:
        // every outcome must be a normal `Replay` (possibly torn, or a
        // typed schema/format signal) — never a panic. CRC catches most
        // mutations; the interesting survivors are mutations that CRC
        // can't see (length byte rewrites) and re-CRC'd payload edits.
        let log = sample();
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..2000 {
            let mut m = log.clone();
            for _ in 0..=(next() % 3) {
                let i = (next() % m.len() as u64) as usize;
                m[i] ^= (next() % 255 + 1) as u8;
            }
            let r = replay::<u64, u64>(&m, SCHEMA);
            assert!(r.valid_len <= m.len());
        }
        // Same, but with the trailer CRC refreshed so the mutated
        // payload *passes* the checksum and reaches the parser.
        for _ in 0..2000 {
            let mut payload = Vec::new();
            let mut frames = Frames::new(&log);
            payload.extend_from_slice(frames.next().expect("first record"));
            let i = (next() % payload.len() as u64) as usize;
            payload[i] ^= (next() % 255 + 1) as u8;
            if next() % 2 == 0 {
                payload.truncate(1 + (next() % payload.len() as u64) as usize);
            }
            let r = replay::<u64, u64>(&hostile_frame(&payload), SCHEMA);
            assert!(r.records.len() <= 1);
        }
    }

    #[test]
    fn version_reuse_stops_replay() {
        // A leftover record from a failed group followed by a
        // successful group reusing the version: replay must not apply
        // both.
        let mut log = Vec::new();
        log.extend(encode_record::<u64, u64>(1, 1, &[], SCHEMA, &[Op::Put(1, 1)]));
        log.extend(encode_record::<u64, u64>(2, 2, &[], SCHEMA, &[Op::Put(2, 2)]));
        let clean = log.len();
        log.extend(encode_record::<u64, u64>(2, 2, &[], SCHEMA, &[Op::Put(9, 9)]));
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.valid_len, clean);
        assert_eq!(r.records.len(), 2);
    }
}
