//! The append-only batch log (write-ahead log).
//!
//! Every commit group appends one self-delimiting record; on open the
//! store replays all records newer than the last saved snapshot. Record
//! layout (see DESIGN.md §"pacstore on-disk formats"):
//!
//! ```text
//! length   varint    byte length of the payload that follows
//! payload  length    varint version, schema (4 bytes LE),
//!                    varint op count, then ops
//! crc32    4 bytes   little-endian, over the payload
//! ```
//!
//! An op is a tag byte (`0` put, `1` delete) followed by the
//! [`codecs::ByteEncode`]d key (and value, for puts). The schema field
//! is the entry-type fingerprint ([`crate::checksum::schema_id`]):
//! replaying a log with mismatched key/value types is a typed error,
//! not a misparse.
//!
//! Torn-write policy: replay stops at the first record whose framing or
//! checksum fails, or whose version is not strictly greater than its
//! predecessor's. If that happens anywhere before the end of the file
//! the log is *torn*; the store either truncates the bad tail (default,
//! the standard WAL recovery) or refuses to open (`strict_log`).

use std::fs::File;
use std::io::Write;

use codecs::{bytecode, ByteEncode};

use crate::checksum::crc32;
use crate::mvcc::Op;

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// One replayed log record: the version its commit group produced and
/// the ops it applied, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord<K, V> {
    /// Version the group commit produced.
    pub version: u64,
    /// The group's operations, in submission order.
    pub ops: Vec<Op<K, V>>,
}

/// Encodes one record (framing + checksum included). `schema` is the
/// entry-type fingerprint the replayer will demand.
pub fn encode_record<K: ByteEncode, V: ByteEncode>(
    version: u64,
    schema: u32,
    ops: &[Op<K, V>],
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ops.len() * 8 + 16);
    bytecode::write_varint(version, &mut payload);
    payload.extend_from_slice(&schema.to_le_bytes());
    bytecode::write_varint(ops.len() as u64, &mut payload);
    for op in ops {
        match op {
            Op::Put(k, v) => {
                payload.push(OP_PUT);
                k.write(&mut payload);
                v.write(&mut payload);
            }
            Op::Delete(k) => {
                payload.push(OP_DELETE);
                k.write(&mut payload);
            }
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    bytecode::write_varint(payload.len() as u64, &mut out);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// A failed [`append_bytes`]: the original I/O error plus whether the
/// partial record was successfully rolled back. When it was *not*, the
/// stranded bytes would make every later successful append unreachable
/// at replay (torn-tail truncation stops at the first bad frame) — the
/// caller must stop using the log until it is reset.
#[derive(Debug)]
pub struct AppendError {
    /// The I/O error that failed the append.
    pub error: std::io::Error,
    /// True if the file was truncated back to its pre-append length.
    pub rolled_back: bool,
}

/// Appends one already-encoded record, all-or-nothing: on a failed or
/// partial write — or a failed `fsync` when requested — the file is
/// truncated back to its previous length. Without the rollback, a
/// record from a *failed* (unacknowledged) group would linger in the
/// log, its version would be reused by the next successful group, and
/// replay would apply the failed group and skip the acknowledged one.
///
/// # Errors
///
/// [`AppendError`]; check its `rolled_back` flag before reusing the log.
pub fn append_bytes(file: &mut File, record: &[u8], fsync: bool) -> Result<(), AppendError> {
    let prev_len = match file.metadata() {
        Ok(m) => m.len(),
        // Nothing written yet: failing here leaves the log untouched.
        Err(error) => return Err(AppendError { error, rolled_back: true }),
    };
    let result = file
        .write_all(record)
        .and_then(|()| file.flush())
        .and_then(|()| if fsync { file.sync_data() } else { Ok(()) });
    match result {
        Ok(()) => Ok(()),
        Err(error) => Err(AppendError {
            error,
            rolled_back: file.set_len(prev_len).is_ok(),
        }),
    }
}

/// Result of replaying a log image.
#[derive(Debug)]
pub struct Replay<K, V> {
    /// All records of the longest valid prefix, in order.
    pub records: Vec<LogRecord<K, V>>,
    /// Byte length of that valid prefix.
    pub valid_len: usize,
    /// True if bytes remained after the valid prefix (torn or corrupt
    /// tail).
    pub torn: bool,
    /// Set when a checksum-valid record carried a different entry-type
    /// fingerprint than `expected_schema` — the log belongs to a store
    /// with different key/value types. Replay stops there.
    pub schema_mismatch: Option<u32>,
}

/// Replays a log image, stopping at the first invalid record (bad
/// framing or checksum, non-increasing version, or — reported
/// separately — a mismatched entry-type fingerprint).
pub fn replay<K: ByteEncode, V: ByteEncode>(bytes: &[u8], expected_schema: u32) -> Replay<K, V> {
    let mut records: Vec<LogRecord<K, V>> = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let start = pos;
        match read_record::<K, V>(bytes, &mut pos, expected_schema) {
            Parse::Ok(rec) => {
                if records.last().is_some_and(|prev| prev.version >= rec.version) {
                    // Version reuse: a leftover from a failed group.
                    return Replay {
                        records,
                        valid_len: start,
                        torn: true,
                        schema_mismatch: None,
                    };
                }
                records.push(rec);
            }
            Parse::SchemaMismatch { found } => {
                return Replay {
                    records,
                    valid_len: start,
                    torn: false,
                    schema_mismatch: Some(found),
                }
            }
            Parse::Bad => {
                return Replay {
                    records,
                    valid_len: start,
                    torn: true,
                    schema_mismatch: None,
                }
            }
        }
    }
    Replay {
        records,
        valid_len: pos,
        torn: false,
        schema_mismatch: None,
    }
}

enum Parse<K, V> {
    Ok(LogRecord<K, V>),
    SchemaMismatch { found: u32 },
    Bad,
}

/// Parses one record; [`Parse::Bad`] (with `*pos` unspecified) when the
/// frame is truncated, its checksum fails, or its payload is malformed.
fn read_record<K: ByteEncode, V: ByteEncode>(
    bytes: &[u8],
    pos: &mut usize,
    expected_schema: u32,
) -> Parse<K, V> {
    let mut parse = || -> Option<Parse<K, V>> {
        let len = bytecode::try_read_varint(bytes, pos)? as usize;
        let end = pos.checked_add(len)?;
        if end.checked_add(4)? > bytes.len() {
            return None;
        }
        let payload = &bytes[*pos..end];
        let stored = u32::from_le_bytes(bytes[end..end + 4].try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return None;
        }
        *pos = end + 4;

        // Payload is checksum-verified from here on; parse it.
        let mut at = 0;
        let version = bytecode::try_read_varint(payload, &mut at)?;
        let schema_end = at.checked_add(4)?;
        if schema_end > payload.len() {
            return None;
        }
        let found = u32::from_le_bytes(payload[at..schema_end].try_into().expect("4 bytes"));
        at = schema_end;
        if found != expected_schema {
            return Some(Parse::SchemaMismatch { found });
        }
        let count = bytecode::try_read_varint(payload, &mut at)? as usize;
        if count > len {
            return None; // each op takes at least one byte
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = *payload.get(at)?;
            at += 1;
            match tag {
                OP_PUT => {
                    let k = K::read(payload, &mut at);
                    let v = V::read(payload, &mut at);
                    ops.push(Op::Put(k, v));
                }
                OP_DELETE => ops.push(Op::Delete(K::read(payload, &mut at))),
                _ => return None,
            }
        }
        if at != payload.len() {
            return None;
        }
        Some(Parse::Ok(LogRecord { version, ops }))
    };
    parse().unwrap_or(Parse::Bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::schema_id;

    const SCHEMA: u32 = 0xD00D_F00D;

    fn sample() -> Vec<u8> {
        let mut log = Vec::new();
        log.extend(encode_record::<u64, u64>(1, SCHEMA, &[Op::Put(1, 10), Op::Put(2, 20)]));
        log.extend(encode_record::<u64, u64>(2, SCHEMA, &[Op::Delete(1)]));
        log.extend(encode_record::<u64, u64>(3, SCHEMA, &[Op::Put(3, 30)]));
        log
    }

    #[test]
    fn replay_roundtrips_records() {
        let log = sample();
        let replay = replay::<u64, u64>(&log, SCHEMA);
        assert!(!replay.torn);
        assert_eq!(replay.valid_len, log.len());
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0].version, 1);
        assert_eq!(replay.records[1].ops, vec![Op::Delete(1)]);
        assert_eq!(replay.records[2].ops, vec![Op::Put(3, 30)]);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let log = sample();
        let first_two = replay::<u64, u64>(&log, SCHEMA).records[..2].to_vec();
        // Cut anywhere inside the third record: first two survive.
        let second_end =
            log.len() - encode_record::<u64, u64>(3, SCHEMA, &[Op::Put(3, 30)]).len();
        for cut in second_end + 1..log.len() {
            let r = replay::<u64, u64>(&log[..cut], SCHEMA);
            assert!(r.torn, "cut {cut}");
            assert_eq!(r.valid_len, second_end);
            assert_eq!(r.records, first_two);
        }
    }

    #[test]
    fn bit_flip_invalidates_record() {
        let mut log = sample();
        let n = log.len();
        log[n - 10] ^= 0x40; // somewhere in the last record
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.records.len(), 2);
    }

    #[test]
    fn schema_mismatch_is_reported_not_misparsed() {
        // A log written with (u64, u64) entries replayed expecting a
        // different fingerprint: typed signal, no misparse, no panic.
        let log = sample();
        let r = replay::<u64, u64>(&log, schema_id::<(u64, String)>());
        assert!(!r.torn);
        assert_eq!(r.records.len(), 0);
        assert_eq!(r.schema_mismatch, Some(SCHEMA));
    }

    #[test]
    fn version_reuse_stops_replay() {
        // A leftover record from a failed group followed by a
        // successful group reusing the version: replay must not apply
        // both.
        let mut log = Vec::new();
        log.extend(encode_record::<u64, u64>(1, SCHEMA, &[Op::Put(1, 1)]));
        log.extend(encode_record::<u64, u64>(2, SCHEMA, &[Op::Put(2, 2)]));
        let clean = log.len();
        log.extend(encode_record::<u64, u64>(2, SCHEMA, &[Op::Put(9, 9)]));
        let r = replay::<u64, u64>(&log, SCHEMA);
        assert!(r.torn);
        assert_eq!(r.valid_len, clean);
        assert_eq!(r.records.len(), 2);
    }
}
