//! Write-path instrumentation: pre-resolved handles into the
//! process-wide [`obs::global`] registry.
//!
//! Every store handle owns a `StoreMetrics`: the `Arc`'d counters and
//! histograms are resolved **once at construction**, so hot paths pay
//! only an `Instant::now()` pair and a relaxed `fetch_add` — the
//! registry lock is never touched after setup (the zero-overhead policy
//! of DESIGN.md §10, gated by the `obs_overhead` row in
//! `BENCH_cpam.json`).
//!
//! # Metric naming
//!
//! All store series are prefixed `pacstore_`; latency histograms end in
//! `_ns` (nanoseconds), monotone counters in `_total`. Per-shard series
//! bake the shard index into the name as a label —
//! `pacstore_wal_append_ns{shard="003"}` — which
//! [`obs::Registry::render_text`] merges with quantile labels and
//! [`obs::Registry::histogram_snapshot_prefixed`] can aggregate.
//! A single-directory [`crate::PacStore`] is shard `"000"` of a
//! one-shard layout, so dashboards see one schema for both store kinds.
//!
//! Both store kinds share the global registry: two stores in one
//! process record into the same series. That is deliberate (the
//! process, not the handle, is the unit a scrape observes); tests that
//! need isolation take before/after [`obs::HistogramSnapshot::delta`]s.

use std::sync::{Arc, Once, OnceLock};

use obs::{Counter, Gauge, Histogram};
use parking_lot::Mutex;

use crate::pool::PoolStats;

/// Install the `cpam::stats` → registry bridge exactly once per
/// process. Pull-based: the cpam counters keep their single relaxed
/// `fetch_add` and are only read when something scrapes the registry.
pub fn install_cpam_bridge() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| cpam::stats::register_with(obs::global()));
}

/// Process-global page-codec counters (pages and bytes through
/// [`crate::pagefmt`] encode/decode). Global rather than per-store:
/// the codec layer has no store handle in scope.
pub(crate) struct PageCounters {
    pub pages_written: Arc<Counter>,
    pub page_bytes_written: Arc<Counter>,
    pub pages_read: Arc<Counter>,
    pub page_bytes_read: Arc<Counter>,
}

pub(crate) fn page_counters() -> &'static PageCounters {
    static COUNTERS: OnceLock<PageCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = obs::global();
        PageCounters {
            pages_written: r.counter("pacstore_pages_written_total"),
            page_bytes_written: r.counter("pacstore_page_bytes_written_total"),
            pages_read: r.counter("pacstore_pages_read_total"),
            page_bytes_read: r.counter("pacstore_page_bytes_read_total"),
        }
    })
}

/// Pre-resolved handles for every stage of the store write path.
/// Created per store handle; all handles for a name share one atomic
/// (the registry deduplicates by name).
pub(crate) struct StoreMetrics {
    /// End-to-end `commit()` latency: enqueue to acknowledged version.
    pub commit: Arc<Histogram>,
    /// Time a committer spends parked on the group-commit condvar
    /// (followers waiting for their ticket; leaders-to-be waiting for
    /// the previous leader). Recorded once per commit, 0 for an
    /// uncontended leader.
    pub ticket_wait: Arc<Histogram>,
    /// Leader batch apply: the `apply_ops` tree update (parallel
    /// fan-out included, for the sharded store).
    pub apply: Arc<Histogram>,
    /// WAL record write (`write_all` + `flush`), all shards merged.
    pub wal_append: Arc<Histogram>,
    /// WAL/manifest `sync_data`, recorded only when fsync ran.
    pub wal_fsync: Arc<Histogram>,
    /// Manifest commit-record write (sharded store only).
    pub manifest_append: Arc<Histogram>,
    /// `get()` point reads on the current version.
    pub point_read: Arc<Histogram>,
    /// Materializing range reads (`range_entries`).
    pub range_read: Arc<Histogram>,
    /// Full or incremental checkpoint page writes (`save*`).
    pub save: Arc<Histogram>,
    /// Whole `gc()` passes, including the off-lock history drop.
    pub gc_pause: Arc<Histogram>,
    /// Whole `compact()` cycles.
    pub compact_pause: Arc<Histogram>,
    /// Compaction phase 1: checkpoint pages written (off the commit
    /// lock in the sharded store).
    pub compact_pages: Arc<Histogram>,
    /// Compaction phase 2: WAL/manifest truncation under the log lock —
    /// the part concurrent commits actually wait behind.
    pub compact_truncate: Arc<Histogram>,
    /// Snapshots pinned (`snapshot` / `snapshot_at`).
    pub snapshots: Arc<Counter>,
    /// Explicit version pins / unpins.
    pub pins: Arc<Counter>,
    pub unpins: Arc<Counter>,
    /// Cumulative GC outcomes.
    pub gc_versions_dropped: Arc<Counter>,
    pub gc_nodes_reclaimed: Arc<Counter>,
    /// Per-shard WAL record write, `pacstore_wal_append_ns{shard=...}`.
    pub shard_wal_append: Vec<Arc<Histogram>>,
    /// Per-shard incremental-chain depth (links past the full page),
    /// `pacstore_incr_chain_depth{shard=...}`.
    pub incr_chain_depth: Vec<Arc<Gauge>>,
    /// Buffer-pool residency publisher; see [`PoolMetrics`].
    pub pool: PoolMetrics,
}

/// Publishes buffer-pool stats snapshots into the registry. The
/// instantaneous fields land as gauges in one [`obs::Registry::gauge_set`]
/// batch (a scrape never sees resident pages from one snapshot next to
/// resident bytes from another); the monotone fields land as counter
/// *deltas* against the previously published snapshot, so
/// `pacstore_pool_{hits,misses,evictions}_total` keep counter semantics
/// across repeated publishes.
///
/// Publishing happens on the stats read path
/// ([`crate::PacStore::pool_stats`] and the sharded equivalents) — pool
/// operations themselves touch only the pool's own relaxed atomics,
/// preserving the zero-overhead policy of DESIGN.md §10.
pub(crate) struct PoolMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    /// Monotone fields of the last published snapshot:
    /// `(hits, misses, evictions)`.
    last: Mutex<(u64, u64, u64)>,
}

impl PoolMetrics {
    fn new() -> PoolMetrics {
        let r = obs::global();
        PoolMetrics {
            hits: r.counter("pacstore_pool_hits_total"),
            misses: r.counter("pacstore_pool_misses_total"),
            evictions: r.counter("pacstore_pool_evictions_total"),
            last: Mutex::new((0, 0, 0)),
        }
    }

    /// Publish one aggregated pool snapshot.
    pub fn publish(&self, s: &PoolStats) {
        obs::global().gauge_set(&[
            ("pacstore_pool_capacity_pages", s.capacity_pages as i64),
            ("pacstore_pool_resident_pages", s.resident_pages as i64),
            ("pacstore_pool_resident_bytes", s.resident_bytes as i64),
            ("pacstore_pool_pinned_pages", s.pinned_pages as i64),
        ]);
        let mut last = self.last.lock();
        self.hits.add(s.hits.saturating_sub(last.0));
        self.misses.add(s.misses.saturating_sub(last.1));
        self.evictions.add(s.evictions.saturating_sub(last.2));
        *last = (s.hits, s.misses, s.evictions);
    }
}

impl StoreMetrics {
    /// Resolve all handles against [`obs::global`] for a store with
    /// `shards` shards (1 for [`crate::PacStore`]) and install the cpam
    /// bridge.
    pub fn new(shards: usize) -> Arc<StoreMetrics> {
        install_cpam_bridge();
        let r = obs::global();
        let shard_wal_append = (0..shards)
            .map(|i| {
                let label = format!("{i:03}");
                r.histogram(&obs::labeled("pacstore_wal_append_ns", &[("shard", &label)]))
            })
            .collect();
        let incr_chain_depth = (0..shards)
            .map(|i| {
                let label = format!("{i:03}");
                r.gauge(&obs::labeled("pacstore_incr_chain_depth", &[("shard", &label)]))
            })
            .collect();
        Arc::new(StoreMetrics {
            commit: r.histogram("pacstore_commit_ns"),
            ticket_wait: r.histogram("pacstore_commit_ticket_wait_ns"),
            apply: r.histogram("pacstore_commit_apply_ns"),
            wal_append: r.histogram("pacstore_wal_append_ns"),
            wal_fsync: r.histogram("pacstore_wal_fsync_ns"),
            manifest_append: r.histogram("pacstore_manifest_append_ns"),
            point_read: r.histogram("pacstore_point_read_ns"),
            range_read: r.histogram("pacstore_range_read_ns"),
            save: r.histogram("pacstore_save_ns"),
            gc_pause: r.histogram("pacstore_gc_ns"),
            compact_pause: r.histogram("pacstore_compact_ns"),
            compact_pages: r.histogram("pacstore_compact_pages_ns"),
            compact_truncate: r.histogram("pacstore_compact_truncate_ns"),
            snapshots: r.counter("pacstore_snapshots_total"),
            pins: r.counter("pacstore_version_pins_total"),
            unpins: r.counter("pacstore_version_unpins_total"),
            gc_versions_dropped: r.counter("pacstore_gc_versions_dropped_total"),
            gc_nodes_reclaimed: r.counter("pacstore_gc_nodes_reclaimed_total"),
            shard_wal_append,
            incr_chain_depth,
            pool: PoolMetrics::new(),
        })
    }

    /// Record one WAL append's stage timings: per-shard and merged
    /// series for the write, fsync only when it ran.
    #[inline]
    pub fn record_wal_append(&self, shard: usize, t: crate::wal::AppendTimings, fsync: bool) {
        self.wal_append.record(t.write_ns);
        if let Some(h) = self.shard_wal_append.get(shard) {
            h.record(t.write_ns);
        }
        if fsync {
            self.wal_fsync.record(t.sync_ns);
        }
    }
}
