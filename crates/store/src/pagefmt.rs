//! The on-disk snapshot page format (see DESIGN.md §"pacstore on-disk
//! formats" for the byte-level specification).
//!
//! A snapshot page serializes a whole PaC-tree: the interior structure
//! as a tagged pre-order stream, and the leaves as their
//! *already-encoded* blocks, copied verbatim through
//! [`codecs::BlockIo`]. Deserialization adopts those blocks as-is via
//! [`cpam::structure`]'s bulk constructor — no re-sorting, no
//! re-encoding — so a decoded tree has byte-identical leaf payloads
//! (and identical [`cpam::SpaceStats`]) to the one encoded.
//!
//! Layout:
//!
//! ```text
//! magic      8 bytes   b"PACSNP02"
//! codec id   1 byte    BlockIo::CODEC_ID (raw = 0, delta = 1, gamma = 2)
//! schema     4 bytes   little-endian entry-type fingerprint (schema_id)
//! block size varint    the tree's B parameter
//! version    varint    store version this snapshot captured
//! count      varint    number of entries
//! length     varint    byte length of the node stream that follows
//! nodes      length    tagged pre-order node stream
//! crc32      4 bytes   little-endian, over everything above
//! ```
//!
//! Node stream: tag `0` = empty subtree, tag `1` = regular node
//! followed by its pivot entry ([`codecs::ByteEncode`]), tag `2` = flat
//! leaf followed by a framed block ([`codecs::BlockIo`]). Pre-order
//! with explicit empties is self-delimiting, so the shape needs no
//! side table.
//!
//! Integrity: [`decode_snapshot`] verifies the trailer CRC-32 over the
//! full page *before* touching the payload, so truncations and bit
//! flips surface as typed [`StoreError`]s, never as panics or silently
//! wrong data.

use std::path::Path;

use codecs::{bytecode, BlockIo, ByteEncode};
use cpam::structure::{BuildError, NodeOwned, NodeRef};
use cpam::{Augmentation, Element, PacMap, PacSet, ScalarKey};

use crate::checksum::{crc32, schema_id};
use crate::error::StoreError;

/// Identifies a pacstore snapshot page, version 02.
///
/// Version history: `PACSNP01` pages stored delta-coded leaf payloads
/// as a single predecessor chain. Version 02 payloads are *restart
/// coded* — every `codecs::RESTART_INTERVAL`-th entry is absolute so
/// in-block seeks can skip runs — which changes the payload byte
/// layout. A v01 page read by the v02 decoder would silently mis-decode
/// every entry past the first restart, so the magic was bumped: old
/// pages fail loudly with [`StoreError::BadMagic`] instead. (The restart
/// sample offsets themselves are *not* serialized; the read path
/// re-derives them from the payload.)
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PACSNP02";

const TAG_EMPTY: u8 = 0;
const TAG_REGULAR: u8 = 1;
const TAG_FLAT: u8 = 2;

/// A collection that can be written to and read from a snapshot page:
/// implemented for [`PacMap`] and [`PacSet`] whose entries are
/// byte-encodable and whose codec supports [`BlockIo`].
pub trait DiskTree: Clone + Sized + Send + Sync + 'static {
    /// The codec id stored in (and checked against) the page header.
    const CODEC_ID: u8;
    /// The codec's name, for error messages.
    const CODEC_NAME: &'static str;

    /// Fingerprint of the entry type, stored in (and checked against)
    /// the page header so mistyped loads fail with a typed error.
    fn schema() -> u32;

    /// The tree's block size parameter.
    fn disk_block_size(&self) -> usize;
    /// Number of entries, for the header's count field.
    fn disk_len(&self) -> usize;
    /// Appends the tagged pre-order node stream.
    fn write_nodes(&self, out: &mut Vec<u8>);
    /// Rebuilds a tree from a node stream that must fill `buf` exactly.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on truncated or structurally invalid streams.
    /// Assumes `buf` passed an integrity check (the page CRC): entry
    /// payload bytes themselves are trusted.
    fn read_nodes(b: usize, buf: &[u8]) -> Result<Self, StoreError>;
}

fn flatten_build_error(e: BuildError<StoreError>) -> StoreError {
    match e {
        BuildError::Source(s) => s,
        BuildError::Invalid(what) => StoreError::Corrupt(what.to_string()),
    }
}

/// Parses one node of the tagged stream.
fn read_node<E, C>(buf: &[u8], pos: &mut usize) -> Result<NodeOwned<E, C::Block>, StoreError>
where
    E: ByteEncode + Element,
    C: BlockIo<E>,
{
    let tag = *buf.get(*pos).ok_or(StoreError::Truncated("node tag"))?;
    *pos += 1;
    match tag {
        TAG_EMPTY => Ok(NodeOwned::Empty),
        TAG_REGULAR => Ok(NodeOwned::Regular(E::read(buf, pos))),
        TAG_FLAT => Ok(NodeOwned::Flat(C::read_block(buf, pos)?)),
        other => Err(StoreError::Corrupt(format!("unknown node tag {other}"))),
    }
}

/// Serializes one node of the tagged stream; shared by both `DiskTree`
/// impls so the format lives in one place.
fn write_node<E, C>(n: NodeRef<'_, E, C::Block>, out: &mut Vec<u8>)
where
    E: ByteEncode + Element,
    C: BlockIo<E>,
{
    match n {
        NodeRef::Empty => out.push(TAG_EMPTY),
        NodeRef::Regular(e) => {
            out.push(TAG_REGULAR);
            e.write(out);
        }
        NodeRef::Flat(b) => {
            out.push(TAG_FLAT);
            C::write_block(b, out);
        }
    }
}

impl<K, V, A, C> DiskTree for PacMap<K, V, A, C>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    A: Augmentation<(K, V)>,
    C: BlockIo<(K, V)>,
{
    const CODEC_ID: u8 = <C as BlockIo<(K, V)>>::CODEC_ID;
    const CODEC_NAME: &'static str = <C as BlockIo<(K, V)>>::CODEC_NAME;

    fn schema() -> u32 {
        schema_id::<(K, V)>()
    }

    fn disk_block_size(&self) -> usize {
        self.block_size()
    }

    fn disk_len(&self) -> usize {
        self.len()
    }

    fn write_nodes(&self, out: &mut Vec<u8>) {
        self.visit_nodes(&mut |n| write_node::<(K, V), C>(n, out));
    }

    fn read_nodes(b: usize, buf: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0;
        let tree = Self::from_node_stream(b, &mut || read_node::<(K, V), C>(buf, &mut pos))
            .map_err(flatten_build_error)?;
        if pos != buf.len() {
            return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
        }
        Ok(tree)
    }
}

impl<K, A, C> DiskTree for PacSet<K, A, C>
where
    K: ScalarKey + ByteEncode,
    A: Augmentation<K>,
    C: BlockIo<K>,
{
    const CODEC_ID: u8 = <C as BlockIo<K>>::CODEC_ID;
    const CODEC_NAME: &'static str = <C as BlockIo<K>>::CODEC_NAME;

    fn schema() -> u32 {
        schema_id::<K>()
    }

    fn disk_block_size(&self) -> usize {
        self.block_size()
    }

    fn disk_len(&self) -> usize {
        self.len()
    }

    fn write_nodes(&self, out: &mut Vec<u8>) {
        self.visit_nodes(&mut |n| write_node::<K, C>(n, out));
    }

    fn read_nodes(b: usize, buf: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0;
        let tree = Self::from_node_stream(b, &mut || read_node::<K, C>(buf, &mut pos))
            .map_err(flatten_build_error)?;
        if pos != buf.len() {
            return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
        }
        Ok(tree)
    }
}

/// Encodes `tree` (captured at `version`) into a complete snapshot page.
pub fn encode_snapshot<T: DiskTree>(tree: &T, version: u64) -> Vec<u8> {
    let mut nodes = Vec::new();
    tree.write_nodes(&mut nodes);

    let mut page = Vec::with_capacity(nodes.len() + 64);
    page.extend_from_slice(&SNAPSHOT_MAGIC);
    page.push(T::CODEC_ID);
    page.extend_from_slice(&T::schema().to_le_bytes());
    bytecode::write_varint(tree.disk_block_size() as u64, &mut page);
    bytecode::write_varint(version, &mut page);
    bytecode::write_varint(tree.disk_len() as u64, &mut page);
    bytecode::write_varint(nodes.len() as u64, &mut page);
    page.extend_from_slice(&nodes);
    let crc = crc32(&page);
    page.extend_from_slice(&crc.to_le_bytes());
    page
}

/// Decodes a snapshot page produced by [`encode_snapshot`], returning
/// the tree and the version it captured.
///
/// # Errors
///
/// Typed [`StoreError`]s: [`StoreError::BadMagic`] for foreign files,
/// [`StoreError::ChecksumMismatch`] for truncated or bit-flipped pages
/// (verified before the payload is parsed),
/// [`StoreError::CodecMismatch`] / [`StoreError::SchemaMismatch`] when
/// `T`'s codec or entry types differ from the ones the page was written
/// with, and [`StoreError::Truncated`] / [`StoreError::Corrupt`] for
/// framing violations.
pub fn decode_snapshot<T: DiskTree>(bytes: &[u8]) -> Result<(T, u64), StoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 1 + 4 + 4 {
        return Err(StoreError::Truncated("snapshot header"));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let mut pos = SNAPSHOT_MAGIC.len();
    let codec_id = body[pos];
    pos += 1;
    if codec_id != T::CODEC_ID {
        return Err(StoreError::CodecMismatch {
            found: codec_id,
            expected: T::CODEC_ID,
            expected_name: T::CODEC_NAME,
        });
    }
    let found_schema = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
    pos += 4;
    if found_schema != T::schema() {
        return Err(StoreError::SchemaMismatch {
            found: found_schema,
            expected: T::schema(),
        });
    }
    let b = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("block size"))? as usize;
    if b == 0 {
        return Err(StoreError::Corrupt("zero block size".into()));
    }
    let version =
        bytecode::try_read_varint(body, &mut pos).ok_or(StoreError::Truncated("version"))?;
    let count = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("entry count"))? as usize;
    let len = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("payload length"))? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| StoreError::Corrupt("payload length overflows".into()))?;
    if end != body.len() {
        return Err(StoreError::Corrupt(format!(
            "payload length {len} does not match page size"
        )));
    }

    let tree = T::read_nodes(b, &body[pos..end])?;
    if tree.disk_len() != count {
        return Err(StoreError::Corrupt(format!(
            "entry count mismatch: header {count}, decoded {}",
            tree.disk_len()
        )));
    }
    Ok((tree, version))
}

/// Writes `bytes` to `path` atomically and durably: temp file, `fsync`,
/// rename, then `fsync` of the containing directory — so after this
/// returns, a machine crash leaves either the old file or the new one,
/// never a torn or vanished file. Used for snapshot pages, the sharded
/// store's partition map, and manifest checkpoints.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself (directory entry update).
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Writes a snapshot page to `path` via [`write_file_atomic`].
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_snapshot_file<T: DiskTree>(
    path: &Path,
    tree: &T,
    version: u64,
) -> Result<(), StoreError> {
    write_file_atomic(path, &encode_snapshot(tree, version))
}

/// Reads a snapshot page from `path`; see [`decode_snapshot`] for the
/// integrity guarantees.
///
/// # Errors
///
/// I/O errors plus every [`decode_snapshot`] error.
pub fn read_snapshot_file<T: DiskTree>(path: &Path) -> Result<(T, u64), StoreError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecs::DeltaCodec;
    use cpam::NoAug;

    #[test]
    fn snapshot_page_roundtrip_preserves_space_stats() {
        let m: PacMap<u64, u64, NoAug, DeltaCodec> =
            PacMap::from_pairs_with(32, (0..20_000u64).map(|i| (2 * i, i)).collect());
        let page = encode_snapshot(&m, 7);
        let (back, version): (PacMap<u64, u64, NoAug, DeltaCodec>, u64) =
            decode_snapshot(&page).expect("decode");
        assert_eq!(version, 7);
        assert_eq!(back.to_vec(), m.to_vec());
        assert_eq!(back.space_stats(), m.space_stats());
        back.check_invariants().expect("invariants");
    }

    #[test]
    fn codec_mismatch_is_typed() {
        let s: PacSet<u64> = PacSet::from_keys((0..100).collect());
        let page = encode_snapshot(&s, 1);
        let err = decode_snapshot::<PacSet<u64, NoAug, DeltaCodec>>(&page).unwrap_err();
        assert!(matches!(err, StoreError::CodecMismatch { found: 0, expected: 1, .. }));
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let err = decode_snapshot::<PacSet<u64>>(b"definitely not a snapshot").unwrap_err();
        assert!(matches!(err, StoreError::BadMagic));
    }
}
