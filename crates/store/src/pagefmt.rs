//! The on-disk snapshot page format (see DESIGN.md §"pacstore on-disk
//! formats" for the byte-level specification).
//!
//! A snapshot page serializes a whole PaC-tree: the interior structure
//! as a tagged pre-order stream, and the leaves as their
//! *already-encoded* blocks, copied verbatim through
//! [`codecs::BlockIo`]. Deserialization adopts those blocks as-is via
//! [`cpam::structure`]'s bulk constructor — no re-sorting, no
//! re-encoding — so a decoded tree has byte-identical leaf payloads
//! (and identical [`cpam::SpaceStats`]) to the one encoded.
//!
//! Layout:
//!
//! ```text
//! magic      8 bytes   b"PACSNP02"
//! codec id   1 byte    BlockIo::CODEC_ID (raw = 0, delta = 1, gamma = 2)
//! schema     4 bytes   little-endian entry-type fingerprint (schema_id)
//! block size varint    the tree's B parameter
//! version    varint    store version this snapshot captured
//! count      varint    number of entries
//! length     varint    byte length of the node stream that follows
//! nodes      length    tagged pre-order node stream
//! crc32      4 bytes   little-endian, over everything above
//! ```
//!
//! Node stream: tag `0` = empty subtree, tag `1` = regular node
//! followed by its pivot entry ([`codecs::ByteEncode`]), tag `2` = flat
//! leaf followed by a framed block ([`codecs::BlockIo`]). Pre-order
//! with explicit empties is self-delimiting, so the shape needs no
//! side table.
//!
//! Integrity: [`decode_snapshot`] verifies the trailer CRC-32 over the
//! full page *before* touching the payload, so truncations and bit
//! flips surface as typed [`StoreError`]s, never as panics or silently
//! wrong data.

use std::path::{Path, PathBuf};

use codecs::{bytecode, BlockIo, ByteEncode};
use cpam::structure::{BuildError, DiffNodeOwned, DiffNodeRef, NodeOwned, NodeRef};
use cpam::{Augmentation, Element, PacMap, PacSet, ScalarKey};

use crate::checksum::{crc32, schema_id};
use crate::error::StoreError;

/// Identifies a pacstore snapshot page, version 02.
///
/// Version history: `PACSNP01` pages stored delta-coded leaf payloads
/// as a single predecessor chain. Version 02 payloads are *restart
/// coded* — every `codecs::RESTART_INTERVAL`-th entry is absolute so
/// in-block seeks can skip runs — which changes the payload byte
/// layout. A v01 page read by the v02 decoder would silently mis-decode
/// every entry past the first restart, so the magic was bumped: old
/// pages fail loudly with [`StoreError::BadMagic`] instead. (The restart
/// sample offsets themselves are *not* serialized; the read path
/// re-derives them from the payload.)
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PACSNP02";

/// Identifies a pacstore *incremental* snapshot page, version 01.
///
/// An incremental page stores the diff of a tree against a **base
/// snapshot** it names by version: the node stream may use tag `3`
/// ("shared"), a varint pre-order index into the base tree's non-empty
/// nodes, in place of a whole subtree. Decoding therefore requires the
/// base tree (full page, or the result of a shorter incremental chain)
/// to already be loaded; `open` chains incrementals in version order
/// back to the full page. Layout matches the full page with one extra
/// header field:
///
/// ```text
/// magic        8 bytes   b"PACINC01"
/// codec id     1 byte
/// schema       4 bytes
/// block size   varint    must equal the base tree's
/// base version varint    version of the snapshot this page diffs against
/// version      varint    store version this page captures
/// count        varint    entries in the *resulting* tree
/// length       varint    byte length of the diff node stream
/// nodes        length    tagged pre-order diff stream (tags 0..=3)
/// crc32        4 bytes   little-endian, over everything above
/// ```
pub const INCREMENTAL_MAGIC: [u8; 8] = *b"PACINC01";

pub(crate) const TAG_EMPTY: u8 = 0;
pub(crate) const TAG_REGULAR: u8 = 1;
const TAG_FLAT: u8 = 2;
const TAG_SHARED: u8 = 3;

/// A collection that can be written to and read from a snapshot page:
/// implemented for [`PacMap`] and [`PacSet`] whose entries are
/// byte-encodable and whose codec supports [`BlockIo`].
pub trait DiskTree: Clone + Sized + Send + Sync + 'static {
    /// The codec id stored in (and checked against) the page header.
    const CODEC_ID: u8;
    /// The codec's name, for error messages.
    const CODEC_NAME: &'static str;

    /// Fingerprint of the entry type, stored in (and checked against)
    /// the page header so mistyped loads fail with a typed error.
    fn schema() -> u32;

    /// The tree's block size parameter.
    fn disk_block_size(&self) -> usize;
    /// Number of entries, for the header's count field.
    fn disk_len(&self) -> usize;
    /// Appends the tagged pre-order node stream.
    fn write_nodes(&self, out: &mut Vec<u8>);
    /// Rebuilds a tree from a node stream that must fill `buf` exactly.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on truncated or structurally invalid streams.
    /// Assumes `buf` passed an integrity check (the page CRC): entry
    /// payload bytes themselves are trusted.
    fn read_nodes(b: usize, buf: &[u8]) -> Result<Self, StoreError>;

    /// Appends the tagged pre-order *diff* node stream against `base`
    /// (subtrees shared with `base` become `TAG_SHARED` references).
    fn write_nodes_diff(&self, base: &Self, out: &mut Vec<u8>);

    /// Rebuilds a tree from a diff node stream, resolving shared
    /// references against `base`; inverse of
    /// [`DiskTree::write_nodes_diff`].
    ///
    /// # Errors
    ///
    /// [`StoreError`] on truncated or structurally invalid streams,
    /// including shared indices past the base tree.
    fn read_nodes_diff(b: usize, base: &Self, buf: &[u8]) -> Result<Self, StoreError>;
}

pub(crate) fn flatten_build_error(e: BuildError<StoreError>) -> StoreError {
    match e {
        BuildError::Source(s) => s,
        BuildError::Invalid(what) => StoreError::Corrupt(what.to_string()),
    }
}

/// Parses one node of the tagged stream.
fn read_node<E, C>(buf: &[u8], pos: &mut usize) -> Result<NodeOwned<E, C::Block>, StoreError>
where
    E: ByteEncode + Element,
    C: BlockIo<E>,
{
    let tag = *buf.get(*pos).ok_or(StoreError::Truncated("node tag"))?;
    *pos += 1;
    match tag {
        TAG_EMPTY => Ok(NodeOwned::Empty),
        TAG_REGULAR => Ok(NodeOwned::Regular(E::read(buf, pos))),
        TAG_FLAT => Ok(NodeOwned::Flat(C::read_block(buf, pos)?)),
        other => Err(StoreError::Corrupt(format!("unknown node tag {other}"))),
    }
}

/// Serializes one node of the tagged stream; shared by both `DiskTree`
/// impls so the format lives in one place.
fn write_node<E, C>(n: NodeRef<'_, E, C::Block>, out: &mut Vec<u8>)
where
    E: ByteEncode + Element,
    C: BlockIo<E>,
{
    match n {
        NodeRef::Empty => out.push(TAG_EMPTY),
        NodeRef::Regular(e) => {
            out.push(TAG_REGULAR);
            e.write(out);
        }
        NodeRef::Flat(b) => {
            out.push(TAG_FLAT);
            C::write_block(b, out);
        }
    }
}

/// Parses one node of the tagged diff stream.
fn read_diff_node<E, C>(
    buf: &[u8],
    pos: &mut usize,
) -> Result<DiffNodeOwned<E, C::Block>, StoreError>
where
    E: ByteEncode + Element,
    C: BlockIo<E>,
{
    let tag = *buf.get(*pos).ok_or(StoreError::Truncated("node tag"))?;
    *pos += 1;
    match tag {
        TAG_EMPTY => Ok(DiffNodeOwned::Empty),
        TAG_REGULAR => Ok(DiffNodeOwned::Regular(E::read(buf, pos))),
        TAG_FLAT => Ok(DiffNodeOwned::Flat(C::read_block(buf, pos)?)),
        TAG_SHARED => {
            let idx = bytecode::try_read_varint(buf, pos)
                .ok_or(StoreError::Truncated("shared subtree index"))?;
            Ok(DiffNodeOwned::Shared(idx))
        }
        other => Err(StoreError::Corrupt(format!("unknown node tag {other}"))),
    }
}

/// Serializes one node of the tagged diff stream.
fn write_diff_node<E, C>(n: DiffNodeRef<'_, E, C::Block>, out: &mut Vec<u8>)
where
    E: ByteEncode + Element,
    C: BlockIo<E>,
{
    match n {
        DiffNodeRef::Empty => out.push(TAG_EMPTY),
        DiffNodeRef::Regular(e) => {
            out.push(TAG_REGULAR);
            e.write(out);
        }
        DiffNodeRef::Flat(b) => {
            out.push(TAG_FLAT);
            C::write_block(b, out);
        }
        DiffNodeRef::Shared(idx) => {
            out.push(TAG_SHARED);
            bytecode::write_varint(idx, out);
        }
    }
}

impl<K, V, A, C> DiskTree for PacMap<K, V, A, C>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    A: Augmentation<(K, V)>,
    C: BlockIo<(K, V)>,
{
    const CODEC_ID: u8 = <C as BlockIo<(K, V)>>::CODEC_ID;
    const CODEC_NAME: &'static str = <C as BlockIo<(K, V)>>::CODEC_NAME;

    fn schema() -> u32 {
        schema_id::<(K, V)>()
    }

    fn disk_block_size(&self) -> usize {
        self.block_size()
    }

    fn disk_len(&self) -> usize {
        self.len()
    }

    fn write_nodes(&self, out: &mut Vec<u8>) {
        self.visit_nodes(&mut |n| write_node::<(K, V), C>(n, out));
    }

    fn read_nodes(b: usize, buf: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0;
        let tree = Self::from_node_stream(b, &mut || read_node::<(K, V), C>(buf, &mut pos))
            .map_err(flatten_build_error)?;
        if pos != buf.len() {
            return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
        }
        Ok(tree)
    }

    fn write_nodes_diff(&self, base: &Self, out: &mut Vec<u8>) {
        self.visit_nodes_diff(base, &mut |n| write_diff_node::<(K, V), C>(n, out));
    }

    fn read_nodes_diff(b: usize, base: &Self, buf: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0;
        let tree =
            Self::from_diff_node_stream(b, base, &mut || read_diff_node::<(K, V), C>(buf, &mut pos))
                .map_err(flatten_build_error)?;
        if pos != buf.len() {
            return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
        }
        Ok(tree)
    }
}

impl<K, A, C> DiskTree for PacSet<K, A, C>
where
    K: ScalarKey + ByteEncode,
    A: Augmentation<K>,
    C: BlockIo<K>,
{
    const CODEC_ID: u8 = <C as BlockIo<K>>::CODEC_ID;
    const CODEC_NAME: &'static str = <C as BlockIo<K>>::CODEC_NAME;

    fn schema() -> u32 {
        schema_id::<K>()
    }

    fn disk_block_size(&self) -> usize {
        self.block_size()
    }

    fn disk_len(&self) -> usize {
        self.len()
    }

    fn write_nodes(&self, out: &mut Vec<u8>) {
        self.visit_nodes(&mut |n| write_node::<K, C>(n, out));
    }

    fn read_nodes(b: usize, buf: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0;
        let tree = Self::from_node_stream(b, &mut || read_node::<K, C>(buf, &mut pos))
            .map_err(flatten_build_error)?;
        if pos != buf.len() {
            return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
        }
        Ok(tree)
    }

    fn write_nodes_diff(&self, base: &Self, out: &mut Vec<u8>) {
        self.visit_nodes_diff(base, &mut |n| write_diff_node::<K, C>(n, out));
    }

    fn read_nodes_diff(b: usize, base: &Self, buf: &[u8]) -> Result<Self, StoreError> {
        let mut pos = 0;
        let tree =
            Self::from_diff_node_stream(b, base, &mut || read_diff_node::<K, C>(buf, &mut pos))
                .map_err(flatten_build_error)?;
        if pos != buf.len() {
            return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
        }
        Ok(tree)
    }
}

/// Encodes `tree` (captured at `version`) into a complete snapshot page.
pub fn encode_snapshot<T: DiskTree>(tree: &T, version: u64) -> Vec<u8> {
    let mut nodes = Vec::new();
    tree.write_nodes(&mut nodes);

    let mut page = Vec::with_capacity(nodes.len() + 64);
    page.extend_from_slice(&SNAPSHOT_MAGIC);
    page.push(T::CODEC_ID);
    page.extend_from_slice(&T::schema().to_le_bytes());
    bytecode::write_varint(tree.disk_block_size() as u64, &mut page);
    bytecode::write_varint(version, &mut page);
    bytecode::write_varint(tree.disk_len() as u64, &mut page);
    bytecode::write_varint(nodes.len() as u64, &mut page);
    page.extend_from_slice(&nodes);
    let crc = crc32(&page);
    page.extend_from_slice(&crc.to_le_bytes());
    let pc = crate::metrics::page_counters();
    pc.pages_written.inc();
    pc.page_bytes_written.add(page.len() as u64);
    page
}

/// Decodes a snapshot page produced by [`encode_snapshot`], returning
/// the tree and the version it captured.
///
/// # Errors
///
/// Typed [`StoreError`]s: [`StoreError::BadMagic`] for foreign files,
/// [`StoreError::ChecksumMismatch`] for truncated or bit-flipped pages
/// (verified before the payload is parsed),
/// [`StoreError::CodecMismatch`] / [`StoreError::SchemaMismatch`] when
/// `T`'s codec or entry types differ from the ones the page was written
/// with, and [`StoreError::Truncated`] / [`StoreError::Corrupt`] for
/// framing violations.
pub fn decode_snapshot<T: DiskTree>(bytes: &[u8]) -> Result<(T, u64), StoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 1 + 4 + 4 {
        return Err(StoreError::Truncated("snapshot header"));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let mut pos = SNAPSHOT_MAGIC.len();
    let codec_id = body[pos];
    pos += 1;
    if codec_id != T::CODEC_ID {
        return Err(StoreError::CodecMismatch {
            found: codec_id,
            expected: T::CODEC_ID,
            expected_name: T::CODEC_NAME,
        });
    }
    let found_schema = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
    pos += 4;
    if found_schema != T::schema() {
        return Err(StoreError::SchemaMismatch {
            found: found_schema,
            expected: T::schema(),
        });
    }
    let b = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("block size"))? as usize;
    if b == 0 {
        return Err(StoreError::Corrupt("zero block size".into()));
    }
    let version =
        bytecode::try_read_varint(body, &mut pos).ok_or(StoreError::Truncated("version"))?;
    let count = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("entry count"))? as usize;
    let len = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("payload length"))? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| StoreError::Corrupt("payload length overflows".into()))?;
    if end != body.len() {
        return Err(StoreError::Corrupt(format!(
            "payload length {len} does not match page size"
        )));
    }

    let tree = T::read_nodes(b, &body[pos..end])?;
    if tree.disk_len() != count {
        return Err(StoreError::Corrupt(format!(
            "entry count mismatch: header {count}, decoded {}",
            tree.disk_len()
        )));
    }
    let pc = crate::metrics::page_counters();
    pc.pages_read.inc();
    pc.page_bytes_read.add(bytes.len() as u64);
    Ok((tree, version))
}

/// Writes `bytes` to `path` atomically and durably: temp file, `fsync`,
/// rename, then `fsync` of the containing directory — so after this
/// returns, a machine crash leaves either the old file or the new one,
/// never a torn or vanished file. Used for snapshot pages, the sharded
/// store's partition map, and manifest checkpoints.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself (directory entry update).
        fsync_dir(dir)?;
    }
    Ok(())
}

/// `fsync`s a directory, persisting entry creations, renames, and
/// removals inside it. Every mutation of the store directory's name
/// space (atomic snapshot renames, incremental cleanup, log creation)
/// must be followed by one of these before the change is acknowledged,
/// or a crash can resurrect removed files / vanish created ones.
///
/// # Errors
///
/// Any underlying I/O error.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Writes a snapshot page to `path` via [`write_file_atomic`].
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_snapshot_file<T: DiskTree>(
    path: &Path,
    tree: &T,
    version: u64,
) -> Result<(), StoreError> {
    write_file_atomic(path, &encode_snapshot(tree, version))
}

/// Reads a snapshot page from `path`; see [`decode_snapshot`] for the
/// integrity guarantees.
///
/// # Errors
///
/// I/O errors plus every [`decode_snapshot`] error.
pub fn read_snapshot_file<T: DiskTree>(path: &Path) -> Result<(T, u64), StoreError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Encodes the diff of `tree` (captured at `version`) against `base`
/// (the tree persisted at `base_version`) into an incremental page.
///
/// Sound only if `base` is the *pinned* checkpoint root `tree` evolved
/// from (see [`cpam::PacMap::visit_nodes_diff`] for why the pin makes
/// pointer identity a valid sharing witness).
pub fn encode_incremental<T: DiskTree>(
    tree: &T,
    base: &T,
    base_version: u64,
    version: u64,
) -> Vec<u8> {
    let mut nodes = Vec::new();
    tree.write_nodes_diff(base, &mut nodes);

    let mut page = Vec::with_capacity(nodes.len() + 64);
    page.extend_from_slice(&INCREMENTAL_MAGIC);
    page.push(T::CODEC_ID);
    page.extend_from_slice(&T::schema().to_le_bytes());
    bytecode::write_varint(tree.disk_block_size() as u64, &mut page);
    bytecode::write_varint(base_version, &mut page);
    bytecode::write_varint(version, &mut page);
    bytecode::write_varint(tree.disk_len() as u64, &mut page);
    bytecode::write_varint(nodes.len() as u64, &mut page);
    page.extend_from_slice(&nodes);
    let crc = crc32(&page);
    page.extend_from_slice(&crc.to_le_bytes());
    let pc = crate::metrics::page_counters();
    pc.pages_written.inc();
    pc.page_bytes_written.add(page.len() as u64);
    page
}

/// Decodes an incremental page against the base tree it names,
/// returning `(tree, base_version, version)`. The caller must verify
/// that `base_version` matches the version `base` actually captures —
/// the page only records the number.
///
/// # Errors
///
/// The same typed-error surface as [`decode_snapshot`] (CRC before
/// payload, codec/schema checks), plus [`StoreError::Corrupt`] when the
/// page's block size disagrees with `base`'s or a shared reference
/// points past the base tree.
pub fn decode_incremental<T: DiskTree>(
    bytes: &[u8],
    base: &T,
) -> Result<(T, u64, u64), StoreError> {
    if bytes.len() < INCREMENTAL_MAGIC.len() + 1 + 4 + 4 {
        return Err(StoreError::Truncated("incremental page header"));
    }
    if bytes[..INCREMENTAL_MAGIC.len()] != INCREMENTAL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let mut pos = INCREMENTAL_MAGIC.len();
    let codec_id = body[pos];
    pos += 1;
    if codec_id != T::CODEC_ID {
        return Err(StoreError::CodecMismatch {
            found: codec_id,
            expected: T::CODEC_ID,
            expected_name: T::CODEC_NAME,
        });
    }
    let found_schema = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
    pos += 4;
    if found_schema != T::schema() {
        return Err(StoreError::SchemaMismatch {
            found: found_schema,
            expected: T::schema(),
        });
    }
    let b = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("block size"))? as usize;
    if b == 0 {
        return Err(StoreError::Corrupt("zero block size".into()));
    }
    if b != base.disk_block_size() {
        return Err(StoreError::Corrupt(format!(
            "incremental page block size {b} differs from its base's {}",
            base.disk_block_size()
        )));
    }
    let base_version = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("base version"))?;
    let version =
        bytecode::try_read_varint(body, &mut pos).ok_or(StoreError::Truncated("version"))?;
    let count = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("entry count"))? as usize;
    let len = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("payload length"))? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| StoreError::Corrupt("payload length overflows".into()))?;
    if end != body.len() {
        return Err(StoreError::Corrupt(format!(
            "payload length {len} does not match page size"
        )));
    }

    let tree = T::read_nodes_diff(b, base, &body[pos..end])?;
    if tree.disk_len() != count {
        return Err(StoreError::Corrupt(format!(
            "entry count mismatch: header {count}, decoded {}",
            tree.disk_len()
        )));
    }
    let pc = crate::metrics::page_counters();
    pc.pages_read.inc();
    pc.page_bytes_read.add(bytes.len() as u64);
    Ok((tree, base_version, version))
}

/// The file name an incremental page captured at `version` is stored
/// under (zero-padded so lexical order is version order).
pub fn incr_file_name(version: u64) -> String {
    format!("incr-{version:020}.pac")
}

/// Parses a file name produced by [`incr_file_name`].
fn parse_incr_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("incr-")?.strip_suffix(".pac")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists the incremental pages in `dir`, sorted by captured version.
///
/// # Errors
///
/// Any underlying I/O error while reading the directory.
pub(crate) fn list_incr_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(v) = entry.file_name().to_str().and_then(parse_incr_file_name) {
            out.push((v, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(v, _)| v);
    Ok(out)
}

/// Deletes every incremental page in `dir` — called after a full
/// snapshot supersedes the chain. Ignores missing files (idempotent).
/// The directory is `fsync`ed after the removals, so a crash cannot
/// resurrect a superseded chain the caller already acknowledged as
/// cleaned up (the load path *also* skips stale incrementals, but the
/// durable removal keeps the two defenses independent).
///
/// # Errors
///
/// Any underlying I/O error other than the files already being gone.
pub(crate) fn remove_incr_files(dir: &Path) -> Result<(), StoreError> {
    let mut removed = false;
    for (_, path) in list_incr_files(dir)? {
        match std::fs::remove_file(&path) {
            Ok(()) => removed = true,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }
    if removed {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// Loads a full snapshot page and chains every newer incremental page
/// onto it in version order. Returns `None` when `dir` has no full page
/// (and, as a consistency check, no incrementals either); otherwise the
/// chained tree, the version it reaches, and the number of incrementals
/// applied.
///
/// Incrementals at or below the full page's version are *stale* —
/// superseded by a later full save whose cleanup did not complete — and
/// are skipped. An incremental whose recorded base version is not the
/// version the chain has reached means a link was deleted: typed
/// [`StoreError::Corrupt`], never a silently shortened history.
///
/// # Errors
///
/// I/O errors, every [`decode_snapshot`] / [`decode_incremental`]
/// error, and [`StoreError::Corrupt`] for a broken chain.
pub(crate) fn load_chain<T: DiskTree>(
    dir: &Path,
    snapshot_file: &str,
) -> Result<Option<(T, u64, usize)>, StoreError> {
    let full = dir.join(snapshot_file);
    if !full.exists() {
        if !list_incr_files(dir)?.is_empty() {
            return Err(StoreError::Corrupt(
                "incremental snapshot pages present without a base snapshot".into(),
            ));
        }
        return Ok(None);
    }
    let (tree, version) = read_snapshot_file::<T>(&full)?;
    Ok(Some(chain_incrementals(dir, tree, version)?))
}

/// Chains every incremental page in `dir` newer than `version` onto
/// `tree`, in version order. Shared by [`load_chain`] and the paged
/// open path (whose base snapshot lives in a different file format but
/// chains identically). Returns the resulting tree, the version it
/// reaches, and the number of incrementals applied.
///
/// # Errors
///
/// See [`load_chain`].
pub(crate) fn chain_incrementals<T: DiskTree>(
    dir: &Path,
    mut tree: T,
    mut version: u64,
) -> Result<(T, u64, usize), StoreError> {
    let mut applied = 0;
    for (v, path) in list_incr_files(dir)? {
        if v <= version {
            continue;
        }
        let bytes = std::fs::read(&path)?;
        let (next, base_version, page_version) = decode_incremental::<T>(&bytes, &tree)?;
        if base_version != version {
            return Err(StoreError::Corrupt(format!(
                "incremental page {} diffs against version {base_version}, but the \
                 chain reaches {version}: a link is missing",
                path.display()
            )));
        }
        debug_assert_eq!(page_version, v, "file name vs header version");
        tree = next;
        version = page_version;
        applied += 1;
    }
    Ok((tree, version, applied))
}

/// Reads only the version field of the classic snapshot page at `path`.
///
/// Used to arbitrate when both a classic and a paged snapshot survive a
/// crash between "write new format" and "remove old format": the newer
/// version is the acknowledged state. Skips the CRC (the winner is
/// fully verified when actually loaded) but still bounds the read to
/// the fixed header prefix.
///
/// # Errors
///
/// I/O errors, [`StoreError::BadMagic`], [`StoreError::Truncated`].
pub(crate) fn read_snapshot_version(path: &Path) -> Result<u64, StoreError> {
    use std::io::Read;

    // magic + codec + schema + two varints (≤ 10 bytes each) is always
    // inside the first 64 bytes.
    let mut buf = [0u8; 64];
    let mut file = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < buf.len() {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    let buf = &buf[..filled];
    if buf.len() < SNAPSHOT_MAGIC.len() {
        return Err(StoreError::Truncated("snapshot header"));
    }
    if buf[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut pos = SNAPSHOT_MAGIC.len() + 1 + 4; // skip codec id + schema
    bytecode::try_read_varint(buf, &mut pos).ok_or(StoreError::Truncated("block size"))?;
    bytecode::try_read_varint(buf, &mut pos).ok_or(StoreError::Truncated("version"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecs::DeltaCodec;
    use cpam::NoAug;

    #[test]
    fn snapshot_page_roundtrip_preserves_space_stats() {
        let m: PacMap<u64, u64, NoAug, DeltaCodec> =
            PacMap::from_pairs_with(32, (0..20_000u64).map(|i| (2 * i, i)).collect());
        let page = encode_snapshot(&m, 7);
        let (back, version): (PacMap<u64, u64, NoAug, DeltaCodec>, u64) =
            decode_snapshot(&page).expect("decode");
        assert_eq!(version, 7);
        assert_eq!(back.to_vec(), m.to_vec());
        assert_eq!(back.space_stats(), m.space_stats());
        back.check_invariants().expect("invariants");
    }

    #[test]
    fn codec_mismatch_is_typed() {
        let s: PacSet<u64> = PacSet::from_keys((0..100).collect());
        let page = encode_snapshot(&s, 1);
        let err = decode_snapshot::<PacSet<u64, NoAug, DeltaCodec>>(&page).unwrap_err();
        assert!(matches!(err, StoreError::CodecMismatch { found: 0, expected: 1, .. }));
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let err = decode_snapshot::<PacSet<u64>>(b"definitely not a snapshot").unwrap_err();
        assert!(matches!(err, StoreError::BadMagic));
    }

    #[test]
    fn incremental_page_roundtrips_and_is_small() {
        let base: PacMap<u64, u64> =
            PacMap::from_pairs_with(32, (0..20_000u64).map(|i| (2 * i, i)).collect());
        let mut m = base.clone();
        for k in [1u64, 20_001, 39_999] {
            m = m.insert(k, 0);
        }
        let full = encode_snapshot(&m, 8);
        let page = encode_incremental(&m, &base, 7, 8);
        assert!(
            page.len() * 10 < full.len(),
            "sparse diff page ({}) should be far smaller than the full page ({})",
            page.len(),
            full.len()
        );
        let (back, base_version, version): (PacMap<u64, u64>, u64, u64) =
            decode_incremental(&page, &base).expect("decode");
        assert_eq!((base_version, version), (7, 8));
        assert_eq!(back.to_vec(), m.to_vec());
        back.check_invariants().expect("invariants");
    }

    #[test]
    fn truncated_incremental_page_is_typed() {
        let base: PacMap<u64, u64> = PacMap::from_pairs_with(8, vec![(1, 1)]);
        let m = base.insert(2, 2);
        let page = encode_incremental(&m, &base, 1, 2);
        for cut in 0..page.len() {
            let err = decode_incremental::<PacMap<u64, u64>>(&page[..cut], &base).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated(_)
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::BadMagic
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn incremental_against_wrong_block_size_is_corrupt() {
        let base: PacMap<u64, u64> = PacMap::from_pairs_with(8, (0..100).map(|i| (i, i)).collect());
        let m = base.insert(500, 0);
        let page = encode_incremental(&m, &base, 1, 2);
        let other: PacMap<u64, u64> =
            PacMap::from_pairs_with(16, (0..100).map(|i| (i, i)).collect());
        let err = decode_incremental::<PacMap<u64, u64>>(&page, &other).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }

    #[test]
    fn incr_file_names_roundtrip_in_version_order() {
        assert_eq!(parse_incr_file_name(&incr_file_name(42)), Some(42));
        assert_eq!(parse_incr_file_name("incr-x.pac"), None);
        assert_eq!(parse_incr_file_name("snapshot.pac"), None);
        assert!(incr_file_name(9) < incr_file_name(10));
        assert!(incr_file_name(99) < incr_file_name(100));
    }
}
