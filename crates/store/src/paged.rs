//! The paged snapshot format (`PACPGF01`) and its demand-paging reader.
//!
//! The classic snapshot page ([`crate::pagefmt`]) interleaves leaf
//! blocks with the node stream, so opening a store decodes every block
//! — `O(data)` before the first query. The paged format splits the two:
//!
//! * **header** — magic, codec/schema, the tagged pre-order *structure*
//!   stream in which leaves are `(page, len)` references, own CRC;
//! * **data pages** — `page_count × page_size` bytes; page `i` holds
//!   leaf `i`'s framed block payload, zero-padded to the page size
//!   (a power of two sized to the largest payload, so any page is one
//!   aligned `pread`);
//! * **footer** — per-page payload lengths and CRCs plus the page
//!   geometry, its own CRC, then a fixed 12-byte tail
//!   (`body crc · body len · b"PGT1"`) so a reader can bootstrap from
//!   the end of the file.
//!
//! ```text
//! magic        8 bytes   b"PACPGF01"
//! codec id     1 byte
//! schema       4 bytes   LE
//! block size   varint
//! version      varint    store version this snapshot captures
//! count        varint    total entries
//! struct len   varint    byte length of the structure stream
//! structure    …         tags 0 (empty), 1 (regular + entry),
//!                        4 (paged leaf: page varint, len varint)
//! header crc   4 bytes   LE, over everything above
//! data pages   page_count × page_size
//! footer body  …         page size varint, page count varint, then per
//!                        page: payload len varint + payload crc 4 LE
//! body crc     4 bytes   LE, over the footer body
//! body len     4 bytes   LE
//! tail magic   4 bytes   b"PGT1"
//! ```
//!
//! Opening reads the tail, the footer, and the header — `O(structure)`
//! I/O, independent of the data size. Leaves materialize through a
//! [`PagedSource`] (a [`BufferPool`]-backed [`BlockSource`]) only when
//! a query path crosses them; each page's CRC is verified on its first
//! load. An *eager* open (no pool) reads every page up front and yields
//! the same fully-resident tree the classic format would.
//!
//! Only unaugmented maps are paged (a lazy leaf cannot supply an
//! aggregate without being read), which is exactly what the store keeps.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use codecs::{bytecode, BlockIo, ByteEncode};
use cpam::structure::{NodeOwned, PagedNodeOwned};
use cpam::{BlockSource, Element, NoAug, PacMap, ScalarKey};

use crate::checksum::{crc32, schema_id};
use crate::error::StoreError;
use crate::pagefmt::{flatten_build_error, write_file_atomic, TAG_EMPTY, TAG_REGULAR};
use crate::pool::BufferPool;

/// Identifies a paged snapshot file, version 01.
pub const PAGED_MAGIC: [u8; 8] = *b"PACPGF01";

/// Identifies the fixed tail record the reader bootstraps from.
const TAIL_MAGIC: [u8; 4] = *b"PGT1";

/// Structure-stream tag for a paged leaf. Distinct from the classic
/// stream's `TAG_FLAT`/`TAG_SHARED` so a mixed-up decode fails loudly.
const TAG_PAGED: u8 = 4;

/// Smallest page size; payloads below this still occupy one page.
const MIN_PAGE_SIZE: usize = 64;

/// Serializes `map` (captured at `version`) into a complete paged
/// snapshot file image.
pub fn encode_paged<K, V, C>(map: &PacMap<K, V, NoAug, C>, version: u64) -> Vec<u8>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    // Pass 1: structure stream + one framed payload per leaf, in
    // pre-order (leaf i lands on page i).
    let mut structure = Vec::new();
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    map.visit_nodes(&mut |n| match n {
        cpam::structure::NodeRef::Empty => structure.push(TAG_EMPTY),
        cpam::structure::NodeRef::Regular(e) => {
            structure.push(TAG_REGULAR);
            e.write(&mut structure);
        }
        cpam::structure::NodeRef::Flat(block) => {
            structure.push(TAG_PAGED);
            bytecode::write_varint(payloads.len() as u64, &mut structure);
            bytecode::write_varint(C::len(block) as u64, &mut structure);
            let mut payload = Vec::new();
            C::write_block(block, &mut payload);
            payloads.push(payload);
        }
    });

    let max_payload = payloads.iter().map(Vec::len).max().unwrap_or(0);
    let page_size = max_payload.max(MIN_PAGE_SIZE).next_power_of_two();

    // Header.
    let mut out = Vec::with_capacity(structure.len() + payloads.len() * page_size + 128);
    out.extend_from_slice(&PAGED_MAGIC);
    out.push(C::CODEC_ID);
    out.extend_from_slice(&schema_id::<(K, V)>().to_le_bytes());
    bytecode::write_varint(map.block_size() as u64, &mut out);
    bytecode::write_varint(version, &mut out);
    bytecode::write_varint(map.len() as u64, &mut out);
    bytecode::write_varint(structure.len() as u64, &mut out);
    out.extend_from_slice(&structure);
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());

    // Data pages, zero-padded.
    for payload in &payloads {
        out.extend_from_slice(payload);
        out.resize(out.len() + (page_size - payload.len()), 0);
    }

    // Footer: geometry + per-page lengths/CRCs, then the fixed tail.
    let mut body = Vec::with_capacity(payloads.len() * 8 + 16);
    bytecode::write_varint(page_size as u64, &mut body);
    bytecode::write_varint(payloads.len() as u64, &mut body);
    for payload in &payloads {
        bytecode::write_varint(payload.len() as u64, &mut body);
        body.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    let body_crc = crc32(&body);
    let body_len = body.len() as u32;
    out.extend_from_slice(&body);
    out.extend_from_slice(&body_crc.to_le_bytes());
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&TAIL_MAGIC);
    out
}

/// Writes `map` to `path` as a paged snapshot, atomically
/// (temp file + fsync + rename + parent dir fsync).
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure.
pub fn write_paged_file<K, V, C>(
    path: &Path,
    map: &PacMap<K, V, NoAug, C>,
    version: u64,
) -> Result<(), StoreError>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    write_file_atomic(path, &encode_paged(map, version))
}

/// Per-page metadata parsed from the footer.
#[derive(Clone, Copy)]
struct PageMeta {
    payload_len: u32,
    crc: u32,
}

/// Everything needed to read pages out of one paged file: parsed
/// geometry plus an open handle for positioned reads.
struct PagedFile {
    file: File,
    path: PathBuf,
    data_off: u64,
    page_size: u64,
    pages: Vec<PageMeta>,
}

/// Positioned exact read; positional I/O keeps the handle shareable
/// across concurrent page loads without a seek lock.
#[cfg(unix)]
fn pread(file: &File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off)
}

#[cfg(not(unix))]
fn pread(file: &File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(buf)
}

impl PagedFile {
    /// Reads and verifies page `page`'s payload bytes.
    fn read_payload(&self, page: u32, verify_crc: bool) -> Result<Vec<u8>, StoreError> {
        let meta = self.pages[page as usize];
        let mut buf = vec![0u8; meta.payload_len as usize];
        pread(&self.file, &mut buf, self.data_off + u64::from(page) * self.page_size)?;
        if verify_crc {
            let computed = crc32(&buf);
            if computed != meta.crc {
                return Err(StoreError::ChecksumMismatch { stored: meta.crc, computed });
            }
        }
        Ok(buf)
    }
}

/// Bootstraps a [`PagedFile`] from the tail + footer + header of
/// `path`, and parses the header into `(b, version, count, structure)`.
fn open_raw(
    path: &Path,
    codec_id: u8,
    codec_name: &'static str,
    schema: u32,
) -> Result<(PagedFile, usize, u64, usize, Vec<u8>), StoreError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < 12 {
        return Err(StoreError::Truncated("paged tail"));
    }

    let mut tail = [0u8; 8];
    pread(&file, &mut tail, file_len - 8)?;
    if tail[4..] != TAIL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let body_len = u64::from(u32::from_le_bytes(tail[..4].try_into().unwrap()));
    if file_len < 12 + body_len {
        return Err(StoreError::Truncated("paged footer"));
    }
    let body_start = file_len - 12 - body_len;
    let mut body = vec![0u8; body_len as usize + 4];
    pread(&file, &mut body, body_start)?;
    let stored = u32::from_le_bytes(body[body_len as usize..].try_into().unwrap());
    body.truncate(body_len as usize);
    let computed = crc32(&body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let mut pos = 0;
    let page_size = bytecode::try_read_varint(&body, &mut pos)
        .ok_or(StoreError::Truncated("page size"))?;
    let page_count = bytecode::try_read_varint(&body, &mut pos)
        .ok_or(StoreError::Truncated("page count"))?;
    if page_size == 0 || !page_size.is_power_of_two() || page_count > u64::from(u32::MAX) {
        return Err(StoreError::Corrupt(format!(
            "implausible page geometry: {page_count} pages of {page_size} bytes"
        )));
    }
    let mut pages = Vec::with_capacity(page_count as usize);
    for _ in 0..page_count {
        let payload_len = bytecode::try_read_varint(&body, &mut pos)
            .ok_or(StoreError::Truncated("payload length"))?;
        if payload_len > page_size {
            return Err(StoreError::Corrupt(format!(
                "payload of {payload_len} bytes exceeds page size {page_size}"
            )));
        }
        let crc_bytes = body
            .get(pos..pos + 4)
            .ok_or(StoreError::Truncated("payload crc"))?;
        pos += 4;
        pages.push(PageMeta {
            payload_len: payload_len as u32,
            crc: u32::from_le_bytes(crc_bytes.try_into().unwrap()),
        });
    }
    if pos != body.len() {
        return Err(StoreError::Corrupt("trailing bytes after footer body".into()));
    }

    let data_len = page_count * page_size;
    let data_off = body_start
        .checked_sub(data_len)
        .ok_or(StoreError::Truncated("data pages"))?;

    // Header (everything before the data region), own CRC last.
    let mut header = vec![0u8; data_off as usize];
    pread(&file, &mut header, 0)?;
    if header.len() < 4 {
        return Err(StoreError::Truncated("paged header"));
    }
    let crc_start = header.len() - 4;
    let stored = u32::from_le_bytes(header[crc_start..].try_into().unwrap());
    let computed = crc32(&header[..crc_start]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    if header.len() < 13 || header[..8] != PAGED_MAGIC {
        return Err(StoreError::BadMagic);
    }
    if header[8] != codec_id {
        return Err(StoreError::CodecMismatch {
            found: header[8],
            expected: codec_id,
            expected_name: codec_name,
        });
    }
    let found_schema = u32::from_le_bytes(header[9..13].try_into().unwrap());
    if found_schema != schema {
        return Err(StoreError::SchemaMismatch { found: found_schema, expected: schema });
    }
    let mut pos = 13;
    let b = bytecode::try_read_varint(&header, &mut pos)
        .ok_or(StoreError::Truncated("block size"))?;
    let version =
        bytecode::try_read_varint(&header, &mut pos).ok_or(StoreError::Truncated("version"))?;
    let count = bytecode::try_read_varint(&header, &mut pos)
        .ok_or(StoreError::Truncated("entry count"))?;
    let struct_len = bytecode::try_read_varint(&header, &mut pos)
        .ok_or(StoreError::Truncated("structure length"))?;
    let structure = header
        .get(pos..pos + struct_len as usize)
        .ok_or(StoreError::Truncated("structure stream"))?
        .to_vec();
    if pos + struct_len as usize != crc_start {
        return Err(StoreError::Corrupt("trailing bytes after structure stream".into()));
    }

    let paged = PagedFile {
        file,
        path: path.to_path_buf(),
        data_off,
        page_size,
        pages,
    };
    Ok((paged, b as usize, version, count as usize, structure))
}

/// Parses one node of the paged structure stream.
fn read_paged_node<E: ByteEncode>(
    buf: &[u8],
    pos: &mut usize,
    page_count: usize,
) -> Result<PagedNodeOwned<E>, StoreError> {
    let tag = *buf.get(*pos).ok_or(StoreError::Truncated("node tag"))?;
    *pos += 1;
    match tag {
        TAG_EMPTY => Ok(PagedNodeOwned::Empty),
        TAG_REGULAR => Ok(PagedNodeOwned::Regular(E::read(buf, pos))),
        TAG_PAGED => {
            let page =
                bytecode::try_read_varint(buf, pos).ok_or(StoreError::Truncated("leaf page"))?;
            let len =
                bytecode::try_read_varint(buf, pos).ok_or(StoreError::Truncated("leaf length"))?;
            if page >= page_count as u64 {
                return Err(StoreError::Corrupt(format!(
                    "leaf references page {page} of {page_count}"
                )));
            }
            Ok(PagedNodeOwned::Leaf { page: page as u32, len: len as u32 })
        }
        other => Err(StoreError::Corrupt(format!("unknown paged node tag {other}"))),
    }
}

/// A [`BlockSource`] that reads pages of one paged file through a
/// [`BufferPool`]. Lazy leaves hold this behind an `Arc`, so the source
/// (and its file handle) lives exactly as long as any tree still
/// referencing the file.
pub struct PagedSource<E, C>
where
    E: Element + ByteEncode,
    C: BlockIo<E>,
{
    file: PagedFile,
    pool: Arc<BufferPool<C::Block>>,
    /// Per-page "CRC verified" latch: pages are checked on first load
    /// only; later re-loads (after eviction) trust the kernel page
    /// cache / disk to return what was already verified.
    verified: Vec<AtomicBool>,
    _entry: std::marker::PhantomData<fn() -> E>,
}

impl<E, C> PagedSource<E, C>
where
    E: Element + ByteEncode,
    C: BlockIo<E>,
{
    /// The pool this source pages through (for stats).
    pub fn pool(&self) -> &Arc<BufferPool<C::Block>> {
        &self.pool
    }

    /// Reads, verifies (first load only) and decodes page `page`.
    fn fetch(&self, page: u32) -> Result<(Arc<C::Block>, usize), StoreError> {
        let check = !self.verified[page as usize].load(Ordering::Acquire);
        let payload = self.file.read_payload(page, check)?;
        if check {
            self.verified[page as usize].store(true, Ordering::Release);
        }
        let mut pos = 0;
        let block = C::read_block(&payload, &mut pos)?;
        if pos != payload.len() {
            return Err(StoreError::Corrupt("trailing bytes after page payload".into()));
        }
        let bytes = C::heap_bytes(&block) + std::mem::size_of::<C::Block>();
        Ok((Arc::new(block), bytes))
    }
}

impl<E, C> BlockSource<C::Block> for PagedSource<E, C>
where
    E: Element + ByteEncode,
    C: BlockIo<E>,
{
    fn load(&self, page: u32) -> Arc<C::Block> {
        match self.pool.get(page, || self.fetch(page)) {
            Ok(guard) => guard.share(),
            // `BlockSource::load` is infallible by contract: queries
            // have no error channel. A page that was present at open
            // and fails now is an environment failure, not a caller
            // error — surface the typed error's message.
            Err(e) => panic!(
                "paged store {}: page {page} unreadable: {e}",
                self.file.path.display()
            ),
        }
    }
}

/// A paged snapshot opened from disk.
pub struct PagedSnapshot<K, V, C>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    /// The tree. Lazy (pool-backed leaves) when opened with a pool,
    /// fully resident otherwise.
    pub map: PacMap<K, V, NoAug, C>,
    /// Store version the snapshot captures.
    pub version: u64,
}

impl<K, V, C> std::fmt::Debug for PagedSnapshot<K, V, C>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedSnapshot")
            .field("version", &self.version)
            .field("len", &self.map.len())
            .finish()
    }
}

/// Opens the paged snapshot at `path`.
///
/// With `pool: Some`, the open is *lazy*: `O(structure)` I/O now, leaf
/// pages stream through the pool on first access, resident cache bytes
/// bounded by the pool budget. With `pool: None`, every page is read,
/// verified, and decoded eagerly — the resulting tree is bit-identical
/// to one loaded from the classic snapshot format.
///
/// # Errors
///
/// Typed [`StoreError`]s on I/O failure, bad magic/codec/schema, CRC
/// mismatch, or a structurally invalid stream.
pub fn open_paged_file<K, V, C>(
    path: &Path,
    pool: Option<&Arc<BufferPool<C::Block>>>,
) -> Result<PagedSnapshot<K, V, C>, StoreError>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    let (paged, b, version, count, structure) = open_raw(
        path,
        <C as BlockIo<(K, V)>>::CODEC_ID,
        <C as BlockIo<(K, V)>>::CODEC_NAME,
        schema_id::<(K, V)>(),
    )?;
    let page_count = paged.pages.len();
    let mut pos = 0;

    let map = match pool {
        Some(pool) => {
            let source: Arc<PagedSource<(K, V), C>> = Arc::new(PagedSource {
                verified: (0..page_count).map(|_| AtomicBool::new(false)).collect(),
                file: paged,
                pool: Arc::clone(pool),
                _entry: std::marker::PhantomData,
            });
            PacMap::from_paged_stream::<StoreError>(
                b,
                source as Arc<dyn BlockSource<C::Block>>,
                &mut || read_paged_node::<(K, V)>(&structure, &mut pos, page_count),
            )
            .map_err(flatten_build_error)?
        }
        None => PacMap::from_node_stream::<StoreError>(b, &mut || {
            Ok(match read_paged_node::<(K, V)>(&structure, &mut pos, page_count)? {
                PagedNodeOwned::Empty => NodeOwned::Empty,
                PagedNodeOwned::Regular(e) => NodeOwned::Regular(e),
                PagedNodeOwned::Leaf { page, .. } => {
                    let payload = paged.read_payload(page, true)?;
                    let mut bpos = 0;
                    let block = C::read_block(&payload, &mut bpos)?;
                    if bpos != payload.len() {
                        return Err(StoreError::Corrupt(
                            "trailing bytes after page payload".into(),
                        ));
                    }
                    NodeOwned::Flat(block)
                }
            })
        })
        .map_err(flatten_build_error)?,
    };
    if pos != structure.len() {
        return Err(StoreError::Corrupt("trailing bytes after node stream".into()));
    }
    if map.len() != count {
        return Err(StoreError::Corrupt(format!(
            "header counts {count} entries, tree holds {}",
            map.len()
        )));
    }
    Ok(PagedSnapshot { map, version })
}

/// A loaded snapshot chain: the tree, its version, and its recorded
/// block size — or `None` when the directory has no snapshot at all.
pub(crate) type LoadedChain<K, V, C> = Option<(PacMap<K, V, NoAug, C>, u64, usize)>;

/// Loads a store directory's snapshot chain, preferring the paged
/// format: if `paged_file` exists it is the base (opened lazily through
/// `pool` when given, eagerly otherwise), with incremental pages
/// chained on top exactly as [`crate::pagefmt::load_chain`] would.
/// Falls back to the classic `legacy_file` chain when no paged file is
/// present.
///
/// When *both* files exist — a save of one format crashed between
/// writing its file and removing the other's — the newer version wins:
/// that is the save that was acknowledged.
///
/// # Errors
///
/// Everything [`open_paged_file`] and [`crate::pagefmt::load_chain`]
/// can return.
pub(crate) fn load_chain_auto<K, V, C>(
    dir: &Path,
    paged_file: &str,
    legacy_file: &str,
    pool: Option<&Arc<BufferPool<C::Block>>>,
) -> Result<LoadedChain<K, V, C>, StoreError>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    let paged_path = dir.join(paged_file);
    let legacy_path = dir.join(legacy_file);
    let use_paged = match (paged_path.exists(), legacy_path.exists()) {
        (false, _) => false,
        (true, false) => true,
        (true, true) => {
            read_paged_version::<K, V, C>(&paged_path)?
                >= crate::pagefmt::read_snapshot_version(&legacy_path)?
        }
    };
    if !use_paged {
        return crate::pagefmt::load_chain::<PacMap<K, V, NoAug, C>>(dir, legacy_file);
    }
    let snap = open_paged_file::<K, V, C>(&paged_path, pool)?;
    Ok(Some(crate::pagefmt::chain_incrementals(dir, snap.map, snap.version)?))
}

/// Writes a full snapshot of `map` into `dir` in the configured format
/// — paged (`paged_file`) when `paged` is set, classic (`legacy_file`)
/// otherwise — then removes the superseded other-format file and the
/// incremental chain the full page now covers. Returns the page's byte
/// size. Shared by [`crate::PacStore`] and each shard of a
/// [`crate::ShardedStore`].
///
/// A crash between the write and the removals leaves both formats (or
/// stale incrementals) on disk; [`load_chain_auto`] arbitrates by
/// version, and stale incrementals are skipped, so recovery always
/// lands on the state acknowledged here.
///
/// # Errors
///
/// I/O errors.
pub(crate) fn write_full_snapshot<K, V, C>(
    paged: bool,
    dir: &Path,
    paged_file: &str,
    legacy_file: &str,
    map: &PacMap<K, V, NoAug, C>,
    version: u64,
) -> Result<usize, StoreError>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    let bytes = if paged {
        let page = encode_paged(map, version);
        write_file_atomic(&dir.join(paged_file), &page)?;
        remove_file_durable(&dir.join(legacy_file))?;
        page.len()
    } else {
        let page = crate::pagefmt::encode_snapshot(map, version);
        write_file_atomic(&dir.join(legacy_file), &page)?;
        remove_file_durable(&dir.join(paged_file))?;
        page.len()
    };
    crate::pagefmt::remove_incr_files(dir)?;
    Ok(bytes)
}

/// Removes `path` and fsyncs its parent directory, so the removal is
/// as durable as the atomic write it pairs with (idempotent; a missing
/// file is fine).
fn remove_file_durable(path: &Path) -> Result<(), StoreError> {
    match std::fs::remove_file(path) {
        Ok(()) => {
            if let Some(parent) = path.parent() {
                crate::pagefmt::fsync_dir(parent)?;
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Reads only the version field of the paged snapshot at `path`.
///
/// # Errors
///
/// Same conditions as [`open_paged_file`], minus structure validation.
pub fn read_paged_version<K, V, C>(path: &Path) -> Result<u64, StoreError>
where
    K: ScalarKey + ByteEncode,
    V: Element + ByteEncode,
    C: BlockIo<(K, V)>,
{
    let (_, _, version, _, _) = open_raw(
        path,
        <C as BlockIo<(K, V)>>::CODEC_ID,
        <C as BlockIo<(K, V)>>::CODEC_NAME,
        schema_id::<(K, V)>(),
    )?;
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecs::RawCodec;
    use tempdir::TempDir;

    type Map = PacMap<u64, u64, NoAug, RawCodec>;

    fn sample(n: u64) -> Map {
        Map::from_sorted_pairs(8, &(0..n).map(|i| (i * 2, i)).collect::<Vec<_>>())
    }

    /// A throwaway directory under the target dir (no external tempdir
    /// crate; mirrors the helper used by the store's other tests).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDir(PathBuf);

        impl TempDir {
            pub fn new(tag: &str) -> std::io::Result<TempDir> {
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let path = std::env::temp_dir().join(format!(
                    "pacpaged-{tag}-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path)?;
                Ok(TempDir(path))
            }

            pub fn path(&self) -> &std::path::Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn roundtrip_eager_matches_original() {
        let dir = TempDir::new("eager").unwrap();
        let path = dir.path().join("snap.pgf");
        for n in [0u64, 1, 7, 100, 5000] {
            let map = sample(n);
            write_paged_file(&path, &map, 42).unwrap();
            let snap = open_paged_file::<u64, u64, RawCodec>(&path, None).unwrap();
            assert_eq!(snap.version, 42);
            assert!(snap.map.iter().eq(map.iter()), "n = {n}");
            snap.map.check_invariants().unwrap();
        }
    }

    #[test]
    fn lazy_open_reads_no_pages_and_bounds_residency() {
        let dir = TempDir::new("lazy").unwrap();
        let path = dir.path().join("snap.pgf");
        let map = sample(20_000);
        write_paged_file(&path, &map, 7).unwrap();

        let pool = BufferPool::new(8);
        let snap = open_paged_file::<u64, u64, RawCodec>(&path, Some(&pool)).unwrap();
        assert_eq!(snap.version, 7);
        assert_eq!(snap.map.len(), map.len());
        // Open touched no data pages at all.
        assert_eq!(pool.stats().misses, 0);

        // A point query pages in exactly one leaf.
        assert_eq!(snap.map.find(&2000), Some(1000));
        assert_eq!(pool.stats().misses, 1);

        // A full scan streams every page but residency stays capped.
        assert!(snap.map.iter().eq(map.iter()));
        let s = pool.stats();
        assert!(s.resident_pages <= 8, "resident {} pages", s.resident_pages);
        assert!(s.evictions > 0);
    }

    #[test]
    fn lazy_and_eager_agree() {
        let dir = TempDir::new("agree").unwrap();
        let path = dir.path().join("snap.pgf");
        let map = sample(3000);
        write_paged_file(&path, &map, 1).unwrap();
        let pool = BufferPool::new(4);
        let lazy = open_paged_file::<u64, u64, RawCodec>(&path, Some(&pool)).unwrap();
        let eager = open_paged_file::<u64, u64, RawCodec>(&path, None).unwrap();
        assert!(lazy.map.iter().eq(eager.map.iter()));
        assert_eq!(lazy.map.range_entries(&100, &900), eager.map.range_entries(&100, &900));
        lazy.map.check_invariants().unwrap();
    }

    #[test]
    fn corrupt_page_fails_closed() {
        let dir = TempDir::new("corrupt").unwrap();
        let path = dir.path().join("snap.pgf");
        let map = sample(2000);
        write_paged_file(&path, &map, 1).unwrap();

        // Flip one byte in the middle of the data region.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        // The eager open verifies every page and must reject it; a
        // header/footer hit is also a typed error, never a mis-decode.
        let err = open_paged_file::<u64, u64, RawCodec>(&path, None).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. } | StoreError::Corrupt(_)
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn truncated_tail_is_typed() {
        let dir = TempDir::new("trunc").unwrap();
        let path = dir.path().join("snap.pgf");
        write_paged_file(&path, &sample(100), 1).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..5]).unwrap();
        assert!(matches!(
            open_paged_file::<u64, u64, RawCodec>(&path, None),
            Err(StoreError::Truncated(_))
        ));
    }

    #[test]
    fn version_probe_reads_header_only() {
        let dir = TempDir::new("probe").unwrap();
        let path = dir.path().join("snap.pgf");
        write_paged_file(&path, &sample(500), 99).unwrap();
        assert_eq!(read_paged_version::<u64, u64, RawCodec>(&path).unwrap(), 99);
    }

    #[test]
    fn schema_mismatch_is_typed() {
        let dir = TempDir::new("schema").unwrap();
        let path = dir.path().join("snap.pgf");
        write_paged_file(&path, &sample(50), 1).unwrap();
        assert!(matches!(
            open_paged_file::<u64, u32, RawCodec>(&path, None),
            Err(StoreError::SchemaMismatch { .. })
        ));
    }
}
