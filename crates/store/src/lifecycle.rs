//! Version lifecycle: retention policy, pin registry, and the stats
//! counters behind GC and log compaction.
//!
//! MVCC snapshots are cheap to *create* — a PaC-tree clone is one
//! refcount bump — but history retained forever pins every subtree any
//! old version ever referenced. The lifecycle subsystem reclaims that
//! space along two axes:
//!
//! * **Version GC** ([`crate::PacStore::gc`] /
//!   [`crate::ShardedStore::gc`]): drops retained history entries that
//!   are neither within the [`RetentionPolicy`]'s `keep_last` window
//!   nor pinned in the [`VersionRegistry`]. Dropping a version is just
//!   dropping its root `Arc`; the existing refcount machinery frees
//!   exactly the subtrees no surviving version shares, which the
//!   [`cpam::stats`] `nodes_dropped` counter makes observable.
//! * **Log compaction** ([`crate::PacStore::compact`] /
//!   [`crate::ShardedStore::compact`]): checkpoint-then-truncate — the
//!   committed version is persisted (incrementally when a previous
//!   checkpoint is pinned), then the WAL prefix it covers is dropped,
//!   bounding log growth under sustained writes.
//!
//! Safety argument: a pinned version's root keeps every node it
//! references at refcount ≥ 1 *and* marks them shared (refcount ≥ 2
//! for anything also in the current version), so neither GC of other
//! versions nor the in-place-reuse write path can free or mutate a
//! pinned snapshot's data out from under a reader.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::Mutex;

/// Which retained versions GC may drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep this many most-recent history entries (the current version
    /// is always kept regardless). Pinned versions are kept on top of
    /// this window.
    pub keep_last: usize,
}

impl RetentionPolicy {
    /// Keep the `k` most recent versions plus everything pinned.
    pub fn keep_last(k: usize) -> Self {
        RetentionPolicy { keep_last: k }
    }
}

impl Default for RetentionPolicy {
    /// Keep only the current version (plus pins).
    fn default() -> Self {
        RetentionPolicy { keep_last: 1 }
    }
}

/// What one GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// History entries dropped by this pass.
    pub versions_dropped: usize,
    /// History entries retained (window + pins + current).
    pub versions_retained: usize,
    /// Tree nodes freed while dropping those entries, measured as the
    /// [`cpam::stats`] `nodes_dropped` delta around the drop. Exact
    /// when no other thread frees trees concurrently; an upper bound
    /// otherwise (the counters are process-global).
    pub nodes_reclaimed: u64,
}

/// Cumulative lifecycle counters for one store handle, read via
/// [`crate::PacStore::lifecycle_stats`] /
/// [`crate::ShardedStore::lifecycle_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// GC passes run.
    pub gc_runs: u64,
    /// History entries dropped across all GC passes.
    pub versions_dropped: u64,
    /// Nodes reclaimed across all GC passes (see
    /// [`GcStats::nodes_reclaimed`] for accuracy).
    pub nodes_reclaimed: u64,
    /// Full snapshot pages written.
    pub full_saves: u64,
    /// Incremental snapshot pages written.
    pub incremental_saves: u64,
    /// Compaction cycles completed.
    pub compactions: u64,
    /// Cumulative bytes of full pages written.
    pub full_page_bytes: u64,
    /// Cumulative bytes of incremental pages written.
    pub incremental_page_bytes: u64,
    /// Cumulative WAL bytes dropped by checkpoint truncation.
    pub wal_bytes_truncated: u64,
}

impl LifecycleStats {
    /// Counter increments between `earlier` and `self`, where both were
    /// read from the same store handle and `earlier` was taken first.
    /// Same snapshot-vs-delta idiom as [`cpam::stats::OpCounts::delta`].
    pub fn delta(&self, earlier: LifecycleStats) -> LifecycleStats {
        LifecycleStats {
            gc_runs: self.gc_runs - earlier.gc_runs,
            versions_dropped: self.versions_dropped - earlier.versions_dropped,
            nodes_reclaimed: self.nodes_reclaimed - earlier.nodes_reclaimed,
            full_saves: self.full_saves - earlier.full_saves,
            incremental_saves: self.incremental_saves - earlier.incremental_saves,
            compactions: self.compactions - earlier.compactions,
            full_page_bytes: self.full_page_bytes - earlier.full_page_bytes,
            incremental_page_bytes: self.incremental_page_bytes - earlier.incremental_page_bytes,
            wal_bytes_truncated: self.wal_bytes_truncated - earlier.wal_bytes_truncated,
        }
    }
}

/// Tracks explicitly pinned versions. Pins are counted, so independent
/// readers can pin the same version and each unpin releases one hold;
/// the version stays GC-exempt until the count reaches zero.
///
/// The registry is bookkeeping only — the memory safety of a pinned
/// snapshot comes from the `Arc` the history entry holds. What a pin
/// buys is *retention*: GC and commit-time history eviction skip
/// pinned versions, so [`crate::PacStore::snapshot_at`] keeps working
/// for them.
pub struct VersionRegistry {
    pins: Mutex<HashMap<u64, usize>>,
}

impl Default for VersionRegistry {
    fn default() -> Self {
        VersionRegistry {
            pins: Mutex::new(HashMap::new()),
        }
    }
}

impl std::fmt::Debug for VersionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionRegistry")
            .field("pins", &*self.pins.lock())
            .finish()
    }
}

impl VersionRegistry {
    /// Adds one pin on `version`.
    pub fn pin(&self, version: u64) {
        *self.pins.lock().entry(version).or_insert(0) += 1;
    }

    /// Releases one pin on `version`; returns `false` if it held none.
    pub fn unpin(&self, version: u64) -> bool {
        let mut pins = self.pins.lock();
        match pins.get_mut(&version) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                pins.remove(&version);
                true
            }
            None => false,
        }
    }

    /// Whether `version` currently holds any pin.
    pub fn is_pinned(&self, version: u64) -> bool {
        self.pins.lock().contains_key(&version)
    }

    /// The set of pinned versions, for a retention decision.
    pub fn pinned(&self) -> HashSet<u64> {
        self.pins.lock().keys().copied().collect()
    }
}

/// Commit-time history eviction, pin-aware: pops the *oldest unpinned*
/// entries until at most `limit` remain or only pinned entries (plus
/// the newest) are left. With pins held, history may exceed `limit` —
/// that is the point of a pin.
pub(crate) fn evict_history<T>(
    history: &mut VecDeque<T>,
    limit: usize,
    version_of: impl Fn(&T) -> u64,
    registry: &VersionRegistry,
) {
    let limit = limit.max(1);
    while history.len() > limit {
        let pinned = registry.pinned();
        // Never evict the newest entry (the current version).
        let victim = history
            .iter()
            .take(history.len() - 1)
            .position(|e| !pinned.contains(&version_of(e)));
        match victim {
            Some(i) => {
                history.remove(i);
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_are_counted() {
        let r = VersionRegistry::default();
        r.pin(7);
        r.pin(7);
        assert!(r.is_pinned(7));
        assert!(r.unpin(7));
        assert!(r.is_pinned(7));
        assert!(r.unpin(7));
        assert!(!r.is_pinned(7));
        assert!(!r.unpin(7));
    }

    #[test]
    fn eviction_skips_pinned_and_keeps_newest() {
        let r = VersionRegistry::default();
        r.pin(2);
        let mut h: VecDeque<u64> = (1..=6).collect();
        evict_history(&mut h, 2, |&v| v, &r);
        assert_eq!(h, VecDeque::from(vec![2, 6]));

        // All pinned but the newest: nothing below the limit to evict.
        let r = VersionRegistry::default();
        for v in 1..=3 {
            r.pin(v);
        }
        let mut h: VecDeque<u64> = (1..=4).collect();
        evict_history(&mut h, 1, |&v| v, &r);
        assert_eq!(h, VecDeque::from(vec![1, 2, 3, 4]));
    }
}
