//! Version lifecycle: retention policy, pin registry, and the stats
//! counters behind GC and log compaction.
//!
//! MVCC snapshots are cheap to *create* — a PaC-tree clone is one
//! refcount bump — but history retained forever pins every subtree any
//! old version ever referenced. The lifecycle subsystem reclaims that
//! space along two axes:
//!
//! * **Version GC** ([`crate::PacStore::gc`] /
//!   [`crate::ShardedStore::gc`]): drops retained history entries that
//!   are neither within the [`RetentionPolicy`]'s `keep_last` window
//!   nor pinned in the [`VersionRegistry`]. Dropping a version is just
//!   dropping its root `Arc`; the existing refcount machinery frees
//!   exactly the subtrees no surviving version shares, which the
//!   [`cpam::stats`] `nodes_dropped` counter makes observable.
//! * **Log compaction** ([`crate::PacStore::compact`] /
//!   [`crate::ShardedStore::compact`]): checkpoint-then-truncate — the
//!   committed version is persisted (incrementally when a previous
//!   checkpoint is pinned), then the WAL prefix it covers is dropped,
//!   bounding log growth under sustained writes.
//!
//! Safety argument: a pinned version's root keeps every node it
//! references at refcount ≥ 1 *and* marks them shared (refcount ≥ 2
//! for anything also in the current version), so neither GC of other
//! versions nor the in-place-reuse write path can free or mutate a
//! pinned snapshot's data out from under a reader.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;

use codecs::bytecode;
use parking_lot::Mutex;

use crate::checksum::crc32;
use crate::error::StoreError;
use crate::pagefmt;

/// Which retained versions GC may drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep this many most-recent history entries (the current version
    /// is always kept regardless). Pinned versions are kept on top of
    /// this window.
    pub keep_last: usize,
}

impl RetentionPolicy {
    /// Keep the `k` most recent versions plus everything pinned.
    pub fn keep_last(k: usize) -> Self {
        RetentionPolicy { keep_last: k }
    }
}

impl Default for RetentionPolicy {
    /// Keep only the current version (plus pins).
    fn default() -> Self {
        RetentionPolicy { keep_last: 1 }
    }
}

/// What one GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// History entries dropped by this pass.
    pub versions_dropped: usize,
    /// History entries retained (window + pins + current).
    pub versions_retained: usize,
    /// Tree nodes freed while dropping those entries, measured as the
    /// [`cpam::stats`] `nodes_dropped` delta around the drop. Exact
    /// when no other thread frees trees concurrently; an upper bound
    /// otherwise (the counters are process-global).
    pub nodes_reclaimed: u64,
}

/// Cumulative lifecycle counters for one store handle, read via
/// [`crate::PacStore::lifecycle_stats`] /
/// [`crate::ShardedStore::lifecycle_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// GC passes run.
    pub gc_runs: u64,
    /// History entries dropped across all GC passes.
    pub versions_dropped: u64,
    /// Nodes reclaimed across all GC passes (see
    /// [`GcStats::nodes_reclaimed`] for accuracy).
    pub nodes_reclaimed: u64,
    /// Full snapshot pages written.
    pub full_saves: u64,
    /// Incremental snapshot pages written.
    pub incremental_saves: u64,
    /// Compaction cycles completed.
    pub compactions: u64,
    /// Cumulative bytes of full pages written.
    pub full_page_bytes: u64,
    /// Cumulative bytes of incremental pages written.
    pub incremental_page_bytes: u64,
    /// Cumulative WAL bytes dropped by checkpoint truncation.
    pub wal_bytes_truncated: u64,
}

impl LifecycleStats {
    /// Counter increments between `earlier` and `self`, where both were
    /// read from the same store handle and `earlier` was taken first.
    /// Same snapshot-vs-delta idiom as [`cpam::stats::OpCounts::delta`].
    pub fn delta(&self, earlier: LifecycleStats) -> LifecycleStats {
        LifecycleStats {
            gc_runs: self.gc_runs - earlier.gc_runs,
            versions_dropped: self.versions_dropped - earlier.versions_dropped,
            nodes_reclaimed: self.nodes_reclaimed - earlier.nodes_reclaimed,
            full_saves: self.full_saves - earlier.full_saves,
            incremental_saves: self.incremental_saves - earlier.incremental_saves,
            compactions: self.compactions - earlier.compactions,
            full_page_bytes: self.full_page_bytes - earlier.full_page_bytes,
            incremental_page_bytes: self.incremental_page_bytes - earlier.incremental_page_bytes,
            wal_bytes_truncated: self.wal_bytes_truncated - earlier.wal_bytes_truncated,
        }
    }
}

/// Tracks explicitly pinned versions. Pins are counted, so independent
/// readers can pin the same version and each unpin releases one hold;
/// the version stays GC-exempt until the count reaches zero.
///
/// The registry is bookkeeping only — the memory safety of a pinned
/// snapshot comes from the `Arc` the history entry holds. What a pin
/// buys is *retention*: GC and commit-time history eviction skip
/// pinned versions, so [`crate::PacStore::snapshot_at`] keeps working
/// for them.
pub struct VersionRegistry {
    pins: Mutex<HashMap<u64, usize>>,
}

impl Default for VersionRegistry {
    fn default() -> Self {
        VersionRegistry {
            pins: Mutex::new(HashMap::new()),
        }
    }
}

impl std::fmt::Debug for VersionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionRegistry")
            .field("pins", &*self.pins.lock())
            .finish()
    }
}

impl VersionRegistry {
    /// A registry seeded with pins loaded from disk (see
    /// [`load_pins`]).
    pub(crate) fn from_pins(pins: HashMap<u64, usize>) -> Self {
        VersionRegistry { pins: Mutex::new(pins) }
    }

    /// The full pin table `(version, count)`, ascending by version —
    /// the payload [`persist_pins`] writes.
    pub(crate) fn dump(&self) -> Vec<(u64, usize)> {
        let mut out: Vec<(u64, usize)> =
            self.pins.lock().iter().map(|(&v, &n)| (v, n)).collect();
        out.sort_unstable();
        out
    }

    /// Adds one pin on `version`.
    pub fn pin(&self, version: u64) {
        *self.pins.lock().entry(version).or_insert(0) += 1;
    }

    /// Releases one pin on `version`; returns `false` if it held none.
    pub fn unpin(&self, version: u64) -> bool {
        let mut pins = self.pins.lock();
        match pins.get_mut(&version) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                pins.remove(&version);
                true
            }
            None => false,
        }
    }

    /// Whether `version` currently holds any pin.
    pub fn is_pinned(&self, version: u64) -> bool {
        self.pins.lock().contains_key(&version)
    }

    /// The set of pinned versions, for a retention decision.
    pub fn pinned(&self) -> HashSet<u64> {
        self.pins.lock().keys().copied().collect()
    }
}

/// Commit-time history eviction, pin-aware: pops the *oldest unpinned*
/// entries until at most `limit` remain or only pinned entries (plus
/// the newest) are left. With pins held, history may exceed `limit` —
/// that is the point of a pin.
pub(crate) fn evict_history<T>(
    history: &mut VecDeque<T>,
    limit: usize,
    version_of: impl Fn(&T) -> u64,
    registry: &VersionRegistry,
) {
    let limit = limit.max(1);
    while history.len() > limit {
        let pinned = registry.pinned();
        // Never evict the newest entry (the current version).
        let victim = history
            .iter()
            .take(history.len() - 1)
            .position(|e| !pinned.contains(&version_of(e)));
        match victim {
            Some(i) => {
                history.remove(i);
            }
            None => break,
        }
    }
}

// ----- Pin persistence ----------------------------------------------
//
// Pins promise retention, and retention is only meaningful if it
// survives a restart: a reader that pinned version 7 before the
// process died expects `snapshot_at(7)` to still work after reopen
// (provided the WAL still reaches it). The pin table is therefore
// written to `pins.pac` in the store directory on every pin/unpin,
// atomically (temp + rename, like snapshot pages), and loaded *before*
// WAL replay so replay-time history eviction honors it.

/// File holding the durable pin table, at the root of a store (or
/// sharded store) directory.
pub(crate) const PINS_FILE: &str = "pins.pac";

/// `pins.pac` layout: this magic, varint entry count, then per entry
/// `varint version ++ varint pin-count`, then CRC-32 (LE) of all
/// preceding bytes.
const PINS_MAGIC: &[u8; 8] = b"PACPINS1";

fn encode_pins(pins: &[(u64, usize)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(PINS_MAGIC.len() + 4 + pins.len() * 10);
    out.extend_from_slice(PINS_MAGIC);
    bytecode::write_varint(pins.len() as u64, &mut out);
    for &(version, count) in pins {
        bytecode::write_varint(version, &mut out);
        bytecode::write_varint(count as u64, &mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_pins(bytes: &[u8]) -> Result<HashMap<u64, usize>, StoreError> {
    let Some(rest) = bytes.strip_prefix(PINS_MAGIC) else {
        return Err(StoreError::BadMagic);
    };
    if rest.len() < 4 {
        return Err(StoreError::Truncated("pin table checksum"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let body = &body[PINS_MAGIC.len()..];
    let mut pos = 0usize;
    let count = bytecode::try_read_varint(body, &mut pos)
        .ok_or(StoreError::Truncated("pin table entry count"))?;
    // An entry is at least two bytes; a count past that is hostile
    // (same in-u64-domain check as the WAL op counts).
    if count > body.len() as u64 {
        return Err(StoreError::Corrupt(format!(
            "pin table claims {count} entries in {} bytes",
            body.len()
        )));
    }
    let mut pins = HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let version = bytecode::try_read_varint(body, &mut pos)
            .ok_or(StoreError::Truncated("pin table version"))?;
        let n = bytecode::try_read_varint(body, &mut pos)
            .ok_or(StoreError::Truncated("pin table count"))?;
        let n = usize::try_from(n)
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| StoreError::Corrupt(format!("pin count {n} for version {version}")))?;
        if pins.insert(version, n).is_some() {
            return Err(StoreError::Corrupt(format!("duplicate pin entry for version {version}")));
        }
    }
    if pos != body.len() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after pin table",
            body.len() - pos
        )));
    }
    Ok(pins)
}

/// Loads the pin table from `dir`, an empty table when no `pins.pac`
/// exists yet.
///
/// # Errors
///
/// I/O errors; [`StoreError::BadMagic`] /
/// [`StoreError::ChecksumMismatch`] / [`StoreError::Truncated`] /
/// [`StoreError::Corrupt`] for a clobbered file.
pub(crate) fn load_pins(dir: &Path) -> Result<HashMap<u64, usize>, StoreError> {
    let path = dir.join(PINS_FILE);
    if !path.exists() {
        return Ok(HashMap::new());
    }
    decode_pins(&std::fs::read(&path)?)
}

/// Durably rewrites `dir`'s pin table from `registry`'s current state
/// (atomic temp-then-rename; see [`pagefmt::write_file_atomic`]).
///
/// # Errors
///
/// Any underlying I/O error.
pub(crate) fn persist_pins(dir: &Path, registry: &VersionRegistry) -> Result<(), StoreError> {
    pagefmt::write_file_atomic(&dir.join(PINS_FILE), &encode_pins(&registry.dump()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_are_counted() {
        let r = VersionRegistry::default();
        r.pin(7);
        r.pin(7);
        assert!(r.is_pinned(7));
        assert!(r.unpin(7));
        assert!(r.is_pinned(7));
        assert!(r.unpin(7));
        assert!(!r.is_pinned(7));
        assert!(!r.unpin(7));
    }

    #[test]
    fn eviction_skips_pinned_and_keeps_newest() {
        let r = VersionRegistry::default();
        r.pin(2);
        let mut h: VecDeque<u64> = (1..=6).collect();
        evict_history(&mut h, 2, |&v| v, &r);
        assert_eq!(h, VecDeque::from(vec![2, 6]));

        // All pinned but the newest: nothing below the limit to evict.
        let r = VersionRegistry::default();
        for v in 1..=3 {
            r.pin(v);
        }
        let mut h: VecDeque<u64> = (1..=4).collect();
        evict_history(&mut h, 1, |&v| v, &r);
        assert_eq!(h, VecDeque::from(vec![1, 2, 3, 4]));
    }

    #[test]
    fn pin_table_roundtrips() {
        let r = VersionRegistry::default();
        r.pin(3);
        r.pin(3);
        r.pin(9);
        let decoded = decode_pins(&encode_pins(&r.dump())).unwrap();
        assert_eq!(decoded, HashMap::from([(3, 2), (9, 1)]));
        // Empty table roundtrips too (the post-last-unpin state).
        assert!(decode_pins(&encode_pins(&[])).unwrap().is_empty());
    }

    #[test]
    fn clobbered_pin_tables_are_typed_errors() {
        let good = encode_pins(&[(5, 1), (7, 2)]);

        assert!(matches!(decode_pins(b"NOTPINS!rest"), Err(StoreError::BadMagic)));
        assert!(matches!(
            decode_pins(&good[..good.len() - 2]),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        let mut flipped = good.clone();
        flipped[10] ^= 0x40;
        assert!(matches!(decode_pins(&flipped), Err(StoreError::ChecksumMismatch { .. })));

        // CRC-valid but hostile: entry count far past the byte budget.
        let mut hostile = Vec::from(*PINS_MAGIC);
        bytecode::write_varint(1 << 33, &mut hostile);
        let crc = crc32(&hostile);
        hostile.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_pins(&hostile), Err(StoreError::Corrupt(_))));

        // CRC-valid zero pin count: structurally impossible.
        let mut zero = Vec::from(*PINS_MAGIC);
        bytecode::write_varint(1, &mut zero);
        bytecode::write_varint(4, &mut zero);
        bytecode::write_varint(0, &mut zero);
        let crc = crc32(&zero);
        zero.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_pins(&zero), Err(StoreError::Corrupt(_))));
    }
}
