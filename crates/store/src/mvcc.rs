//! The versioned store: multi-version concurrency control with group
//! commit, built directly on [`PacMap`]'s O(1) functional snapshots.
//!
//! * **Writers** submit batches of [`Op`]s to [`PacStore::commit`]. The
//!   first writer to arrive becomes the group *leader*: it drains every
//!   batch queued so far, applies them in submission order with one
//!   parallel batch insert/delete, appends one record to the
//!   write-ahead log, and publishes the result as a single new
//!   immutable version. Followers just wait for their ticket — under
//!   contention, many batches ride one tree update and one log write.
//! * **Readers** never block on writers: pinning a version is cloning a
//!   `PacMap` root (`Arc` bump) under a briefly-held lock. A pinned
//!   [`Snapshot`] stays alive and consistent no matter how many
//!   versions are committed — or evicted from history — after it.
//! * **Versions** are retained in a bounded history for time-travel
//!   reads ([`PacStore::snapshot_at`]); structural sharing between
//!   consecutive versions makes this cheap (`O(log n)` fresh nodes per
//!   version, the paper's path-copying bound).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use codecs::{BlockIo, ByteEncode, Codec, RawCodec};
use cpam::{Element, NoAug, PacMap, ScalarKey, DEFAULT_B};
use parking_lot::{Condvar, Mutex};

use crate::error::StoreError;
use crate::lifecycle::{self, GcStats, LifecycleStats, RetentionPolicy, VersionRegistry};
use crate::metrics::StoreMetrics;
use crate::pagefmt;
use crate::wal;

/// Key bound for [`PacStore`]: ordered (a PaC-tree key) and
/// byte-encodable (for the log and snapshot formats).
pub trait StoreKey: ScalarKey + ByteEncode {}
impl<T: ScalarKey + ByteEncode> StoreKey for T {}

/// Value bound for [`PacStore`]: storable and byte-encodable.
pub trait StoreValue: Element + ByteEncode {}
impl<T: Element + ByteEncode> StoreValue for T {}

/// One write operation in a commit batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op<K, V> {
    /// Insert or overwrite `key -> value`.
    Put(K, V),
    /// Remove `key` (a no-op if absent).
    Delete(K),
}

/// Tunables for a [`PacStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Leaf block size of the state tree (paper default 128). Ignored
    /// when opening an existing snapshot, which records its own.
    pub block_size: usize,
    /// How many recent versions [`PacStore::snapshot_at`] can reach.
    /// Pinned [`Snapshot`]s outlive eviction.
    pub history_limit: usize,
    /// If true, a torn or corrupt log tail fails [`PacStore::open_with`]
    /// instead of being truncated away.
    pub strict_log: bool,
    /// If true, every commit group is `fsync`ed (`sync_data`) to disk
    /// before it is acknowledged — surviving power loss, at a large
    /// per-group latency cost. When false (default), log records are
    /// flushed to the OS only: they survive a process crash but not a
    /// machine crash.
    pub fsync_commits: bool,
    /// `Some(n)`: saves write the *paged* snapshot format and opens are
    /// lazy — `O(structure)` I/O up front, leaf pages streamed through
    /// an `n`-page [`crate::BufferPool`] on first access, resident
    /// cache bytes bounded by the budget (out-of-core operation).
    /// `None` (default): the classic fully-resident format and
    /// behavior, bit for bit.
    ///
    /// `Default::default()` seeds this from the `PAC_POOL_PAGES`
    /// environment variable when set to a positive integer — CI runs
    /// the store suite under `PAC_POOL_PAGES=8` to put forced-eviction
    /// paging behind every test that doesn't pin a format explicitly.
    pub pool_pages: Option<usize>,
}

/// `PAC_POOL_PAGES` as a pool budget: a positive integer enables the
/// paged format with that many pages; unset/invalid/zero means `None`.
fn pool_pages_from_env() -> Option<usize> {
    std::env::var("PAC_POOL_PAGES").ok()?.trim().parse().ok().filter(|&n: &usize| n > 0)
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            block_size: DEFAULT_B,
            history_limit: 64,
            strict_log: false,
            fsync_commits: false,
            pool_pages: pool_pages_from_env(),
        }
    }
}

/// File name of the snapshot page inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pac";
/// File name of the *paged* snapshot inside a store directory, written
/// instead of [`SNAPSHOT_FILE`] when [`StoreOptions::pool_pages`] is
/// set. Opens prefer it when present (newest version wins if both
/// formats survive a crashed save).
pub const PAGED_FILE: &str = "snapshot.pgf";
/// Incremental chains longer than this are collapsed into a full page
/// by [`PacStore::compact`]: each link costs a decode pass at `open`,
/// and past this depth the cumulative incremental bytes approach a
/// full page anyway.
pub(crate) const MAX_INCR_CHAIN: usize = 16;
/// File name of the append-only batch log inside a store directory.
pub const LOG_FILE: &str = "wal.pac";
/// File name of the advisory lock inside a store directory: held for a
/// handle's lifetime so two handles (or processes) can never interleave
/// versions in one log.
pub const LOCK_FILE: &str = "lock.pac";

/// An immutable view of one store version, pinned for as long as it
/// lives. Obtained from [`PacStore::snapshot`] / [`PacStore::snapshot_at`].
pub struct Snapshot<K, V, C = RawCodec>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    version: u64,
    map: PacMap<K, V, NoAug, C>,
}

impl<K, V, C> Clone for Snapshot<K, V, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    fn clone(&self) -> Self {
        Snapshot {
            version: self.version,
            map: self.map.clone(),
        }
    }
}

impl<K, V, C> Snapshot<K, V, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    /// The version this snapshot pinned.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying map, for the full query interface (ranges,
    /// map-reduce, iteration, ...).
    pub fn map(&self) -> &PacMap<K, V, NoAug, C> {
        &self.map
    }

    /// The value under `k` at this version.
    pub fn get(&self, k: &K) -> Option<V> {
        self.map.find(k)
    }

    /// True if `k` exists at this version.
    pub fn contains_key(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Number of entries at this version.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if this version is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<K, V, C> std::fmt::Debug for Snapshot<K, V, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("len", &self.len())
            .finish()
    }
}

struct State<K, V, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    version: u64,
    map: PacMap<K, V, NoAug, C>,
    /// Recent `(version, map)` pairs, oldest first; always contains the
    /// current version as its back element.
    history: VecDeque<(u64, PacMap<K, V, NoAug, C>)>,
}

/// The last *persisted* version: its in-memory root is kept pinned so
/// the next incremental save can detect still-shared subtrees by `Arc`
/// identity (a pinned root keeps its nodes at refcount ≥ 2, which also
/// bars the in-place-reuse write path from mutating them — see
/// [`cpam::PacMap::visit_nodes_diff`]).
struct Checkpoint<K, V, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    version: u64,
    map: PacMap<K, V, NoAug, C>,
    /// Incremental pages on disk after the full page; bounds
    /// [`PacStore::compact`]'s full-vs-incremental choice.
    chain_len: usize,
}

struct CommitQueue<K, V> {
    pending: Vec<(u64, Vec<Op<K, V>>)>,
    next_ticket: u64,
    results: HashMap<u64, Result<u64, String>>,
    leader_running: bool,
}

/// The batch log handle. `Poisoned` means an append failure could not
/// be rolled back: the stranded partial record would swallow every
/// later record at replay, so commits are refused until `save()`
/// truncates the log and restores `Active`.
enum LogState {
    /// In-memory store: nothing to log.
    None,
    /// Healthy log, appends allowed.
    Active(File),
    /// Unrolled-back append failure; the file is kept so `save()` can
    /// reset and heal it.
    Poisoned(File),
}

struct Inner<K, V, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    opts: StoreOptions,
    dir: Option<PathBuf>,
    /// Held for the lifetime of this store's handles; the OS releases
    /// the advisory lock when the file closes, even on a crash.
    _dir_lock: Option<File>,
    /// Log handle. Lock order: `log` before `state`; leaders hold it
    /// across append *and* publish, so under this lock every logged
    /// record's version is `<=` the published version — which is what
    /// makes [`PacStore::save`]'s log reset safe.
    log: Mutex<LogState>,
    state: Mutex<State<K, V, C>>,
    commit: Mutex<CommitQueue<K, V>>,
    commit_cv: Condvar,
    /// Serializes `save` / `save_incremental` / `compact` against each
    /// other (taken before `log`), so the checkpoint pin and the pages
    /// on disk can never interleave.
    checkpoint_lock: Mutex<()>,
    /// The pinned last checkpoint; `None` until the first full save.
    /// Taken under `log` (after `state`) where both are held.
    checkpoint: Mutex<Option<Checkpoint<K, V, C>>>,
    /// Explicitly pinned (GC-exempt) versions.
    registry: VersionRegistry,
    lifecycle: Mutex<LifecycleStats>,
    /// Pre-resolved observability handles (see [`crate::metrics`]); hot
    /// paths record via relaxed atomics only.
    metrics: Arc<StoreMetrics>,
    /// The page cache behind lazy (paged) opens; `Some` exactly when
    /// [`StoreOptions::pool_pages`] is set on a durable store. Every
    /// paged open of this store streams through this one pool.
    pool: Option<Arc<crate::pool::BufferPool<C::Block>>>,
}

/// A versioned, persistent key-value store whose state is a [`PacMap`].
///
/// Handles are cheap to clone and share one store; all methods take
/// `&self`. See the [crate docs](crate) for an end-to-end example.
pub struct PacStore<K, V, C = RawCodec>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    inner: Arc<Inner<K, V, C>>,
}

impl<K, V, C> Clone for PacStore<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn clone(&self) -> Self {
        PacStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K, V, C> std::fmt::Debug for PacStore<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.state.lock();
        f.debug_struct("PacStore")
            .field("version", &s.version)
            .field("len", &s.map.len())
            .field("dir", &self.inner.dir)
            .finish()
    }
}

/// Applies a batch to a map: collapses to last-op-wins per key (ops are
/// in submission order), then one parallel batch insert plus one batch
/// delete. Used identically by commit and by log replay — and by each
/// shard of a [`crate::ShardedStore`] — so a replayed store converges
/// to the same state.
///
/// Consumes the working map: the group leader hands over its private
/// clone, so the batch insert frees or reuses whatever spine nodes the
/// leader exclusively owns, and the batch delete consumes the insert's
/// freshly built output — whose nodes are uniquely owned by
/// construction and are therefore rebuilt *in place* (cpam's refcount-1
/// fast path). No snapshot can pin the working tree mid-commit: readers
/// only ever pin published versions under the state lock.
pub(crate) fn apply_ops<K, V, C>(
    map: PacMap<K, V, NoAug, C>,
    ops: impl IntoIterator<Item = Op<K, V>>,
) -> PacMap<K, V, NoAug, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    let mut effects: BTreeMap<K, Option<V>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                effects.insert(k, Some(v));
            }
            Op::Delete(k) => {
                effects.insert(k, None);
            }
        }
    }
    let mut puts = Vec::new();
    let mut dels = Vec::new();
    for (k, v) in effects {
        match v {
            Some(v) => puts.push((k, v)),
            None => dels.push(k),
        }
    }
    let mut out = map;
    if !puts.is_empty() {
        out = out.multi_insert_owned(puts);
    }
    if !dels.is_empty() {
        out = out.multi_delete_owned(dels);
    }
    out
}

impl<K, V, C> PacStore<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        opts: StoreOptions,
        dir: Option<PathBuf>,
        dir_lock: Option<File>,
        log: LogState,
        version: u64,
        map: PacMap<K, V, NoAug, C>,
        history: VecDeque<(u64, PacMap<K, V, NoAug, C>)>,
        checkpoint: Option<Checkpoint<K, V, C>>,
        registry: VersionRegistry,
        pool: Option<Arc<crate::pool::BufferPool<C::Block>>>,
    ) -> Self {
        PacStore {
            inner: Arc::new(Inner {
                opts,
                dir,
                _dir_lock: dir_lock,
                log: Mutex::new(log),
                state: Mutex::new(State { version, map, history }),
                commit: Mutex::new(CommitQueue {
                    pending: Vec::new(),
                    next_ticket: 0,
                    results: HashMap::new(),
                    leader_running: false,
                }),
                commit_cv: Condvar::new(),
                checkpoint_lock: Mutex::new(()),
                checkpoint: Mutex::new(checkpoint),
                registry,
                lifecycle: Mutex::new(LifecycleStats::default()),
                // A single-directory store is shard "000" of a
                // one-shard layout (see crate::metrics).
                metrics: StoreMetrics::new(1),
                pool,
            }),
        }
    }

    /// An empty, ephemeral store (no directory: `save` is an error).
    pub fn in_memory() -> Self {
        Self::in_memory_with(StoreOptions::default())
    }

    /// [`PacStore::in_memory`] with explicit options.
    pub fn in_memory_with(opts: StoreOptions) -> Self {
        let map = PacMap::with_block_size(opts.block_size);
        let mut history = VecDeque::new();
        history.push_back((0, map.clone()));
        Self::from_parts(
            opts,
            None,
            None,
            LogState::None,
            0,
            map,
            history,
            None,
            VersionRegistry::default(),
            None,
        )
    }

    /// Opens (or creates) a durable store in `dir`: loads the snapshot
    /// page if present, then replays the batch log past it.
    ///
    /// # Errors
    ///
    /// I/O errors; every snapshot-integrity error of
    /// [`crate::pagefmt::decode_snapshot`]; [`StoreError::Corrupt`] for
    /// a torn log tail under [`StoreOptions::strict_log`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`PacStore::open`] with explicit options.
    ///
    /// # Errors
    ///
    /// See [`PacStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // Exclusive advisory lock: without it, two live handles would
        // each assign versions independently and interleave them in one
        // log — acknowledged commits would vanish at replay.
        let dir_lock = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(LOCK_FILE))?;
        match dir_lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => return Err(StoreError::Locked),
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }

        // Full page plus any incremental pages chained onto it. With a
        // pool budget configured, a paged snapshot opens *lazily*: the
        // base tree holds page references and the open does O(structure)
        // I/O — leaf pages stream through the pool on first access.
        let pool = opts.pool_pages.map(crate::pool::BufferPool::new);
        let chain =
            crate::paged::load_chain_auto::<K, V, C>(&dir, PAGED_FILE, SNAPSHOT_FILE, pool.as_ref())?;
        let checkpoint = chain.as_ref().map(|(map, version, chain_len)| Checkpoint {
            version: *version,
            map: map.clone(),
            chain_len: *chain_len,
        });
        let (mut map, mut version) = match chain {
            Some((map, version, _)) => (map, version),
            None => (PacMap::with_block_size(opts.block_size), 0),
        };

        let mut history = VecDeque::new();
        history.push_back((version, map.clone()));

        // Pins persisted by a previous handle, loaded *before* replay:
        // replay-time history eviction must honor them or a pinned
        // version silently vanishes across a reopen.
        let registry = VersionRegistry::from_pins(lifecycle::load_pins(&dir)?);

        let log_path = dir.join(LOG_FILE);
        if log_path.exists() {
            let bytes = std::fs::read(&log_path)?;
            let expected = crate::checksum::schema_id::<(K, V)>();
            let replay = wal::replay::<K, V>(&bytes, expected);
            if let Some(found) = replay.schema_mismatch {
                return Err(StoreError::SchemaMismatch { found, expected });
            }
            if let Some(found) = replay.format_mismatch {
                return Err(StoreError::Corrupt(format!(
                    "log record format {found:#04x}, this build reads {:#04x}",
                    wal::LOG_FORMAT
                )));
            }
            if replay.torn && opts.strict_log {
                return Err(StoreError::Corrupt(format!(
                    "torn or corrupt log tail after byte {}",
                    replay.valid_len
                )));
            }
            for record in replay.records {
                if record.version <= version {
                    // Already covered by the snapshot pages.
                    continue;
                }
                if record.version > version + 1 {
                    // Commits assign consecutive versions, so a jump
                    // means the pages that held the intermediate state
                    // are gone (deleted snapshot or incremental link)
                    // while the log was already truncated past it.
                    // Replaying from here would silently resurrect an
                    // old state minus the missing commits.
                    return Err(StoreError::VersionGap {
                        checkpoint: version,
                        first: record.version,
                    });
                }
                version = record.version;
                map = apply_ops(map, record.ops);
                history.push_back((version, map.clone()));
                // Same pin-aware eviction as the commit path
                // (`apply_group`): a pinned version must survive the
                // replay walk exactly as it survives live commits.
                lifecycle::evict_history(
                    &mut history,
                    opts.history_limit,
                    |(v, _)| *v,
                    &registry,
                );
            }
            if replay.torn {
                // Drop the bad tail so future appends start at a clean
                // record boundary.
                let f = OpenOptions::new().write(true).open(&log_path)?;
                f.set_len(replay.valid_len as u64)?;
            }
        }

        let log_existed = log_path.exists();
        let log = OpenOptions::new().create(true).append(true).open(&log_path)?;
        if !log_existed {
            // The first `fsync_commits` append syncs the log's *data*,
            // but an un-synced directory entry can lose the whole file
            // on crash — persist the creation now, once.
            crate::pagefmt::fsync_dir(&dir)?;
        }
        Ok(Self::from_parts(
            opts,
            Some(dir),
            Some(dir_lock),
            LogState::Active(log),
            version,
            map,
            history,
            checkpoint,
            registry,
            pool,
        ))
    }

    /// Submits one batch and blocks until it is in the log (flushed to
    /// the OS; `fsync`ed when [`StoreOptions::fsync_commits`] is set)
    /// and visible in a published version; returns that version.
    /// Batches queued concurrently are applied together by a group
    /// leader — one tree update, one log append for the whole group.
    ///
    /// Within a batch and across a group, later ops win per key.
    ///
    /// # Errors
    ///
    /// [`StoreError::CommitFailed`] when the group's log append failed;
    /// no version is published in that case.
    pub fn commit(&self, ops: Vec<Op<K, V>>) -> Result<u64, StoreError> {
        let inner = &self.inner;
        let enqueued = Instant::now();
        let mut wait_ns = 0u64;
        let mut q = inner.commit.lock();
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.pending.push((ticket, ops));
        loop {
            if let Some(result) = q.results.remove(&ticket) {
                drop(q);
                inner.metrics.ticket_wait.record(wait_ns);
                inner.metrics.commit.record_duration(enqueued.elapsed());
                return result.map_err(StoreError::CommitFailed);
            }
            if q.leader_running {
                let parked = Instant::now();
                inner.commit_cv.wait(&mut q);
                wait_ns += parked.elapsed().as_nanos() as u64;
                continue;
            }
            // Become the leader for everything queued so far.
            q.leader_running = true;
            let group = std::mem::take(&mut q.pending);
            drop(q);
            let tickets: Vec<u64> = group.iter().map(|(t, _)| *t).collect();
            let all_ops: Vec<Op<K, V>> =
                group.into_iter().flat_map(|(_, ops)| ops).collect();
            let outcome = self.apply_group(all_ops);
            q = inner.commit.lock();
            q.leader_running = false;
            match &outcome {
                Ok(version) => {
                    for t in tickets {
                        q.results.insert(t, Ok(*version));
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for t in tickets {
                        q.results.insert(t, Err(msg.clone()));
                    }
                }
            }
            inner.commit_cv.notify_all();
        }
    }

    /// Shorthand for committing a single [`Op::Put`].
    ///
    /// # Errors
    ///
    /// See [`PacStore::commit`].
    pub fn put(&self, key: K, value: V) -> Result<u64, StoreError> {
        self.commit(vec![Op::Put(key, value)])
    }

    /// Shorthand for committing a single [`Op::Delete`].
    ///
    /// # Errors
    ///
    /// See [`PacStore::commit`].
    pub fn delete(&self, key: K) -> Result<u64, StoreError> {
        self.commit(vec![Op::Delete(key)])
    }

    /// Applies one commit group: one tree update, one log record, one
    /// published version.
    fn apply_group(&self, all_ops: Vec<Op<K, V>>) -> Result<u64, StoreError> {
        let mut log_guard = self.inner.log.lock();
        if matches!(*log_guard, LogState::Poisoned(_)) {
            return Err(StoreError::LogPoisoned);
        }
        let (base_map, base_version) = {
            let s = self.inner.state.lock();
            (s.map.clone(), s.version)
        };
        let new_version = base_version + 1;
        // Serialize the record first: applying consumes the ops.
        let record = matches!(*log_guard, LogState::Active(_)).then(|| {
            wal::encode_record(
                new_version,
                new_version,
                &[],
                crate::checksum::schema_id::<(K, V)>(),
                &all_ops,
            )
        });
        let apply_start = Instant::now();
        let new_map = apply_ops(base_map, all_ops);
        self.inner.metrics.apply.record_duration(apply_start.elapsed());

        // Durability before visibility: log the group (all-or-nothing,
        // so a failed group can never strand a record whose version the
        // next group reuses), then publish.
        if let (LogState::Active(file), Some(record)) = (&mut *log_guard, record) {
            let fsync = self.inner.opts.fsync_commits;
            match wal::append_bytes(file, &record, fsync) {
                Ok(timings) => self.inner.metrics.record_wal_append(0, timings, fsync),
                Err(fail) => {
                    if !fail.rolled_back {
                        // A stranded partial record would swallow every
                        // later append at replay: refuse them until
                        // save() resets the log.
                        let state = std::mem::replace(&mut *log_guard, LogState::None);
                        if let LogState::Active(file) = state {
                            *log_guard = LogState::Poisoned(file);
                        }
                    }
                    return Err(fail.error.into());
                }
            }
        }

        let mut s = self.inner.state.lock();
        s.version = new_version;
        s.map = new_map.clone();
        s.history.push_back((new_version, new_map));
        lifecycle::evict_history(
            &mut s.history,
            self.inner.opts.history_limit,
            |(v, _)| *v,
            &self.inner.registry,
        );
        drop(s);
        drop(log_guard);
        Ok(new_version)
    }

    /// Pins the current version: O(1), never blocked by writers beyond
    /// a brief lock for the pointer copy.
    pub fn snapshot(&self) -> Snapshot<K, V, C> {
        self.inner.metrics.snapshots.inc();
        let s = self.inner.state.lock();
        Snapshot {
            version: s.version,
            map: s.map.clone(),
        }
    }

    /// Pins a historical version (time-travel read).
    ///
    /// # Errors
    ///
    /// [`StoreError::VersionNotFound`] if `version` is older than the
    /// retained history (or never existed).
    pub fn snapshot_at(&self, version: u64) -> Result<Snapshot<K, V, C>, StoreError> {
        let s = self.inner.state.lock();
        s.history
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(v, m)| Snapshot {
                version: *v,
                map: m.clone(),
            })
            .ok_or(StoreError::VersionNotFound(version))
    }

    /// The versions currently reachable via [`PacStore::snapshot_at`],
    /// oldest first (the last one is the current version).
    pub fn versions(&self) -> Vec<u64> {
        self.inner.state.lock().history.iter().map(|(v, _)| *v).collect()
    }

    /// The current (latest committed) version.
    pub fn current_version(&self) -> u64 {
        self.inner.state.lock().version
    }

    /// The value under `k` in the current version.
    pub fn get(&self, k: &K) -> Option<V> {
        let _span = obs::span!(self.inner.metrics.point_read);
        self.snapshot().get(k)
    }

    /// All entries with keys in `[lo, hi]` at the current version,
    /// ascending — a pinned-snapshot range read, timed into
    /// `pacstore_range_read_ns`.
    pub fn range_entries(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let _span = obs::span!(self.inner.metrics.range_read);
        self.snapshot().map().range(lo, hi).to_vec()
    }

    /// Number of entries in the current version.
    pub fn len(&self) -> usize {
        self.inner.state.lock().map.len()
    }

    /// True if the current version is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the current version to the snapshot page (atomic and
    /// durable: temp file + `fsync` + rename + directory `fsync`) and
    /// resets the log, whose records it now covers. Returns the saved
    /// version.
    ///
    /// # Errors
    ///
    /// [`StoreError::Ephemeral`] for in-memory stores; I/O errors.
    pub fn save(&self) -> Result<u64, StoreError> {
        let _ckpt = self.inner.checkpoint_lock.lock();
        self.save_full_locked()
    }

    fn save_full_locked(&self) -> Result<u64, StoreError> {
        let dir = self.inner.dir.as_ref().ok_or(StoreError::Ephemeral)?;
        let _span = obs::span!(self.inner.metrics.save);
        let mut log_guard = self.inner.log.lock();
        let (map, version) = {
            let s = self.inner.state.lock();
            (s.map.clone(), s.version)
        };
        // One format owns the directory at a time: write the configured
        // one, then remove the other and the superseded incremental
        // chain. A crash in between leaves extra files on disk — open
        // arbitrates by version, and the page written here wins.
        let page_bytes = crate::paged::write_full_snapshot(
            self.inner.opts.pool_pages.is_some(),
            dir,
            PAGED_FILE,
            SNAPSHOT_FILE,
            &map,
            version,
        )?;
        let truncated = Self::reset_log(&mut log_guard)?;
        *self.inner.checkpoint.lock() = Some(Checkpoint {
            version,
            map,
            chain_len: 0,
        });
        self.inner.metrics.incr_chain_depth[0].set(0);
        let mut stats = self.inner.lifecycle.lock();
        stats.full_saves += 1;
        stats.full_page_bytes += page_bytes as u64;
        stats.wal_bytes_truncated += truncated;
        Ok(version)
    }


    /// Persists only what changed since the previous checkpoint: an
    /// incremental page diffed against the pinned root of
    /// `prev_version`, then resets the log the page now covers. `open`
    /// chains the page back onto the full snapshot. Returns the saved
    /// version.
    ///
    /// `prev_version` must be the store's latest checkpoint (see
    /// [`PacStore::latest_checkpoint`]) — the page records it as the
    /// chain link, and the diff is only sound against that pinned root.
    /// [`PacStore::compact`] automates the choice between this and a
    /// full [`PacStore::save`].
    ///
    /// # Errors
    ///
    /// [`StoreError::CheckpointMismatch`] when `prev_version` is not
    /// the latest checkpoint (or none exists);
    /// [`StoreError::Ephemeral`] for in-memory stores; I/O errors.
    pub fn save_incremental(&self, prev_version: u64) -> Result<u64, StoreError> {
        let _ckpt = self.inner.checkpoint_lock.lock();
        self.save_incremental_locked(prev_version)
    }

    fn save_incremental_locked(&self, prev_version: u64) -> Result<u64, StoreError> {
        let dir = self.inner.dir.as_ref().ok_or(StoreError::Ephemeral)?;
        let _span = obs::span!(self.inner.metrics.save);
        let mut log_guard = self.inner.log.lock();
        let (map, version) = {
            let s = self.inner.state.lock();
            (s.map.clone(), s.version)
        };
        let mut checkpoint = self.inner.checkpoint.lock();
        let ck = match checkpoint.as_ref() {
            Some(ck) if ck.version == prev_version => ck,
            other => {
                return Err(StoreError::CheckpointMismatch {
                    requested: prev_version,
                    actual: other.map(|ck| ck.version),
                })
            }
        };
        if version == ck.version {
            // Nothing committed since the checkpoint; the log can only
            // hold covered records (we hold the log lock), so just
            // reset it.
            let truncated = Self::reset_log(&mut log_guard)?;
            self.inner.lifecycle.lock().wal_bytes_truncated += truncated;
            return Ok(version);
        }
        let page = pagefmt::encode_incremental(&map, &ck.map, ck.version, version);
        pagefmt::write_file_atomic(&dir.join(pagefmt::incr_file_name(version)), &page)?;
        let chain_len = ck.chain_len + 1;
        let truncated = Self::reset_log(&mut log_guard)?;
        *checkpoint = Some(Checkpoint {
            version,
            map,
            chain_len,
        });
        self.inner.metrics.incr_chain_depth[0].set(chain_len as i64);
        let mut stats = self.inner.lifecycle.lock();
        stats.incremental_saves += 1;
        stats.incremental_page_bytes += page.len() as u64;
        stats.wal_bytes_truncated += truncated;
        Ok(version)
    }

    /// One checkpoint-then-truncate cycle: persists the current
    /// committed version — incrementally when a checkpoint exists and
    /// the chain is short, as a full page otherwise (first save, or
    /// every `MAX_INCR_CHAIN` links to bound `open`'s chain walk) —
    /// and truncates the log it covers. Returns the checkpointed
    /// version.
    ///
    /// # Errors
    ///
    /// [`StoreError::Ephemeral`] for in-memory stores; I/O errors.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let span = obs::span!(self.inner.metrics.compact_pause);
        let _ckpt = self.inner.checkpoint_lock.lock();
        let base = self
            .inner
            .checkpoint
            .lock()
            .as_ref()
            .filter(|ck| ck.chain_len < MAX_INCR_CHAIN)
            .map(|ck| ck.version);
        let version = match base {
            Some(prev) => self.save_incremental_locked(prev)?,
            None => self.save_full_locked()?,
        };
        self.inner.lifecycle.lock().compactions += 1;
        drop(span);
        Ok(version)
    }

    /// Truncates the log under its held lock; every record is covered
    /// by the page just written (no group is between append and
    /// publish while the lock is held). A successful truncation also
    /// heals a poisoned log — the stranded partial record is gone.
    /// Returns the number of bytes dropped.
    fn reset_log(log_guard: &mut LogState) -> Result<u64, StoreError> {
        let state = std::mem::replace(log_guard, LogState::None);
        match state {
            LogState::None => Ok(0),
            LogState::Active(f) | LogState::Poisoned(f) => {
                let len = f.metadata().map(|m| m.len()).unwrap_or(0);
                match f.set_len(0) {
                    Ok(()) => {
                        *log_guard = LogState::Active(f);
                        Ok(len)
                    }
                    Err(e) => {
                        // Keep refusing appends: the page is saved but
                        // the log still holds stale (covered) records.
                        *log_guard = LogState::Poisoned(f);
                        Err(e.into())
                    }
                }
            }
        }
    }

    /// The version of the latest persisted checkpoint (full page plus
    /// incremental chain), or `None` if nothing was saved yet.
    pub fn latest_checkpoint(&self) -> Option<u64> {
        self.inner.checkpoint.lock().as_ref().map(|ck| ck.version)
    }

    /// Pins `version` against history eviction and [`PacStore::gc`]:
    /// [`PacStore::snapshot_at`] keeps working for it until every pin
    /// is released. Pins are counted per version. For a durable store
    /// the pin table is rewritten atomically, so the pin also survives
    /// a reopen (as long as the WAL still reaches the version).
    ///
    /// # Errors
    ///
    /// [`StoreError::VersionNotFound`] when `version` is not currently
    /// in history (an evicted version cannot be resurrected); I/O
    /// errors persisting the pin table (the in-memory pin is rolled
    /// back, so memory and disk never disagree).
    pub fn pin_version(&self, version: u64) -> Result<(), StoreError> {
        // Under the state lock so eviction (which consults the
        // registry under the same lock) cannot race the containment
        // check; persistence rides under the same lock so concurrent
        // pin/unpin cannot interleave stale table writes.
        let s = self.inner.state.lock();
        if !s.history.iter().any(|(v, _)| *v == version) {
            return Err(StoreError::VersionNotFound(version));
        }
        self.inner.registry.pin(version);
        if let Some(dir) = &self.inner.dir {
            if let Err(e) = lifecycle::persist_pins(dir, &self.inner.registry) {
                self.inner.registry.unpin(version);
                return Err(e);
            }
        }
        drop(s);
        self.inner.metrics.pins.inc();
        Ok(())
    }

    /// Releases one pin on `version` (it becomes GC-eligible when the
    /// count reaches zero and it leaves the retention window). Durable
    /// stores rewrite the pin table.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotPinned`] when `version` holds no pin; I/O
    /// errors persisting the pin table (the in-memory release is
    /// rolled back).
    pub fn unpin_version(&self, version: u64) -> Result<(), StoreError> {
        let s = self.inner.state.lock();
        if !self.inner.registry.unpin(version) {
            return Err(StoreError::NotPinned(version));
        }
        if let Some(dir) = &self.inner.dir {
            if let Err(e) = lifecycle::persist_pins(dir, &self.inner.registry) {
                self.inner.registry.pin(version);
                return Err(e);
            }
        }
        drop(s);
        self.inner.metrics.unpins.inc();
        Ok(())
    }

    /// The currently pinned versions, ascending.
    pub fn pinned_versions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.inner.registry.pinned().into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Drops retained history outside `policy`'s window (pinned
    /// versions and the current version always survive), releasing
    /// every subtree no surviving version shares. Space reclamation is
    /// the existing refcount machinery — dropping a version's root
    /// `Arc` frees exactly its unshared nodes, counted in
    /// [`GcStats::nodes_reclaimed`].
    pub fn gc(&self, policy: RetentionPolicy) -> GcStats {
        let _span = obs::span!(self.inner.metrics.gc_pause);
        let keep = policy.keep_last.max(1);
        let mut dropped_maps = Vec::new();
        let versions_retained;
        {
            let mut s = self.inner.state.lock();
            let pinned = self.inner.registry.pinned();
            let cut = s.history.len().saturating_sub(keep);
            let old = std::mem::take(&mut s.history);
            for (i, (v, m)) in old.into_iter().enumerate() {
                if i >= cut || pinned.contains(&v) {
                    s.history.push_back((v, m));
                } else {
                    dropped_maps.push(m);
                }
            }
            versions_retained = s.history.len();
        }
        // Drop outside the state lock — freeing a deep unshared
        // version walks its whole tree — and measure what came back.
        let versions_dropped = dropped_maps.len();
        let before = cpam::stats::read();
        drop(dropped_maps);
        let nodes_reclaimed = cpam::stats::read().delta(before).nodes_dropped;
        let mut stats = self.inner.lifecycle.lock();
        stats.gc_runs += 1;
        stats.versions_dropped += versions_dropped as u64;
        stats.nodes_reclaimed += nodes_reclaimed;
        self.inner.metrics.gc_versions_dropped.add(versions_dropped as u64);
        self.inner.metrics.gc_nodes_reclaimed.add(nodes_reclaimed);
        GcStats {
            versions_dropped,
            versions_retained,
            nodes_reclaimed,
        }
    }

    /// Cumulative lifecycle counters for this store handle.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        *self.inner.lifecycle.lock()
    }

    /// The store's directory (`None` for in-memory stores).
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// Statistics of the page cache behind this store's lazy (paged)
    /// opens; `None` unless [`StoreOptions::pool_pages`] is set on a
    /// durable store. Reading also publishes the snapshot into the
    /// metrics registry (`pacstore_pool_*` gauges and counters), so a
    /// scrape path that calls this before rendering gets fresh values.
    pub fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        let stats = self.inner.pool.as_ref().map(|p| p.stats());
        if let Some(s) = &stats {
            self.inner.metrics.pool.publish(s);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_read_back() {
        let store: PacStore<u64, u64> = PacStore::in_memory();
        assert_eq!(store.current_version(), 0);
        let v1 = store.commit(vec![Op::Put(1, 10), Op::Put(2, 20)]).unwrap();
        assert_eq!(v1, 1);
        let v2 = store.commit(vec![Op::Delete(1), Op::Put(3, 30)]).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(store.get(&1), None);
        assert_eq!(store.get(&2), Some(20));
        assert_eq!(store.get(&3), Some(30));
    }

    #[test]
    fn last_op_wins_within_a_batch() {
        let store: PacStore<u64, u64> = PacStore::in_memory();
        store
            .commit(vec![Op::Put(5, 1), Op::Put(5, 2), Op::Delete(5), Op::Put(5, 3)])
            .unwrap();
        assert_eq!(store.get(&5), Some(3));
        store.commit(vec![Op::Put(6, 1), Op::Delete(6)]).unwrap();
        assert_eq!(store.get(&6), None);
    }

    #[test]
    fn snapshots_pin_versions() {
        let store: PacStore<u64, u64> = PacStore::in_memory();
        store.put(1, 100).unwrap();
        let pinned = store.snapshot();
        store.put(1, 200).unwrap();
        store.delete(1).unwrap();
        assert_eq!(pinned.get(&1), Some(100));
        assert_eq!(pinned.version(), 1);
        assert_eq!(store.get(&1), None);
        // Time travel through retained history.
        assert_eq!(store.snapshot_at(2).unwrap().get(&1), Some(200));
        assert_eq!(store.versions(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn history_is_bounded_but_pins_survive() {
        let opts = StoreOptions {
            history_limit: 3,
            ..StoreOptions::default()
        };
        let store: PacStore<u64, u64> = PacStore::in_memory_with(opts);
        store.put(0, 0).unwrap();
        let pinned = store.snapshot();
        for i in 1..10u64 {
            store.put(i, i).unwrap();
        }
        assert_eq!(store.versions().len(), 3);
        assert!(matches!(
            store.snapshot_at(1),
            Err(StoreError::VersionNotFound(1))
        ));
        // The pin still reads version 1 even though history evicted it.
        assert_eq!(pinned.version(), 1);
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned.get(&0), Some(0));
    }

    #[test]
    fn concurrent_commits_all_land() {
        let store: PacStore<u64, u64> = PacStore::in_memory();
        let threads = 8;
        let per_thread = 50;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let k = (t * per_thread + i) as u64;
                        store.commit(vec![Op::Put(k, k * 2)]).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.len(), threads * per_thread);
        for k in 0..(threads * per_thread) as u64 {
            assert_eq!(store.get(&k), Some(k * 2), "key {k}");
        }
        // Group commit coalesces: version count <= commit count.
        assert!(store.current_version() <= (threads * per_thread) as u64);
    }

    #[test]
    fn ephemeral_save_is_typed_error() {
        let store: PacStore<u64, u64> = PacStore::in_memory();
        assert!(matches!(store.save(), Err(StoreError::Ephemeral)));
    }
}
