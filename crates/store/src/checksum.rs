//! CRC-32 (IEEE 802.3, reflected) for corruption detection in snapshot
//! pages and log records. Table-driven, table built at compile time —
//! no dependency needed.

/// The reflected CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes`.
///
/// ```
/// // The standard check value for CRC-32/IEEE.
/// assert_eq!(store::checksum::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// A 32-bit fingerprint of a type, stored in on-disk headers so that a
/// store directory written as, say, `PacStore<u64, u64>` is rejected
/// with a typed error — instead of misparsed — when reopened with
/// different key/value types.
///
/// Implementation: FNV-1a over [`std::any::type_name`]. The name's
/// exact rendering is not guaranteed across compiler versions, so a
/// fingerprint mismatch can also mean "written by a differently
/// rendered toolchain" — a safe false positive.
pub fn schema_id<T: ?Sized>() -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for byte in std::any::type_name::<T>().bytes() {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_ids_distinguish_types() {
        assert_ne!(schema_id::<(u64, u64)>(), schema_id::<(u64, u32)>());
        assert_ne!(schema_id::<(u64, u64)>(), schema_id::<u64>());
        assert_ne!(schema_id::<(u64, String)>(), schema_id::<(u64, u64)>());
        assert_eq!(schema_id::<(u64, u64)>(), schema_id::<(u64, u64)>());
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 31) as u8;
        }
        let clean = crc32(&data);
        for byte in [0usize, 500, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
