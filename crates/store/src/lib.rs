//! pacstore: a versioned, persistent key-value store on PaC-trees.
//!
//! The paper's headline property — array-like space with O(1)
//! purely-functional snapshots — is exactly the substrate a
//! multi-version store needs (the PAM line of work serves databases
//! this way). This crate turns the workspace's [`cpam::PacMap`] into a
//! serveable system:
//!
//! * **[`PacStore`]** — an MVCC key-value store. Writers submit batches
//!   to a group-commit pipeline (one tree update and one log write per
//!   *group*, not per batch); readers pin any retained version as an
//!   O(1) [`Snapshot`] and never block.
//! * **Snapshot pages** ([`pagefmt`]) — a binary codec serializing a
//!   whole PaC-tree: interior structure as a tagged pre-order stream,
//!   leaves as their *already-encoded compressed blocks*, copied
//!   verbatim both ways (decode does no re-sorting and no re-encoding,
//!   so space accounting is bit-identical). Pages carry a CRC-32 so
//!   truncation and bit flips surface as typed [`StoreError`]s.
//! * **Durability** ([`wal`]) — `save`/`open` of snapshot pages plus an
//!   append-only batch log replayed on open, with standard
//!   torn-tail recovery.
//! * **[`ShardedStore`]** — N independent MVCC shards over disjoint key
//!   ranges (a [`Router`] partition map), batches split by range and
//!   applied to shards in parallel, with *atomic* cross-shard commits
//!   via a two-phase manifest and cross-shard snapshot isolation
//!   (every [`ShardedSnapshot`] pins one consistent version vector).
//!
//! ```
//! use store::{Op, PacStore};
//!
//! let store: PacStore<u64, String> = PacStore::in_memory();
//!
//! // Commit batches; each group of concurrent batches becomes one
//! // immutable version.
//! let v1 = store.commit(vec![Op::Put(1, "one".into())]).unwrap();
//! let pinned = store.snapshot(); // O(1), never blocks writers
//! let v2 = store
//!     .commit(vec![Op::Put(1, "uno".into()), Op::Put(2, "dos".into())])
//!     .unwrap();
//!
//! assert_eq!(store.get(&1), Some("uno".into()));
//! assert_eq!(pinned.get(&1), Some("one".into())); // time travel
//! assert_eq!(store.snapshot_at(v1).unwrap().len(), 1);
//! assert_eq!(store.snapshot_at(v2).unwrap().len(), 2);
//! ```
//!
//! Durable stores work the same way, plus [`PacStore::open`] /
//! [`PacStore::save`]; see `examples/versioned_store.rs` for the tour
//! and `DESIGN.md` §"pacstore on-disk formats" for the byte layouts.

pub mod checksum;
mod error;
mod lifecycle;
pub mod metrics;
mod mvcc;
pub mod paged;
pub mod pagefmt;
pub mod pool;
mod router;
mod shard;
pub mod wal;

pub use error::StoreError;
pub use lifecycle::{GcStats, LifecycleStats, RetentionPolicy, VersionRegistry};
pub use mvcc::{
    Op, PacStore, Snapshot, StoreKey, StoreOptions, StoreValue, LOCK_FILE, LOG_FILE, PAGED_FILE,
    SNAPSHOT_FILE,
};
pub use paged::{
    encode_paged, open_paged_file, write_paged_file, PagedSnapshot, PagedSource, PAGED_MAGIC,
};
pub use pagefmt::{
    decode_incremental, decode_snapshot, encode_incremental, encode_snapshot, incr_file_name,
    read_snapshot_file, write_file_atomic, write_snapshot_file, DiskTree, INCREMENTAL_MAGIC,
    SNAPSHOT_MAGIC,
};
pub use pool::{BufferPool, PageGuard, PoolStats};
pub use router::{Router, PARTITION_FILE, PARTITION_MAGIC};
pub use shard::{shard_dir_name, ShardedSnapshot, ShardedStore, MANIFEST_FILE};
