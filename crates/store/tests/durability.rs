//! Durability tests: save/open round trips, log replay, and the
//! corruption-detection satellite — a truncated or bit-flipped snapshot
//! must produce a typed error, never a panic or silent bad data.
//!
//! The second half is the crash-injection suite for the sharded
//! store's two-phase commit: the manifest and each shard WAL are
//! truncated at *every byte boundary* of a prepared global commit, and
//! after reopening the commit must be all-or-nothing — visible in
//! every shard or in none — with torn tails cleanly truncated.

use std::path::{Path, PathBuf};

use store::{
    incr_file_name, shard_dir_name, Op, PacStore, Router, ShardedStore, StoreError, StoreOptions,
    LOG_FILE, MANIFEST_FILE, PAGED_FILE, SNAPSHOT_FILE,
};

/// A fresh, empty scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pacstore-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Options pinning the *classic* snapshot format, immune to the
/// `PAC_POOL_PAGES` environment override — for tests that corrupt
/// [`SNAPSHOT_FILE`] at the byte level and so depend on which file a
/// save writes.
fn classic() -> StoreOptions {
    StoreOptions { pool_pages: None, ..StoreOptions::default() }
}

#[test]
fn save_and_reopen_serves_same_data() {
    let dir = scratch("save-reopen");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store
            .commit((0..5_000u64).map(|k| Op::Put(k, k * 7)).collect())
            .unwrap();
        store.commit(vec![Op::Delete(17), Op::Put(9_999, 1)]).unwrap();
        assert_eq!(store.save().unwrap(), 2);
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 2);
    assert_eq!(store.len(), 5_000);
    assert_eq!(store.get(&17), None);
    assert_eq!(store.get(&9_999), Some(1));
    assert_eq!(store.get(&4_000), Some(28_000));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn log_replay_recovers_unsaved_commits() {
    let dir = scratch("log-replay");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit((0..100u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
        // These two commits live only in the log.
        store.commit(vec![Op::Put(200, 200), Op::Delete(0)]).unwrap();
        store.commit(vec![Op::Put(201, 201)]).unwrap();
        // No save: drop the handle with the log dirty.
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 3);
    assert_eq!(store.get(&200), Some(200));
    assert_eq!(store.get(&201), Some(201));
    assert_eq!(store.get(&0), None);
    assert_eq!(store.get(&99), Some(99));
    // Replayed versions are reachable for time travel.
    assert_eq!(store.versions(), vec![1, 2, 3]);
    assert_eq!(store.snapshot_at(2).unwrap().get(&201), None);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let dir = scratch("truncate-snap");
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, classic()).unwrap();
        store.commit((0..2_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    let path = dir.join(SNAPSHOT_FILE);
    let full = std::fs::read(&path).unwrap();
    // Truncate at a spread of byte positions, including header-only.
    for cut in [0, 1, 7, 8, 9, 12, full.len() / 2, full.len() - 5, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = PacStore::<u64, u64>::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. } | StoreError::Truncated(_) | StoreError::BadMagic
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_snapshot_is_a_checksum_error() {
    let dir = scratch("bitflip-snap");
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, classic()).unwrap();
        store.commit((0..2_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    let path = dir.join(SNAPSHOT_FILE);
    let full = std::fs::read(&path).unwrap();
    for byte in [9, 20, full.len() / 2, full.len() - 2] {
        let mut flipped = full.clone();
        flipped[byte] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = PacStore::<u64, u64>::open(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::ChecksumMismatch { .. }),
            "flip at {byte}: unexpected error {err}"
        );
    }
    // Flipping the magic itself reports BadMagic (checked first).
    let mut flipped = full.clone();
    flipped[0] ^= 0xff;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir).unwrap_err(),
        StoreError::BadMagic
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_log_tail_is_truncated_by_default_and_fatal_in_strict_mode() {
    let dir = scratch("torn-log");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 1)]).unwrap();
        store.commit(vec![Op::Put(2, 2)]).unwrap();
    }
    // Simulate a torn write: garbage appended after the last record.
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0x55; 13]);
    std::fs::write(&log_path, &bytes).unwrap();

    // Strict mode refuses.
    let strict = StoreOptions {
        strict_log: true,
        ..StoreOptions::default()
    };
    assert!(matches!(
        PacStore::<u64, u64>::open_with(&dir, strict).unwrap_err(),
        StoreError::Corrupt(_)
    ));

    // Default mode recovers the valid prefix and truncates the tail.
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 2);
    assert_eq!(store.get(&1), Some(1));
    assert_eq!(store.get(&2), Some(2));
    drop(store);
    assert_eq!(std::fs::read(&log_path).unwrap().len(), clean_len);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_handle_on_same_directory_is_locked_out() {
    let dir = scratch("dir-lock");
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    store.commit(vec![Op::Put(1, 1)]).unwrap();
    // A second live handle would interleave versions in the shared log.
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir),
        Err(StoreError::Locked)
    ));
    // Cloned handles share the lock; dropping the last one releases it.
    let clone = store.clone();
    drop(store);
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir),
        Err(StoreError::Locked)
    ));
    drop(clone);
    let reopened: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(reopened.get(&1), Some(1));
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopening_with_different_types_is_a_typed_error() {
    // Saved snapshot: schema check in the page header.
    let dir = scratch("schema-snap");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 300)]).unwrap();
        store.save().unwrap();
    }
    assert!(matches!(
        PacStore::<u64, String>::open(&dir).unwrap_err(),
        StoreError::SchemaMismatch { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();

    // Log-only store: schema check in each WAL record.
    let dir = scratch("schema-log");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 300)]).unwrap();
    }
    assert!(matches!(
        PacStore::<u64, String>::open(&dir).unwrap_err(),
        StoreError::SchemaMismatch { .. }
    ));
    // The right types still open it fine.
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.get(&1), Some(300));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_resets_log_and_later_commits_append_cleanly() {
    let dir = scratch("save-resets-log");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        for i in 0..10u64 {
            store.commit(vec![Op::Put(i, i)]).unwrap();
        }
        store.save().unwrap();
        assert_eq!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(), 0);
        store.commit(vec![Op::Put(100, 100)]).unwrap();
        assert!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len() > 0);
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 11);
    assert_eq!(store.len(), 11);
    assert_eq!(store.get(&100), Some(100));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resurrected_incrementals_after_a_full_save_are_ignored_and_recleaned() {
    // A full save removes the incremental chain it supersedes and
    // fsyncs the directory, but an unclean shutdown elsewhere in the
    // stack can still resurrect the files (e.g. a snapshot of the
    // directory taken between remove and fsync). Inject exactly that
    // crash: copy the chain back after the save and assert recovery
    // (a) serves the post-save state, never the stale chain, and
    // (b) the next save cleans the resurrected files up again.
    let dir = scratch("resurrected-incrs");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit((0..1_000u64).map(|k| Op::Put(k, 1)).collect()).unwrap();
        store.save().unwrap(); // full page @1
        store.commit(vec![Op::Put(5_000, 5)]).unwrap();
        store.compact().unwrap(); // incremental page @2
    }
    let incr = dir.join(incr_file_name(2));
    assert!(incr.exists(), "fixture should have produced an incremental");
    let incr_bytes = std::fs::read(&incr).unwrap();
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(5_000, 7), Op::Delete(3)]).unwrap();
        store.save().unwrap(); // full page @3 supersedes the chain
        assert!(!incr.exists(), "save must remove the superseded chain");
    }
    std::fs::write(&incr, &incr_bytes).unwrap();
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        assert_eq!(store.current_version(), 3);
        assert_eq!(store.get(&5_000), Some(7), "stale incremental value served");
        assert_eq!(store.get(&3), None, "deleted key resurrected");
        store.commit(vec![Op::Put(6_000, 6)]).unwrap();
        store.save().unwrap();
        assert!(!incr.exists(), "next save must re-clean the stale chain");
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.get(&6_000), Some(6));
    assert_eq!(store.get(&5_000), Some(7));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Sharded store: durable round trips
// ---------------------------------------------------------------------

const SHARDS: usize = 3;

fn sharded_open(dir: &Path) -> ShardedStore<u64, u64> {
    ShardedStore::open_or_create(dir, Router::uniform_span(SHARDS, 3_000), StoreOptions::default())
        .expect("open sharded")
}

#[test]
fn sharded_save_and_reopen_serves_same_data() {
    let dir = scratch("shard-save-reopen");
    {
        let store = sharded_open(&dir);
        store
            .commit((0..3_000u64).map(|k| Op::Put(k, k * 7)).collect())
            .unwrap();
        store.commit(vec![Op::Delete(17), Op::Put(2_999, 1)]).unwrap();
        assert_eq!(store.save().unwrap(), 2);
        // Post-save commits live only in the shard WALs + manifest.
        store.commit(vec![Op::Put(5, 500), Op::Put(2_500, 1)]).unwrap();
    }
    // Every shard subdirectory holds its own snapshot page (classic or
    // paged, depending on the PAC_POOL_PAGES override).
    for i in 0..SHARDS {
        let sdir = dir.join(shard_dir_name(i));
        assert!(
            sdir.join(SNAPSHOT_FILE).exists() || sdir.join(PAGED_FILE).exists(),
            "shard {i}"
        );
    }
    let store = sharded_open(&dir);
    assert_eq!(store.current_version(), 3);
    assert_eq!(store.len(), 3_000 - 1);
    assert_eq!(store.get(&17), None);
    assert_eq!(store.get(&2_999), Some(1));
    assert_eq!(store.get(&5), Some(500));
    assert_eq!(store.get(&2_500), Some(1));
    assert_eq!(store.get(&1_000), Some(7_000));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_open_requires_matching_partition_map() {
    let dir = scratch("shard-partition-check");
    {
        let store = sharded_open(&dir);
        store.commit(vec![Op::Put(1, 1)]).unwrap();
    }
    // Plain open recovers the persisted routing.
    let store: ShardedStore<u64, u64> = ShardedStore::open(&dir).unwrap();
    assert_eq!(store.shard_count(), SHARDS);
    assert_eq!(store.get(&1), Some(1));
    drop(store);
    // A different router is rejected, not silently adopted.
    assert!(matches!(
        ShardedStore::<u64, u64>::open_or_create(
            &dir,
            Router::uniform_span(5, 3_000),
            StoreOptions::default()
        ),
        Err(StoreError::PartitionMismatch(_))
    ));
    // Opening a directory with no partition map is typed too.
    let empty = scratch("shard-no-partition");
    assert!(matches!(
        ShardedStore::<u64, u64>::open(&empty),
        Err(StoreError::PartitionMismatch(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_second_handle_is_locked_out() {
    let dir = scratch("shard-lock");
    let store = sharded_open(&dir);
    store.commit(vec![Op::Put(1, 1)]).unwrap();
    assert!(matches!(
        ShardedStore::<u64, u64>::open(&dir),
        Err(StoreError::Locked)
    ));
    drop(store);
    let reopened: ShardedStore<u64, u64> = ShardedStore::open(&dir).unwrap();
    assert_eq!(reopened.get(&1), Some(1));
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Crash injection: the cross-shard commit protocol
// ---------------------------------------------------------------------

/// All durable files of a sharded store directory, as bytes.
#[derive(Clone, PartialEq, Debug)]
struct FileImage {
    manifest: Vec<u8>,
    wals: Vec<Vec<u8>>,
}

fn capture(dir: &Path) -> FileImage {
    FileImage {
        manifest: std::fs::read(dir.join(MANIFEST_FILE)).unwrap_or_default(),
        wals: (0..SHARDS)
            .map(|i| std::fs::read(dir.join(shard_dir_name(i)).join(LOG_FILE)).unwrap_or_default())
            .collect(),
    }
}

fn restore(dir: &Path, img: &FileImage) {
    std::fs::write(dir.join(MANIFEST_FILE), &img.manifest).unwrap();
    for (i, w) in img.wals.iter().enumerate() {
        std::fs::write(dir.join(shard_dir_name(i)).join(LOG_FILE), w).unwrap();
    }
}

/// The keys global commit 2 writes in the crash tests: one per shard.
const G2_KEYS: [u64; 3] = [10, 1_010, 2_010];

/// Builds a store with a baseline commit (g1) and a cross-shard commit
/// under test (g2), returning the file images before and after g2.
fn crash_fixture(dir: &Path) -> (FileImage, FileImage) {
    let store = sharded_open(dir);
    store
        .commit(vec![Op::Put(0, 0), Op::Put(1_000, 0), Op::Put(2_000, 0)])
        .unwrap();
    let before = capture(dir);
    store
        .commit(G2_KEYS.iter().map(|&k| Op::Put(k, 42)).collect())
        .unwrap();
    drop(store);
    let after = capture(dir);
    (before, after)
}

/// Opens the store and asserts g2 is all-or-nothing; returns whether it
/// was visible. The baseline commit must always be intact.
fn check_atomic(dir: &Path, context: &str) -> bool {
    let store = sharded_open(dir);
    for base in [0u64, 1_000, 2_000] {
        assert_eq!(store.get(&base), Some(0), "{context}: baseline key {base} lost");
    }
    let seen: Vec<bool> = G2_KEYS.iter().map(|k| store.get(k) == Some(42)).collect();
    assert!(
        seen.iter().all(|&s| s) || seen.iter().all(|&s| !s),
        "{context}: global commit partially visible: {seen:?}"
    );
    seen[0]
}

#[test]
fn torn_manifest_record_never_splits_a_prepared_commit() {
    let dir = scratch("crash-manifest");
    let (before, after) = crash_fixture(&dir);
    assert!(after.manifest.len() > before.manifest.len());

    // Truncate the manifest at every byte boundary of g2's record. The
    // shard WALs hold the full prepare set, so recovery must roll g2
    // forward in every shard (all) — never in some (torn manifest
    // tails are truncated, then healed from the prepared WALs).
    for cut in before.manifest.len()..=after.manifest.len() {
        restore(&dir, &after);
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(MANIFEST_FILE))
            .unwrap()
            .set_len(cut as u64)
            .unwrap();
        let visible = check_atomic(&dir, &format!("manifest cut {cut}"));
        assert!(visible, "manifest cut {cut}: fully prepared commit must roll forward");
        // Recovery healed the manifest: a second reopen is clean and
        // idempotent.
        let healed = capture(&dir);
        let visible = check_atomic(&dir, &format!("manifest cut {cut} (reopen)"));
        assert!(visible);
        assert_eq!(healed, capture(&dir), "manifest cut {cut}: reopen not idempotent");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_shard_wal_drops_the_commit_from_every_shard() {
    let dir = scratch("crash-wal");
    let (before, after) = crash_fixture(&dir);

    // Crash during prepare: the manifest record was never written and
    // shard `s`'s prepare record is torn at every byte boundary. The
    // other shards hold complete prepare records — recovery must drop
    // them too (all-or-nothing), truncating each WAL back to g1.
    for s in 0..SHARDS {
        assert!(after.wals[s].len() > before.wals[s].len(), "shard {s} gained a record");
        for cut in before.wals[s].len()..after.wals[s].len() {
            restore(&dir, &after);
            std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(MANIFEST_FILE))
                .unwrap()
                .set_len(before.manifest.len() as u64)
                .unwrap();
            std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(shard_dir_name(s)).join(LOG_FILE))
                .unwrap()
                .set_len(cut as u64)
                .unwrap();
            let visible = check_atomic(&dir, &format!("shard {s} cut {cut}"));
            assert!(!visible, "shard {s} cut {cut}: partial prepare must be dropped");
            // Clean recovery: every WAL truncated back to the g1
            // boundary, and a reopen is idempotent.
            let recovered = capture(&dir);
            for (i, w) in recovered.wals.iter().enumerate() {
                assert_eq!(w.len(), before.wals[i].len(), "shard {s} cut {cut}: wal {i} tail");
            }
            assert!(!check_atomic(&dir, &format!("shard {s} cut {cut} (reopen)")));
            assert_eq!(recovered, capture(&dir), "shard {s} cut {cut}: reopen not idempotent");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_manifest_and_torn_wal_drop_the_commit_everywhere() {
    let dir = scratch("crash-both");
    let (before, after) = crash_fixture(&dir);

    // Crash mid-prepare with a torn manifest as well: sample a few cuts
    // of each (the full cross product is quadratic).
    let wal_cuts: Vec<usize> = (before.wals[1].len()..after.wals[1].len()).step_by(3).collect();
    let man_cuts: Vec<usize> = (before.manifest.len()..after.manifest.len()).step_by(3).collect();
    for &wc in &wal_cuts {
        for &mc in &man_cuts {
            restore(&dir, &after);
            std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(MANIFEST_FILE))
                .unwrap()
                .set_len(mc as u64)
                .unwrap();
            std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(shard_dir_name(1)).join(LOG_FILE))
                .unwrap()
                .set_len(wc as u64)
                .unwrap();
            let visible = check_atomic(&dir, &format!("wal cut {wc} manifest cut {mc}"));
            assert!(!visible, "wal cut {wc} manifest cut {mc}: must drop");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn strict_mode_refuses_torn_sharded_state() {
    let dir = scratch("crash-strict");
    let (before, after) = crash_fixture(&dir);

    // Torn shard WAL tail (partial prepare): strict open refuses.
    restore(&dir, &after);
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(MANIFEST_FILE))
        .unwrap()
        .set_len(before.manifest.len() as u64)
        .unwrap();
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(shard_dir_name(0)).join(LOG_FILE))
        .unwrap()
        .set_len((after.wals[0].len() - 1) as u64)
        .unwrap();
    let strict = StoreOptions { strict_log: true, ..StoreOptions::default() };
    assert!(matches!(
        ShardedStore::<u64, u64>::open_with(&dir, strict.clone()),
        Err(StoreError::Corrupt(_))
    ));

    // Torn manifest tail: strict open refuses too.
    restore(&dir, &after);
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(MANIFEST_FILE))
        .unwrap()
        .set_len((after.manifest.len() - 1) as u64)
        .unwrap();
    assert!(matches!(
        ShardedStore::<u64, u64>::open_with(&dir, strict),
        Err(StoreError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Crash injection: the compaction cycle (checkpoint-then-truncate)
// ---------------------------------------------------------------------

/// The keys the post-compaction commit writes: one per shard.
const POST_COMPACT_KEYS: [u64; 3] = [20, 1_020, 2_020];

/// Builds a store that has been through a full lifecycle — a saved full
/// page, a commit, a `compact()` (incremental pages + checkpoint
/// manifest + truncated WALs), and one more cross-shard commit.
/// Returns the file images right after the compact and after the final
/// commit.
fn compact_fixture(dir: &Path) -> (FileImage, FileImage) {
    let store = sharded_open(dir);
    store
        .commit(vec![Op::Put(0, 0), Op::Put(1_000, 0), Op::Put(2_000, 0)])
        .unwrap();
    store.save().unwrap();
    store
        .commit(vec![Op::Put(1, 7), Op::Put(1_001, 7), Op::Put(2_001, 7)])
        .unwrap();
    assert_eq!(store.compact().unwrap(), 2);
    // The compact went incremental (a checkpoint pin existed) and
    // truncated every WAL.
    let stats = store.lifecycle_stats();
    assert_eq!(stats.compactions, 1);
    assert_eq!(stats.incremental_saves, SHARDS as u64);
    let at_compact = capture(dir);
    for (i, w) in at_compact.wals.iter().enumerate() {
        assert!(w.is_empty(), "shard {i}: WAL not truncated by compact");
    }
    assert!(!at_compact.manifest.is_empty(), "checkpoint record missing");
    store
        .commit(POST_COMPACT_KEYS.iter().map(|&k| Op::Put(k, 42)).collect())
        .unwrap();
    drop(store);
    (at_compact, capture(dir))
}

/// Opens the store, asserts every pre-compaction key is intact and the
/// post-compaction commit is all-or-nothing; returns its visibility.
fn check_compact_atomic(dir: &Path, context: &str) -> bool {
    let store = sharded_open(dir);
    for base in [0u64, 1_000, 2_000] {
        assert_eq!(store.get(&base), Some(0), "{context}: checkpointed key {base} lost");
    }
    for inc in [1u64, 1_001, 2_001] {
        assert_eq!(store.get(&inc), Some(7), "{context}: incremental key {inc} lost");
    }
    let seen: Vec<bool> =
        POST_COMPACT_KEYS.iter().map(|k| store.get(k) == Some(42)).collect();
    assert!(
        seen.iter().all(|&s| s) || seen.iter().all(|&s| !s),
        "{context}: post-compaction commit partially visible: {seen:?}"
    );
    seen[0]
}

#[test]
fn compaction_survives_manifest_truncation_at_every_byte() {
    let dir = scratch("compact-crash-manifest");
    let (_, after) = compact_fixture(&dir);

    // Truncate the manifest at every byte boundary — through the
    // post-compaction record, the checkpoint record, down to nothing.
    // The pages cover the checkpoint and the WALs hold the full prepare
    // set for the last commit, so recovery must always land on the
    // latest version, healing the manifest as needed.
    for cut in 0..=after.manifest.len() {
        restore(&dir, &after);
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(MANIFEST_FILE))
            .unwrap()
            .set_len(cut as u64)
            .unwrap();
        let visible = check_compact_atomic(&dir, &format!("manifest cut {cut}"));
        assert!(visible, "manifest cut {cut}: prepared commit must roll forward");
        let healed = capture(&dir);
        assert!(check_compact_atomic(&dir, &format!("manifest cut {cut} (reopen)")));
        assert_eq!(healed, capture(&dir), "manifest cut {cut}: reopen not idempotent");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_survives_shard_wal_truncation_at_every_byte() {
    let dir = scratch("compact-crash-wal");
    let (at_compact, after) = compact_fixture(&dir);

    // Crash during the post-compaction prepare: the manifest never got
    // the record and shard `s`'s WAL is torn at every byte boundary.
    // Recovery must drop the commit from every shard and land exactly
    // on the checkpointed version.
    for s in 0..SHARDS {
        for cut in 0..after.wals[s].len() {
            restore(&dir, &after);
            std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(MANIFEST_FILE))
                .unwrap()
                .set_len(at_compact.manifest.len() as u64)
                .unwrap();
            std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(shard_dir_name(s)).join(LOG_FILE))
                .unwrap()
                .set_len(cut as u64)
                .unwrap();
            let visible = check_compact_atomic(&dir, &format!("shard {s} cut {cut}"));
            assert!(!visible, "shard {s} cut {cut}: partial prepare must be dropped");
            let recovered = capture(&dir);
            assert!(!check_compact_atomic(&dir, &format!("shard {s} cut {cut} (reopen)")));
            assert_eq!(recovered, capture(&dir), "shard {s} cut {cut}: reopen not idempotent");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_checkpoint_pages_are_typed_errors() {
    // The page files are written atomically (temp + fsync + rename), so
    // a crash never tears them — but disk corruption can. Every byte
    // truncation of an incremental page and a spread of cuts of the
    // full page must surface as a typed error, never a panic or a
    // silently shortened history.
    let dir = scratch("compact-torn-pages");
    compact_fixture(&dir);

    let sdir = dir.join(shard_dir_name(0));
    let incr_path = {
        let mut found: Vec<PathBuf> = std::fs::read_dir(&sdir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                (name.starts_with("incr-") && name.ends_with(".pac")).then_some(p)
            })
            .collect();
        assert_eq!(found.len(), 1, "expected exactly one incremental page");
        found.pop().unwrap()
    };
    let incr_full = std::fs::read(&incr_path).unwrap();
    for cut in 0..incr_full.len() {
        std::fs::write(&incr_path, &incr_full[..cut]).unwrap();
        let err = ShardedStore::<u64, u64>::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. }
                    | StoreError::Truncated(_)
                    | StoreError::BadMagic
                    | StoreError::Corrupt(_)
            ),
            "incr cut {cut}: unexpected error {err}"
        );
    }
    std::fs::write(&incr_path, &incr_full).unwrap();

    // Whichever snapshot format the fixture's saves wrote (the paged
    // file under a PAC_POOL_PAGES override): both bootstrap through
    // CRC-checked framing, so every cut must stay a typed error.
    let snap_path = {
        let p = sdir.join(SNAPSHOT_FILE);
        if p.exists() { p } else { sdir.join(PAGED_FILE) }
    };
    let snap_full = std::fs::read(&snap_path).unwrap();
    for cut in [0, 1, 8, 9, 13, snap_full.len() / 2, snap_full.len() - 1] {
        std::fs::write(&snap_path, &snap_full[..cut]).unwrap();
        let err = ShardedStore::<u64, u64>::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. }
                    | StoreError::Truncated(_)
                    | StoreError::BadMagic
                    | StoreError::Corrupt(_)
            ),
            "snapshot cut {cut}: unexpected error {err}"
        );
    }
    std::fs::write(&snap_path, &snap_full).unwrap();

    // Restored intact, everything reads back.
    assert!(check_compact_atomic(&dir, "restored"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_page_writes_and_wal_truncation_during_compact_is_safe() {
    // compact() writes the incremental pages first, truncates the WALs
    // second, and swaps the manifest last. Simulate a crash after the
    // pages landed but before any truncation: covered WAL records and
    // manifest records coexist with pages that already reach them.
    let dir = scratch("compact-crash-window");
    {
        let store = sharded_open(&dir);
        store
            .commit(vec![Op::Put(0, 0), Op::Put(1_000, 0), Op::Put(2_000, 0)])
            .unwrap();
        store.save().unwrap();
        store
            .commit(vec![Op::Put(1, 7), Op::Put(1_001, 7), Op::Put(2_001, 7)])
            .unwrap();
        let pre_compact = capture(&dir);
        store.compact().unwrap();
        drop(store);
        // Put the logs back as if the truncation never happened; the
        // incremental pages stay.
        restore(&dir, &pre_compact);
    }
    for round in 0..2 {
        let store = sharded_open(&dir);
        assert_eq!(store.current_version(), 2, "round {round}: global clock moved");
        for (k, v) in [(0u64, 0u64), (1_000, 0), (2_000, 0), (1, 7), (1_001, 7), (2_001, 7)] {
            assert_eq!(store.get(&k), Some(v), "round {round}: key {k}");
        }
        // The store keeps committing and compacting cleanly.
        if round == 1 {
            store.commit(vec![Op::Put(5, 5)]).unwrap();
            store.compact().unwrap();
        }
        drop(store);
    }
    let store = sharded_open(&dir);
    assert_eq!(store.get(&5), Some(5));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_commits_survive_restart_without_regressing_the_global_clock() {
    // An empty commit produces a manifest record with no participants
    // and no WAL records; recovery must still roll the global clock
    // forward, or the next commit would reuse an acknowledged id and a
    // later reopen would discard it as a duplicate.
    let dir = scratch("empty-commit");
    {
        let store = sharded_open(&dir);
        assert_eq!(store.commit(vec![Op::Put(1, 1)]).unwrap(), 1);
        assert_eq!(store.commit(Vec::new()).unwrap(), 2);
    }
    {
        let store = sharded_open(&dir);
        assert_eq!(store.current_version(), 2, "empty commit lost on reopen");
        // The next commit gets a fresh id and survives another restart.
        assert_eq!(store.commit(vec![Op::Put(2, 2)]).unwrap(), 3);
    }
    let store = sharded_open(&dir);
    assert_eq!(store.current_version(), 3);
    assert_eq!(store.get(&1), Some(1));
    assert_eq!(store.get(&2), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_checkpoint_and_wal_truncation_keeps_the_checkpoint() {
    // save() writes the shard pages, then the manifest checkpoint, then
    // truncates the WALs. A crash before the truncation leaves covered
    // WAL records alongside a participant-less checkpoint for the same
    // global id — recovery must treat both as applied, not tear the
    // checkpoint out of the manifest.
    let dir = scratch("save-crash-window");
    {
        let store = sharded_open(&dir);
        store.commit(vec![Op::Put(1, 1)]).unwrap(); // shard 0 only
        store.commit(vec![Op::Put(2_500, 2)]).unwrap(); // shard 2 only
        let wals_before_save = capture(&dir).wals;
        assert_eq!(store.save().unwrap(), 2);
        let manifest_after_save = capture(&dir).manifest;
        drop(store);
        // Simulate the crash: WALs back to their pre-save contents,
        // checkpoint already on disk.
        restore(
            &dir,
            &FileImage { manifest: manifest_after_save, wals: wals_before_save },
        );
    }
    for round in 0..2 {
        let store = sharded_open(&dir);
        assert_eq!(store.current_version(), 2, "round {round}: global clock regressed");
        assert_eq!(store.get(&1), Some(1), "round {round}");
        assert_eq!(store.get(&2_500), Some(2), "round {round}");
        drop(store);
        assert!(
            !capture(&dir).manifest.is_empty(),
            "round {round}: checkpoint torn out of the manifest"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_wal_records_below_a_checkpoint_are_not_mistaken_for_partial_prepares() {
    // g1 touches shards {0, 1}, g2 touches shard 2, then save(). A
    // crash mid-save can leave one shard's WAL un-truncated while the
    // others are already empty; the stale records sit *below* the
    // checkpoint. Recovery must not judge g1 "partially prepared"
    // (shard 0's record is gone) and cut the checkpoint out of the
    // manifest — the snapshot pages already hold everything.
    let dir = scratch("stale-below-checkpoint");
    {
        let store = sharded_open(&dir);
        store.commit(vec![Op::Put(1, 1), Op::Put(1_001, 1)]).unwrap(); // shards 0, 1
        store.commit(vec![Op::Put(2_001, 2)]).unwrap(); // shard 2
        let wals_before_save = capture(&dir).wals;
        assert_eq!(store.save().unwrap(), 2);
        drop(store);
        // Crash simulation: shard 1's WAL truncation never happened.
        std::fs::write(dir.join(shard_dir_name(1)).join(LOG_FILE), &wals_before_save[1])
            .unwrap();
    }
    for round in 0..2 {
        let store = sharded_open(&dir);
        assert_eq!(store.current_version(), 2, "round {round}: global clock regressed");
        assert_eq!(store.get(&1), Some(1), "round {round}");
        assert_eq!(store.get(&1_001), Some(1), "round {round}");
        assert_eq!(store.get(&2_001), Some(2), "round {round}");
        drop(store);
        assert!(
            !capture(&dir).manifest.is_empty(),
            "round {round}: checkpoint cut out of the manifest"
        );
    }
    // The store keeps working and numbering correctly afterwards.
    let store = sharded_open(&dir);
    assert_eq!(store.commit(vec![Op::Put(5, 5)]).unwrap(), 3);
    drop(store);
    let store = sharded_open(&dir);
    assert_eq!(store.current_version(), 3);
    assert_eq!(store.get(&5), Some(5));
    std::fs::remove_dir_all(&dir).unwrap();
}
