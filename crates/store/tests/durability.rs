//! Durability tests: save/open round trips, log replay, and the
//! corruption-detection satellite — a truncated or bit-flipped snapshot
//! must produce a typed error, never a panic or silent bad data.

use std::path::PathBuf;

use store::{Op, PacStore, StoreError, StoreOptions, LOG_FILE, SNAPSHOT_FILE};

/// A fresh, empty scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pacstore-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn save_and_reopen_serves_same_data() {
    let dir = scratch("save-reopen");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store
            .commit((0..5_000u64).map(|k| Op::Put(k, k * 7)).collect())
            .unwrap();
        store.commit(vec![Op::Delete(17), Op::Put(9_999, 1)]).unwrap();
        assert_eq!(store.save().unwrap(), 2);
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 2);
    assert_eq!(store.len(), 5_000);
    assert_eq!(store.get(&17), None);
    assert_eq!(store.get(&9_999), Some(1));
    assert_eq!(store.get(&4_000), Some(28_000));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn log_replay_recovers_unsaved_commits() {
    let dir = scratch("log-replay");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit((0..100u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
        // These two commits live only in the log.
        store.commit(vec![Op::Put(200, 200), Op::Delete(0)]).unwrap();
        store.commit(vec![Op::Put(201, 201)]).unwrap();
        // No save: drop the handle with the log dirty.
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 3);
    assert_eq!(store.get(&200), Some(200));
    assert_eq!(store.get(&201), Some(201));
    assert_eq!(store.get(&0), None);
    assert_eq!(store.get(&99), Some(99));
    // Replayed versions are reachable for time travel.
    assert_eq!(store.versions(), vec![1, 2, 3]);
    assert_eq!(store.snapshot_at(2).unwrap().get(&201), None);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let dir = scratch("truncate-snap");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit((0..2_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    let path = dir.join(SNAPSHOT_FILE);
    let full = std::fs::read(&path).unwrap();
    // Truncate at a spread of byte positions, including header-only.
    for cut in [0, 1, 7, 8, 9, 12, full.len() / 2, full.len() - 5, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = PacStore::<u64, u64>::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. } | StoreError::Truncated(_) | StoreError::BadMagic
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_snapshot_is_a_checksum_error() {
    let dir = scratch("bitflip-snap");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit((0..2_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    let path = dir.join(SNAPSHOT_FILE);
    let full = std::fs::read(&path).unwrap();
    for byte in [9, 20, full.len() / 2, full.len() - 2] {
        let mut flipped = full.clone();
        flipped[byte] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = PacStore::<u64, u64>::open(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::ChecksumMismatch { .. }),
            "flip at {byte}: unexpected error {err}"
        );
    }
    // Flipping the magic itself reports BadMagic (checked first).
    let mut flipped = full.clone();
    flipped[0] ^= 0xff;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir).unwrap_err(),
        StoreError::BadMagic
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_log_tail_is_truncated_by_default_and_fatal_in_strict_mode() {
    let dir = scratch("torn-log");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 1)]).unwrap();
        store.commit(vec![Op::Put(2, 2)]).unwrap();
    }
    // Simulate a torn write: garbage appended after the last record.
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0x55; 13]);
    std::fs::write(&log_path, &bytes).unwrap();

    // Strict mode refuses.
    let strict = StoreOptions {
        strict_log: true,
        ..StoreOptions::default()
    };
    assert!(matches!(
        PacStore::<u64, u64>::open_with(&dir, strict).unwrap_err(),
        StoreError::Corrupt(_)
    ));

    // Default mode recovers the valid prefix and truncates the tail.
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 2);
    assert_eq!(store.get(&1), Some(1));
    assert_eq!(store.get(&2), Some(2));
    drop(store);
    assert_eq!(std::fs::read(&log_path).unwrap().len(), clean_len);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_handle_on_same_directory_is_locked_out() {
    let dir = scratch("dir-lock");
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    store.commit(vec![Op::Put(1, 1)]).unwrap();
    // A second live handle would interleave versions in the shared log.
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir),
        Err(StoreError::Locked)
    ));
    // Cloned handles share the lock; dropping the last one releases it.
    let clone = store.clone();
    drop(store);
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir),
        Err(StoreError::Locked)
    ));
    drop(clone);
    let reopened: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(reopened.get(&1), Some(1));
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopening_with_different_types_is_a_typed_error() {
    // Saved snapshot: schema check in the page header.
    let dir = scratch("schema-snap");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 300)]).unwrap();
        store.save().unwrap();
    }
    assert!(matches!(
        PacStore::<u64, String>::open(&dir).unwrap_err(),
        StoreError::SchemaMismatch { .. }
    ));
    std::fs::remove_dir_all(&dir).unwrap();

    // Log-only store: schema check in each WAL record.
    let dir = scratch("schema-log");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 300)]).unwrap();
    }
    assert!(matches!(
        PacStore::<u64, String>::open(&dir).unwrap_err(),
        StoreError::SchemaMismatch { .. }
    ));
    // The right types still open it fine.
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.get(&1), Some(300));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_resets_log_and_later_commits_append_cleanly() {
    let dir = scratch("save-resets-log");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        for i in 0..10u64 {
            store.commit(vec![Op::Put(i, i)]).unwrap();
        }
        store.save().unwrap();
        assert_eq!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(), 0);
        store.commit(vec![Op::Put(100, 100)]).unwrap();
        assert!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len() > 0);
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 11);
    assert_eq!(store.len(), 11);
    assert_eq!(store.get(&100), Some(100));
    std::fs::remove_dir_all(&dir).unwrap();
}
