//! Integration tests for the write-path instrumentation: every stage of
//! a commit/checkpoint/GC cycle shows up in the process-wide `obs`
//! registry with the documented series names.
//!
//! The registry is process-global and other tests in this binary (and
//! both store kinds) record into the same series, so every assertion is
//! window-based — take a snapshot before the exercised calls, subtract
//! after — and uses `>=` where concurrent tests could also contribute.

use obs::HistogramSnapshot;
use store::{Op, PacStore, RetentionPolicy, Router, ShardedStore, StoreOptions};

fn window(name: &str, before: &HistogramSnapshot) -> HistogramSnapshot {
    obs::global()
        .histogram_snapshot(name)
        .map(|now| now.delta(before))
        .unwrap_or_default()
}

fn hist_before(name: &str) -> HistogramSnapshot {
    obs::global().histogram_snapshot(name).unwrap_or_default()
}

fn counter(name: &str) -> u64 {
    obs::global().counter_value(name).unwrap_or(0)
}

#[test]
fn pacstore_write_path_records_every_stage() {
    let dir = std::env::temp_dir().join(format!("metrics-pacstore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions { fsync_commits: true, history_limit: 4, ..StoreOptions::default() };

    let commit_before = hist_before("pacstore_commit_ns");
    let wait_before = hist_before("pacstore_commit_ticket_wait_ns");
    let apply_before = hist_before("pacstore_commit_apply_ns");
    let wal_before = hist_before("pacstore_wal_append_ns");
    let fsync_before = hist_before("pacstore_wal_fsync_ns");
    let point_before = hist_before("pacstore_point_read_ns");
    let range_before = hist_before("pacstore_range_read_ns");
    let save_before = hist_before("pacstore_save_ns");
    let gc_before = hist_before("pacstore_gc_ns");
    let compact_before = hist_before("pacstore_compact_ns");
    let snaps_before = counter("pacstore_snapshots_total");
    let pins_before = counter("pacstore_version_pins_total");
    let unpins_before = counter("pacstore_version_unpins_total");
    let dropped_before = counter("pacstore_gc_versions_dropped_total");

    let store: PacStore<u64, u64> = PacStore::open_with(&dir, opts).unwrap();
    const COMMITS: u64 = 5;
    for i in 0..COMMITS {
        store.commit(vec![Op::Put(i, i), Op::Put(i + 100, i)]).unwrap();
    }
    assert_eq!(store.get(&3), Some(3));
    assert_eq!(store.range_entries(&0, &4).len(), 5);
    let snap = store.snapshot();
    assert_eq!(snap.get(&2), Some(2));
    store.pin_version(2).unwrap();
    store.unpin_version(2).unwrap();
    store.gc(RetentionPolicy { keep_last: 1 });
    store.save().unwrap();
    store.commit(vec![Op::Put(999, 1)]).unwrap();
    store.compact().unwrap();

    // Histograms: each stage saw at least the calls made here.
    let commits = window("pacstore_commit_ns", &commit_before).count();
    assert!(commits > COMMITS, "commit window {commits}");
    assert!(window("pacstore_commit_ticket_wait_ns", &wait_before).count() > COMMITS);
    assert!(window("pacstore_commit_apply_ns", &apply_before).count() > COMMITS);
    assert!(window("pacstore_wal_append_ns", &wal_before).count() > COMMITS);
    assert!(window("pacstore_wal_fsync_ns", &fsync_before).count() > COMMITS);
    assert!(window("pacstore_point_read_ns", &point_before).count() >= 1);
    assert!(window("pacstore_range_read_ns", &range_before).count() >= 1);
    assert!(window("pacstore_save_ns", &save_before).count() >= 1);
    assert!(window("pacstore_gc_ns", &gc_before).count() >= 1);
    assert!(window("pacstore_compact_ns", &compact_before).count() >= 1);

    // A latency distribution is ordered and bounded by its extremes.
    let w = window("pacstore_commit_ns", &commit_before);
    assert!(w.min_value() <= w.p50() && w.p50() <= w.p99() && w.p99() <= w.max_value());

    // Counters.
    assert!(counter("pacstore_snapshots_total") > snaps_before);
    assert!(counter("pacstore_version_pins_total") > pins_before);
    assert!(counter("pacstore_version_unpins_total") > unpins_before);
    assert!(counter("pacstore_gc_versions_dropped_total") > dropped_before);

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_store_labels_shards_and_times_compaction_phases() {
    let dir = std::env::temp_dir().join(format!("metrics-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let shard1_before = hist_before("pacstore_wal_append_ns{shard=\"001\"}");
    let manifest_before = hist_before("pacstore_manifest_append_ns");
    let pages_before = hist_before("pacstore_compact_pages_ns");
    let truncate_before = hist_before("pacstore_compact_truncate_ns");
    let pages_written_before = counter("pacstore_pages_written_total");

    let store: ShardedStore<u64, u64> = ShardedStore::open_or_create(
        &dir,
        Router::uniform_span(2, 1_000),
        StoreOptions::default(),
    )
    .unwrap();
    store.commit(vec![Op::Put(1, 1), Op::Put(900, 9)]).unwrap();
    store.save().unwrap();
    store.commit(vec![Op::Put(2, 2), Op::Put(901, 10)]).unwrap();
    store.compact().unwrap();

    // The upper shard's WAL append surfaced under its own label.
    assert!(window("pacstore_wal_append_ns{shard=\"001\"}", &shard1_before).count() >= 2);
    assert!(window("pacstore_manifest_append_ns", &manifest_before).count() >= 2);
    // Both compaction phases were timed, and pages actually hit disk.
    assert!(window("pacstore_compact_pages_ns", &pages_before).count() >= 1);
    assert!(window("pacstore_compact_truncate_ns", &truncate_before).count() >= 1);
    assert!(counter("pacstore_pages_written_total") > pages_written_before);

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pool_stats_publish_gauges_and_counter_deltas() {
    let dir = std::env::temp_dir().join(format!("metrics-pool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions { pool_pages: Some(4), ..StoreOptions::default() };

    let misses_before = counter("pacstore_pool_misses_total");

    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, opts.clone()).unwrap();
        store.commit((0..20_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    let store: PacStore<u64, u64> = PacStore::open_with(&dir, opts).unwrap();
    assert_eq!(store.get(&7), Some(7)); // pages in one leaf (a pool miss)
    let s = store.pool_stats().unwrap(); // publishes into the registry

    // Gauges mirror the snapshot just taken.
    let gauge = |name: &str| obs::global().gauge_value(name).unwrap_or(i64::MIN);
    assert_eq!(gauge("pacstore_pool_capacity_pages"), 4);
    assert_eq!(gauge("pacstore_pool_resident_pages"), s.resident_pages as i64);
    assert_eq!(gauge("pacstore_pool_resident_bytes"), s.resident_bytes as i64);
    assert_eq!(gauge("pacstore_pool_pinned_pages"), s.pinned_pages as i64);

    // Counters advanced by at least this store's activity; a second
    // publish with no intervening pool traffic adds nothing (deltas,
    // not re-counted snapshots).
    assert!(counter("pacstore_pool_misses_total") > misses_before);
    let hits_mid = counter("pacstore_pool_hits_total");
    let misses_mid = counter("pacstore_pool_misses_total");
    assert_eq!(store.pool_stats().unwrap(), s);
    assert_eq!(counter("pacstore_pool_hits_total"), hits_mid);
    assert_eq!(counter("pacstore_pool_misses_total"), misses_mid);

    // Both scrape formats carry the pool series.
    let text = obs::global().render_text();
    for series in [
        "# TYPE pacstore_pool_resident_bytes gauge",
        "# TYPE pacstore_pool_pinned_pages gauge",
        "pacstore_pool_hits_total",
        "pacstore_pool_misses_total",
        "pacstore_pool_evictions_total",
    ] {
        assert!(text.contains(series), "render_text missing {series}:\n{text}");
    }
    let json = obs::global().snapshot_json();
    for key in ["\"pacstore_pool_resident_bytes\"", "\"pacstore_pool_misses_total\""] {
        assert!(json.contains(key), "snapshot_json missing {key}");
    }

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn render_text_exposes_the_write_path_schema() {
    // Make sure at least one store existed in this process.
    let store: PacStore<u64, u64> = PacStore::in_memory();
    store.commit(vec![Op::Put(1, 1)]).unwrap();

    let text = obs::global().render_text();
    for series in [
        "pacstore_commit_ns",
        "pacstore_commit_ticket_wait_ns",
        "pacstore_commit_apply_ns",
        "pacstore_wal_append_ns",
        "pacstore_snapshots_total",
        "cpam_node_allocs_total",
    ] {
        assert!(text.contains(series), "render_text missing {series}:\n{text}");
    }
    // Quantile labels render inside the name's label set.
    assert!(text.contains("quantile=\"0.99\""));

    let json = obs::global().snapshot_json();
    for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "pacstore_commit_ns"] {
        assert!(json.contains(key), "snapshot_json missing {key}");
    }
}
