//! End-to-end tests of the paged snapshot format and buffer-pool
//! residency: out-of-core opens (`StoreOptions::pool_pages`), format
//! interop with the classic snapshot, incremental chains and WAL replay
//! on a lazy base, and the sharded store's per-shard pools.

use store::{
    Op, PacStore, Router, ShardedStore, StoreOptions, LOG_FILE, PAGED_FILE, SNAPSHOT_FILE,
};

use std::path::PathBuf;

/// A fresh, empty scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pacpaging-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pooled(pages: usize) -> StoreOptions {
    StoreOptions { pool_pages: Some(pages), ..StoreOptions::default() }
}

/// Explicitly classic-format options: these tests assert which snapshot
/// file a save writes, so they must not inherit a `PAC_POOL_PAGES`
/// override through `StoreOptions::default()`.
fn unpooled() -> StoreOptions {
    StoreOptions { pool_pages: None, ..StoreOptions::default() }
}

const N: u64 = 50_000;

#[test]
fn paged_open_is_lazy_and_residency_is_bounded() {
    let dir = scratch("lazy-open");
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(8)).unwrap();
        store.commit((0..N).map(|k| Op::Put(k, k * 3)).collect()).unwrap();
        store.save().unwrap();
    }
    assert!(dir.join(PAGED_FILE).exists());
    assert!(!dir.join(SNAPSHOT_FILE).exists());

    let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(8)).unwrap();
    let s = store.pool_stats().expect("pooled store has stats");
    // Opening read structure only — not one data page.
    assert_eq!(s.misses, 0, "open touched {} pages", s.misses);
    assert_eq!(store.len(), N as usize);

    // A point query pages in O(1) leaves.
    assert_eq!(store.get(&30_000), Some(90_000));
    let s = store.pool_stats().unwrap();
    assert!(s.misses <= 2, "point query loaded {} pages", s.misses);

    // A full scan streams every page; the cache never exceeds budget.
    let snap = store.snapshot();
    assert_eq!(snap.map().iter().count(), N as usize);
    let s = store.pool_stats().unwrap();
    assert!(s.resident_pages <= 8, "resident {} pages", s.resident_pages);
    assert!(s.evictions > 0);
    // Budget bound in bytes: at most capacity × (largest block), and a
    // u64 pair block at default b=128 is ≤ 256 entries × 16 bytes plus
    // headers — use a generous 64 KiB/page ceiling.
    assert!(s.resident_bytes <= 8 * 64 * 1024, "resident {} bytes", s.resident_bytes);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn paged_and_classic_formats_interoperate() {
    let dir = scratch("interop");
    // Classic save...
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, unpooled()).unwrap();
        store.commit((0..1_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    assert!(dir.join(SNAPSHOT_FILE).exists());
    // ...opened by a pooled handle (falls back to the classic chain),
    // which then saves in the paged format and removes the classic file.
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(4)).unwrap();
        assert_eq!(store.len(), 1_000);
        store.commit(vec![Op::Put(5_000, 1)]).unwrap();
        store.save().unwrap();
    }
    assert!(dir.join(PAGED_FILE).exists());
    assert!(!dir.join(SNAPSHOT_FILE).exists());
    // ...opened by an unpooled handle (eager paged read), which saves
    // classic again.
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, unpooled()).unwrap();
        assert_eq!(store.len(), 1_001);
        assert_eq!(store.get(&5_000), Some(1));
        assert!(store.pool_stats().is_none());
        store.save().unwrap();
    }
    assert!(dir.join(SNAPSHOT_FILE).exists());
    assert!(!dir.join(PAGED_FILE).exists());
    let store: PacStore<u64, u64> = PacStore::open_with(&dir, unpooled()).unwrap();
    assert_eq!(store.len(), 1_001);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_paged_file_loses_to_newer_classic() {
    let dir = scratch("stale-paged");
    // Paged save at version 1...
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(4)).unwrap();
        store.commit(vec![Op::Put(1, 1)]).unwrap();
        store.save().unwrap();
    }
    let paged_bytes = std::fs::read(dir.join(PAGED_FILE)).unwrap();
    // ...superseded by a classic save at version 2, then the stale
    // paged file "survives a crash" (we resurrect it by hand).
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, unpooled()).unwrap();
        store.commit(vec![Op::Put(2, 2)]).unwrap();
        store.save().unwrap();
    }
    std::fs::write(dir.join(PAGED_FILE), &paged_bytes).unwrap();
    // Both formats present: the newer classic version must win, under
    // either opening mode.
    let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(4)).unwrap();
    assert_eq!(store.current_version(), 2);
    assert_eq!(store.get(&2), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incrementals_and_wal_replay_chain_onto_lazy_base() {
    let dir = scratch("lazy-chain");
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(8)).unwrap();
        store.commit((0..20_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
        store.save().unwrap();
    }
    {
        // Reopen lazily, commit on top of the lazy base, checkpoint
        // incrementally (Arc-identity diff against the lazy tree), then
        // leave one commit in the WAL only.
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(8)).unwrap();
        store.commit(vec![Op::Put(50_000, 1), Op::Delete(7)]).unwrap();
        store.compact().unwrap();
        store.commit(vec![Op::Put(50_001, 2)]).unwrap();
        assert!(dir.join(LOG_FILE).metadata().unwrap().len() > 0);
    }
    let store: PacStore<u64, u64> = PacStore::open_with(&dir, pooled(8)).unwrap();
    assert_eq!(store.current_version(), 3);
    assert_eq!(store.len(), 20_001);
    assert_eq!(store.get(&50_000), Some(1));
    assert_eq!(store.get(&50_001), Some(2));
    assert_eq!(store.get(&7), None);
    assert_eq!(store.get(&19_999), Some(19_999));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_paged_store_keeps_per_shard_pools() {
    let dir = scratch("sharded-paged");
    let router = Router::uniform_span(4, N);
    {
        let store: ShardedStore<u64, u64> =
            ShardedStore::open_or_create(&dir, router.clone(), pooled(4)).unwrap();
        store.commit((0..N).map(|k| Op::Put(k, k + 1)).collect()).unwrap();
        store.save().unwrap();
    }
    let store: ShardedStore<u64, u64> =
        ShardedStore::open_or_create(&dir, router, pooled(4)).unwrap();
    let total = store.pool_stats().expect("pooled sharded store has stats");
    assert_eq!(total.misses, 0, "sharded open touched {} pages", total.misses);
    assert_eq!(total.capacity_pages, 16, "4 shards × 4 pages");
    assert_eq!(store.len(), N as usize);

    // Queries on different shards fill different pools.
    assert_eq!(store.get(&10), Some(11));
    assert_eq!(store.get(&(N - 10)), Some(N - 9));
    let per_shard = store.shard_pool_stats().unwrap();
    assert_eq!(per_shard.len(), 4);
    assert!(per_shard.iter().filter(|s| s.misses > 0).count() >= 2);

    // A full scan stays within every shard's budget.
    let snap = store.snapshot();
    assert_eq!(snap.to_vec().len(), N as usize);
    for (i, s) in store.shard_pool_stats().unwrap().iter().enumerate() {
        assert!(s.resident_pages <= 4, "shard {i} resident {} pages", s.resident_pages);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unpooled_stores_report_no_pool() {
    let dir = scratch("unpooled");
    let store: PacStore<u64, u64> = PacStore::open_with(&dir, unpooled()).unwrap();
    assert!(store.pool_stats().is_none());
    drop(store);
    let mem: PacStore<u64, u64> = PacStore::in_memory_with(pooled(8));
    // An in-memory store has no pages to cache; pool_pages is inert.
    assert!(mem.pool_stats().is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}
