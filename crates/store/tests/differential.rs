//! Differential tests: a [`ShardedStore`] driven by randomized op
//! sequences against a `BTreeMap` oracle, across the block-size ×
//! shard-count grid. Every divergence panics with the exact
//! reproducing seed (`PROPTEST_SEED=<n>`), and setting that variable
//! replays just that sequence on every configuration.
//!
//! The default volume is 1000 sequences per configuration
//! (`DIFF_CASES` overrides it); sequences are deliberately small so the
//! whole grid stays well under a minute in debug builds.
//!
//! The second half is the *lifecycle* differential suite: durable
//! stores driven through random interleavings of commits with `gc`,
//! `compact`, `save`, `save_incremental`, and full reopens — the oracle
//! must survive every maintenance operation, pinned snapshots must stay
//! readable after GC, and unpinned history must actually disappear.
//! (`DIFF_LIFECYCLE_CASES` overrides its volume, default 50.)

use std::collections::BTreeMap;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{Op, PacStore, RetentionPolicy, Router, ShardedStore, StoreError, StoreOptions};

/// Keys are drawn a little past the routed span so the last shard's
/// open upper range is exercised too.
const KEY_SPAN: u64 = 96;

fn cases() -> u64 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

/// One randomized sequence: a handful of commits, each compared
/// entry-for-entry against the oracle, plus point and range probes.
fn run_one(seed: u64, b: usize, shards: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = StoreOptions {
        block_size: b,
        history_limit: 4,
        ..StoreOptions::default()
    };
    let store: ShardedStore<u64, u32> =
        ShardedStore::in_memory_with(Router::uniform_span(shards, KEY_SPAN), opts)
            .map_err(|e| e.to_string())?;
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();

    let commits = 1 + rng.gen_range(0..5usize);
    for c in 0..commits {
        let len = rng.gen_range(0..20usize);
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            if rng.gen_range(0..10) < 7 {
                let v = rng.gen_range(0..1_000u32);
                oracle.insert(k, v);
                ops.push(Op::Put(k, v));
            } else {
                oracle.remove(&k);
                ops.push(Op::Delete(k));
            }
        }
        store.commit(ops).map_err(|e| format!("commit {c}: {e}"))?;

        let snap = store.snapshot();
        if snap.len() != oracle.len() {
            return Err(format!(
                "after commit {c}: len {} != oracle {}",
                snap.len(),
                oracle.len()
            ));
        }
        let got = snap.to_vec();
        let want: Vec<(u64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        if got != want {
            return Err(format!(
                "after commit {c}: contents diverge\n  store : {got:?}\n  oracle: {want:?}"
            ));
        }

        // Point probes, including misses.
        for _ in 0..4 {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            if snap.get(&k) != oracle.get(&k).copied() {
                return Err(format!(
                    "after commit {c}: get({k}) = {:?}, oracle {:?}",
                    snap.get(&k),
                    oracle.get(&k)
                ));
            }
            if snap.contains_key(&k) != oracle.contains_key(&k) {
                return Err(format!("after commit {c}: contains_key({k}) diverges"));
            }
        }

        // A random inclusive range, spanning shard boundaries.
        let a = rng.gen_range(0..KEY_SPAN);
        let z = rng.gen_range(0..KEY_SPAN);
        let (lo, hi) = (a.min(z), a.max(z));
        let got = snap.range_entries(&lo, &hi);
        let want: Vec<(u64, u32)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        if got != want {
            return Err(format!(
                "after commit {c}: range [{lo}, {hi}] diverges\n  store : {got:?}\n  oracle: {want:?}"
            ));
        }
    }

    // The version vector reflects exactly the commits each shard took
    // part in: its sum cannot exceed commits * shards, and the global
    // version equals the commit count.
    if store.current_version() != commits as u64 {
        return Err(format!(
            "global version {} != commit count {commits}",
            store.current_version()
        ));
    }
    Ok(())
}

/// Drives `cases()` sequences (or the single `PROPTEST_SEED` sequence)
/// through one (block size, shard count) configuration.
fn run_config(b: usize, shards: usize) {
    let salt = (b as u64) << 32 | shards as u64;
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15), cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_one(seed, b, shards) {
            panic!(
                "sharded-store differential divergence (b={b}, shards={shards}): {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p store --test differential"
            );
        }
    }
}

macro_rules! differential_grid {
    ($($name:ident: ($b:expr, $shards:expr),)*) => {
        $(
            #[test]
            fn $name() {
                run_config($b, $shards);
            }
        )*
    };
}

// The full ISSUE grid: B ∈ {1, 2, 8, 32, 128} × shards ∈ {1, 2, 7}.
differential_grid! {
    diff_b1_s1: (1, 1),
    diff_b1_s2: (1, 2),
    diff_b1_s7: (1, 7),
    diff_b2_s1: (2, 1),
    diff_b2_s2: (2, 2),
    diff_b2_s7: (2, 7),
    diff_b8_s1: (8, 1),
    diff_b8_s2: (8, 2),
    diff_b8_s7: (8, 7),
    diff_b32_s1: (32, 1),
    diff_b32_s2: (32, 2),
    diff_b32_s7: (32, 7),
    diff_b128_s1: (128, 1),
    diff_b128_s2: (128, 2),
    diff_b128_s7: (128, 7),
}

// ---------------------------------------------------------------------
// Lifecycle differential suite: maintenance must be invisible
// ---------------------------------------------------------------------

fn lifecycle_cases() -> u64 {
    std::env::var("DIFF_LIFECYCLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Per-sequence scratch directory; (b, shards, seed) makes it unique
/// across the parallel test grid.
fn lifecycle_scratch(b: usize, shards: usize, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pacstore-diff-lc-{b}-{shards}-{seed:016x}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Verifies the store against the oracle and every pinned snapshot
/// against the contents captured when it was pinned.
fn check_lifecycle_state(
    store: &ShardedStore<u64, u32>,
    oracle: &BTreeMap<u64, u32>,
    pins: &[(u64, BTreeMap<u64, u32>)],
    context: &str,
) -> Result<(), String> {
    let got = store.snapshot().to_vec();
    let want: Vec<(u64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    if got != want {
        return Err(format!(
            "{context}: current contents diverge\n  store : {got:?}\n  oracle: {want:?}"
        ));
    }
    for (version, copy) in pins {
        let snap = store
            .snapshot_at(*version)
            .map_err(|e| format!("{context}: pinned version {version} unreadable: {e}"))?;
        let got = snap.to_vec();
        let want: Vec<(u64, u32)> = copy.iter().map(|(&k, &v)| (k, v)).collect();
        if got != want {
            return Err(format!(
                "{context}: pinned version {version} diverges\n  store : {got:?}\n  oracle: {want:?}"
            ));
        }
    }
    Ok(())
}

/// One randomized lifecycle sequence: a durable sharded store driven
/// through commits interleaved with `save`, `compact`, `gc`, pins, and
/// full reopens. The oracle must survive every maintenance action,
/// pinned snapshots must stay readable (and exact) through GC and
/// compaction, and history GC actually drops must become
/// `VersionNotFound`.
fn run_lifecycle_one(seed: u64, b: usize, shards: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_D1FF_E4E2);
    let dir = lifecycle_scratch(b, shards, seed);
    let opts = StoreOptions {
        block_size: b,
        history_limit: 5,
        ..StoreOptions::default()
    };
    let open = |dir: &PathBuf| -> Result<ShardedStore<u64, u32>, String> {
        ShardedStore::open_or_create(dir, Router::uniform_span(shards, KEY_SPAN), opts.clone())
            .map_err(|e| format!("open: {e}"))
    };
    let mut store = open(&dir)?;
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
    // Pinned version -> contents captured at pin time.
    let mut pins: Vec<(u64, BTreeMap<u64, u32>)> = Vec::new();

    let rounds = 6 + rng.gen_range(0..8usize);
    for round in 0..rounds {
        let roll = rng.gen_range(0..100u32);
        if roll < 50 {
            // Commit a random batch.
            let len = 1 + rng.gen_range(0..12usize);
            let mut ops = Vec::with_capacity(len);
            for _ in 0..len {
                let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
                if rng.gen_range(0..10) < 7 {
                    let v = rng.gen_range(0..1_000u32);
                    oracle.insert(k, v);
                    ops.push(Op::Put(k, v));
                } else {
                    oracle.remove(&k);
                    ops.push(Op::Delete(k));
                }
            }
            store.commit(ops).map_err(|e| format!("round {round} commit: {e}"))?;
            check_lifecycle_state(&store, &oracle, &pins, &format!("round {round} after commit"))?;
        } else if roll < 60 {
            // Full checkpoint.
            store.save().map_err(|e| format!("round {round} save: {e}"))?;
            check_lifecycle_state(&store, &oracle, &pins, &format!("round {round} after save"))?;
        } else if roll < 73 {
            // Checkpoint-then-truncate (incremental pages after the
            // first save).
            store.compact().map_err(|e| format!("round {round} compact: {e}"))?;
            check_lifecycle_state(&store, &oracle, &pins, &format!("round {round} after compact"))?;
        } else if roll < 83 {
            // GC under a random retention window: retained versions are
            // a subset of what was there, everything dropped becomes
            // VersionNotFound, and pins always survive.
            let before = store.versions();
            let keep = 1 + rng.gen_range(0..3usize);
            store.gc(RetentionPolicy::keep_last(keep));
            let after = store.versions();
            for v in &before {
                if !after.contains(v) {
                    match store.snapshot_at(*v) {
                        Err(StoreError::VersionNotFound(got)) if got == *v => {}
                        other => {
                            return Err(format!(
                                "round {round}: gc-dropped version {v} still resolves: {other:?}"
                            ));
                        }
                    }
                    if pins.iter().any(|(p, _)| p == v) {
                        return Err(format!("round {round}: gc dropped pinned version {v}"));
                    }
                }
            }
            check_lifecycle_state(&store, &oracle, &pins, &format!("round {round} after gc"))?;
        } else if roll < 90 {
            // Pin the current version (or release a random pin).
            let cur = store.current_version();
            if !pins.iter().any(|(p, _)| *p == cur) && rng.gen_range(0..4) > 0 {
                store
                    .pin_version(cur)
                    .map_err(|e| format!("round {round} pin {cur}: {e}"))?;
                pins.push((cur, oracle.clone()));
            } else if !pins.is_empty() {
                let i = rng.gen_range(0..pins.len());
                let (version, _) = pins.swap_remove(i);
                store
                    .unpin_version(version)
                    .map_err(|e| format!("round {round} unpin {version}: {e}"))?;
            }
            check_lifecycle_state(&store, &oracle, &pins, &format!("round {round} after pin"))?;
        } else {
            // Full reopen. Pins are in-memory only, so they do not
            // survive the handle: forget them, but the current contents
            // and version must come back exactly.
            let version = store.current_version();
            drop(store);
            pins.clear();
            store = open(&dir)?;
            if store.current_version() != version {
                return Err(format!(
                    "round {round}: reopen lost commits: version {} != {version}",
                    store.current_version()
                ));
            }
            check_lifecycle_state(&store, &oracle, &pins, &format!("round {round} after reopen"))?;
        }
    }

    check_lifecycle_state(&store, &oracle, &pins, "final")?;
    drop(store);
    std::fs::remove_dir_all(&dir).map_err(|e| format!("cleanup: {e}"))?;
    Ok(())
}

/// The single-store analogue, which exercises `save_incremental`
/// directly (the sharded path only reaches it through `compact`):
/// commits interleaved with explicit incremental checkpoints against
/// the latest checkpoint, GC, and reopens. A `save_incremental`
/// against a stale base must be a typed [`StoreError::CheckpointMismatch`].
fn run_lifecycle_pac(seed: u64, b: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1D1F_F35A_7E11_13E5);
    // Shard count 0 never collides with the sharded runner's dirs.
    let dir = lifecycle_scratch(b, 0, seed);
    let opts = StoreOptions {
        block_size: b,
        history_limit: 5,
        ..StoreOptions::default()
    };
    let open = |dir: &PathBuf| -> Result<PacStore<u64, u32>, String> {
        PacStore::open_with(dir, opts.clone()).map_err(|e| format!("open: {e}"))
    };
    let check = |store: &PacStore<u64, u32>,
                 oracle: &BTreeMap<u64, u32>,
                 context: &str|
     -> Result<(), String> {
        let got = store.snapshot().map().to_vec();
        let want: Vec<(u64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        if got != want {
            return Err(format!(
                "{context}: contents diverge\n  store : {got:?}\n  oracle: {want:?}"
            ));
        }
        Ok(())
    };
    let mut store = open(&dir)?;
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();

    let rounds = 6 + rng.gen_range(0..8usize);
    for round in 0..rounds {
        let roll = rng.gen_range(0..100u32);
        if roll < 55 {
            let len = 1 + rng.gen_range(0..12usize);
            let mut ops = Vec::with_capacity(len);
            for _ in 0..len {
                let k = rng.gen_range(0..KEY_SPAN);
                if rng.gen_range(0..10) < 7 {
                    let v = rng.gen_range(0..1_000u32);
                    oracle.insert(k, v);
                    ops.push(Op::Put(k, v));
                } else {
                    oracle.remove(&k);
                    ops.push(Op::Delete(k));
                }
            }
            store.commit(ops).map_err(|e| format!("round {round} commit: {e}"))?;
        } else if roll < 75 {
            // Incremental checkpoint against the latest base (a full
            // save establishes the first base), then probe that a stale
            // base is rejected with a typed error rather than silently
            // chained.
            match store.latest_checkpoint() {
                Some(base) => {
                    store
                        .save_incremental(base)
                        .map_err(|e| format!("round {round} save_incremental({base}): {e}"))?;
                }
                None => {
                    store.save().map_err(|e| format!("round {round} save: {e}"))?;
                }
            }
            if let Some(ck) = store.latest_checkpoint() {
                if ck > 0 {
                    match store.save_incremental(ck - 1) {
                        Err(StoreError::CheckpointMismatch { requested, actual }) => {
                            if requested != ck - 1 || actual != Some(ck) {
                                return Err(format!(
                                    "round {round}: mismatch fields wrong: \
                                     requested {requested}, actual {actual:?}, checkpoint {ck}"
                                ));
                            }
                        }
                        other => {
                            return Err(format!(
                                "round {round}: stale incremental base accepted: {other:?}"
                            ));
                        }
                    }
                }
            }
        } else if roll < 85 {
            let before = store.versions();
            let keep = 1 + rng.gen_range(0..3usize);
            store.gc(RetentionPolicy::keep_last(keep));
            for v in &before {
                if !store.versions().contains(v) {
                    match store.snapshot_at(*v) {
                        Err(StoreError::VersionNotFound(got)) if got == *v => {}
                        other => {
                            return Err(format!(
                                "round {round}: gc-dropped version {v} still resolves: {other:?}"
                            ));
                        }
                    }
                }
            }
        } else {
            let version = store.current_version();
            drop(store);
            store = open(&dir)?;
            if store.current_version() != version {
                return Err(format!(
                    "round {round}: reopen lost commits: version {} != {version}",
                    store.current_version()
                ));
            }
        }
        check(&store, &oracle, &format!("round {round}"))?;
    }

    drop(store);
    std::fs::remove_dir_all(&dir).map_err(|e| format!("cleanup: {e}"))?;
    Ok(())
}

/// Drives the single-store lifecycle runner across one block size.
fn run_lifecycle_pac_config(b: usize) {
    let salt = 0x9AC0_0000_0000_0000u64 | (b as u64) << 24;
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15), lifecycle_cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_lifecycle_pac(seed, b) {
            panic!(
                "pac-store lifecycle differential divergence (b={b}): {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p store --test differential"
            );
        }
    }
}

#[test]
fn lifecycle_pac_b2() {
    run_lifecycle_pac_config(2);
}

#[test]
fn lifecycle_pac_b32() {
    run_lifecycle_pac_config(32);
}

/// Drives `lifecycle_cases()` sequences (or the single `PROPTEST_SEED`
/// sequence) through one (block size, shard count) configuration.
fn run_lifecycle_config(b: usize, shards: usize) {
    let salt = 0x11FE_0000_0000_0000u64 | (b as u64) << 24 | shards as u64;
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15), lifecycle_cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_lifecycle_one(seed, b, shards) {
            panic!(
                "lifecycle differential divergence (b={b}, shards={shards}): {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p store --test differential"
            );
        }
    }
}

macro_rules! lifecycle_grid {
    ($($name:ident: ($b:expr, $shards:expr),)*) => {
        $(
            #[test]
            fn $name() {
                run_lifecycle_config($b, $shards);
            }
        )*
    };
}

// Durable sequences are slower than the in-memory grid, so the
// lifecycle grid covers the block-size extremes and middle against
// every shard count rather than the full cross product.
lifecycle_grid! {
    lifecycle_b1_s1: (1, 1),
    lifecycle_b1_s2: (1, 2),
    lifecycle_b1_s7: (1, 7),
    lifecycle_b8_s1: (8, 1),
    lifecycle_b8_s2: (8, 2),
    lifecycle_b8_s7: (8, 7),
    lifecycle_b128_s1: (128, 1),
    lifecycle_b128_s2: (128, 2),
    lifecycle_b128_s7: (128, 7),
}

// ---------------------------------------------------------------------
// Out-of-core differential suite: the pool budget must be invisible
// ---------------------------------------------------------------------
//
// One deterministic script of commits, saves, compacts, reopens, and
// probes is generated per seed, then replayed on three configurations —
// `pool_pages` 8 (heavy eviction), 64 (mostly resident), and `None`
// (classic eager format) — each checked against its own `BTreeMap`
// oracle after every step. The cache budget may only change *when*
// pages are read, never *what* any query returns; at the tiny setting
// the replay also asserts residency stays within budget while the data
// set is many times larger. (`DIFF_OOC_CASES` overrides the volume,
// default 5 — the script is durable and deliberately large.)

/// Steps of one out-of-core script; concrete ops so every replay is
/// identical by construction.
enum OocStep {
    Commit(Vec<Op<u64, u32>>),
    Save,
    Compact,
    Reopen,
    /// Point probes + one inclusive range probe.
    Probe(Vec<u64>, u64, u64),
}

const OOC_SPAN: u64 = 12_000;

fn ooc_cases() -> u64 {
    std::env::var("DIFF_OOC_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Generates the per-seed script: a bulk load that far exceeds the
/// small pool budget, a save + reopen (so later steps run on a lazy
/// base), then randomized maintenance rounds.
fn ooc_script(seed: u64) -> Vec<OocStep> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0_FFEE_0B1D_FACE);
    let mut steps = vec![
        OocStep::Commit((0..8_000u64).map(|k| Op::Put(k, (k % 997) as u32)).collect()),
        OocStep::Save,
        OocStep::Reopen,
        // Scan the freshly reopened, fully-lazy base: on the 8-page pool
        // this is guaranteed eviction pressure (~60 pages through 8 slots).
        OocStep::Probe(Vec::new(), 0, OOC_SPAN),
    ];
    let rounds = 5 + rng.gen_range(0..6usize);
    for _ in 0..rounds {
        match rng.gen_range(0..100u32) {
            0..=54 => {
                let len = 1 + rng.gen_range(0..40usize);
                let mut ops = Vec::with_capacity(len);
                for _ in 0..len {
                    let k = rng.gen_range(0..OOC_SPAN);
                    if rng.gen_range(0..10) < 7 {
                        ops.push(Op::Put(k, rng.gen_range(0..1_000u32)));
                    } else {
                        ops.push(Op::Delete(k));
                    }
                }
                steps.push(OocStep::Commit(ops));
            }
            55..=64 => steps.push(OocStep::Save),
            65..=79 => steps.push(OocStep::Compact),
            80..=89 => steps.push(OocStep::Reopen),
            _ => {
                let probes = (0..12).map(|_| rng.gen_range(0..OOC_SPAN)).collect();
                let a = rng.gen_range(0..OOC_SPAN);
                let z = rng.gen_range(0..OOC_SPAN);
                steps.push(OocStep::Probe(probes, a.min(z), a.max(z)));
            }
        }
    }
    // Every script ends scanning everything on a freshly reopened
    // handle — on the tiny pool that is the maximal-eviction path.
    steps.push(OocStep::Reopen);
    steps.push(OocStep::Probe(Vec::new(), 0, OOC_SPAN));
    steps
}

/// Replays `steps` on one pool configuration against a fresh oracle.
fn ooc_exec(seed: u64, pool: Option<usize>, steps: &[OocStep]) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!(
        "pacstore-diff-ooc-{}-{seed:016x}",
        pool.map_or("none".into(), |p| p.to_string())
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions { pool_pages: pool, ..StoreOptions::default() };
    let open = |dir: &PathBuf| -> Result<PacStore<u64, u32>, String> {
        PacStore::open_with(dir, opts.clone()).map_err(|e| format!("open: {e}"))
    };
    let mut store = open(&dir)?;
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
    // Pools are per-handle; accumulate the monotone fields across
    // reopens so the end-of-script sanity check sees the whole replay.
    let mut cum_misses = 0u64;
    let mut cum_evictions = 0u64;

    for (i, step) in steps.iter().enumerate() {
        match step {
            OocStep::Commit(ops) => {
                for op in ops {
                    match op {
                        Op::Put(k, v) => {
                            oracle.insert(*k, *v);
                        }
                        Op::Delete(k) => {
                            oracle.remove(k);
                        }
                    }
                }
                store.commit(ops.clone()).map_err(|e| format!("step {i} commit: {e}"))?;
            }
            OocStep::Save => {
                store.save().map_err(|e| format!("step {i} save: {e}"))?;
            }
            OocStep::Compact => {
                store.compact().map_err(|e| format!("step {i} compact: {e}"))?;
            }
            OocStep::Reopen => {
                let version = store.current_version();
                if let Some(s) = store.pool_stats() {
                    cum_misses += s.misses;
                    cum_evictions += s.evictions;
                }
                drop(store);
                store = open(&dir)?;
                if store.current_version() != version {
                    return Err(format!(
                        "step {i}: reopen lost commits: version {} != {version}",
                        store.current_version()
                    ));
                }
            }
            OocStep::Probe(points, lo, hi) => {
                if store.len() != oracle.len() {
                    return Err(format!(
                        "step {i}: len {} != oracle {}",
                        store.len(),
                        oracle.len()
                    ));
                }
                for k in points {
                    if store.get(k) != oracle.get(k).copied() {
                        return Err(format!(
                            "step {i}: get({k}) = {:?}, oracle {:?}",
                            store.get(k),
                            oracle.get(k)
                        ));
                    }
                }
                let got = store.range_entries(lo, hi);
                let want: Vec<(u64, u32)> =
                    oracle.range(*lo..=*hi).map(|(&k, &v)| (k, v)).collect();
                if got != want {
                    return Err(format!(
                        "step {i}: range [{lo}, {hi}] diverges ({} vs {} entries)",
                        got.len(),
                        want.len()
                    ));
                }
            }
        }
        // The cache budget is a hard bound at every step, not just at
        // quiescence.
        if let (Some(budget), Some(s)) = (pool, store.pool_stats()) {
            if s.resident_pages > budget {
                return Err(format!(
                    "step {i}: resident {} pages over budget {budget}",
                    s.resident_pages
                ));
            }
        }
    }

    // Configuration sanity: the tiny pool actually worked out-of-core
    // (the replay paged and evicted — the data set exceeds 8 pages),
    // and `None` reports no pool at all.
    match (pool, store.pool_stats()) {
        (Some(budget), Some(s)) => {
            cum_misses += s.misses;
            cum_evictions += s.evictions;
            if budget == 8 && (cum_misses <= 8 || cum_evictions == 0) {
                return Err(format!(
                    "8-page replay never worked out-of-core: \
                     {cum_misses} misses, {cum_evictions} evictions"
                ));
            }
        }
        (None, Some(_)) => return Err("classic replay reports pool stats".into()),
        _ => {}
    }

    drop(store);
    std::fs::remove_dir_all(&dir).map_err(|e| format!("cleanup: {e}"))?;
    Ok(())
}

#[test]
fn out_of_core_grid_pool_budget_is_invisible() {
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => (0x00Cu64.wrapping_mul(0x9E37_79B9_7F4A_7C15), ooc_cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        let steps = ooc_script(seed);
        for pool in [Some(8), Some(64), None] {
            if let Err(msg) = ooc_exec(seed, pool, &steps) {
                panic!(
                    "out-of-core differential divergence (pool_pages={pool:?}): {msg}\n\
                     reproduce with: PROPTEST_SEED={seed} cargo test -p store --test differential"
                );
            }
        }
    }
}

/// The oracle harness must actually catch divergences: a store with a
/// deliberately wrong routing assertion fails loudly, proving the
/// comparison is not vacuous.
#[test]
fn harness_detects_injected_divergence() {
    let store: ShardedStore<u64, u32> =
        ShardedStore::in_memory(Router::uniform_span(2, KEY_SPAN)).unwrap();
    store.commit(vec![Op::Put(1, 10)]).unwrap();
    let mut oracle = BTreeMap::new();
    oracle.insert(1u64, 11u32); // wrong value on purpose
    let got = store.snapshot().to_vec();
    let want: Vec<(u64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_ne!(got, want);
}
