//! Differential tests: a [`ShardedStore`] driven by randomized op
//! sequences against a `BTreeMap` oracle, across the block-size ×
//! shard-count grid. Every divergence panics with the exact
//! reproducing seed (`PROPTEST_SEED=<n>`), and setting that variable
//! replays just that sequence on every configuration.
//!
//! The default volume is 1000 sequences per configuration
//! (`DIFF_CASES` overrides it); sequences are deliberately small so the
//! whole grid stays well under a minute in debug builds.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{Op, Router, ShardedStore, StoreOptions};

/// Keys are drawn a little past the routed span so the last shard's
/// open upper range is exercised too.
const KEY_SPAN: u64 = 96;

fn cases() -> u64 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

/// One randomized sequence: a handful of commits, each compared
/// entry-for-entry against the oracle, plus point and range probes.
fn run_one(seed: u64, b: usize, shards: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = StoreOptions {
        block_size: b,
        history_limit: 4,
        ..StoreOptions::default()
    };
    let store: ShardedStore<u64, u32> =
        ShardedStore::in_memory_with(Router::uniform_span(shards, KEY_SPAN), opts)
            .map_err(|e| e.to_string())?;
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();

    let commits = 1 + rng.gen_range(0..5usize);
    for c in 0..commits {
        let len = rng.gen_range(0..20usize);
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            if rng.gen_range(0..10) < 7 {
                let v = rng.gen_range(0..1_000u32);
                oracle.insert(k, v);
                ops.push(Op::Put(k, v));
            } else {
                oracle.remove(&k);
                ops.push(Op::Delete(k));
            }
        }
        store.commit(ops).map_err(|e| format!("commit {c}: {e}"))?;

        let snap = store.snapshot();
        if snap.len() != oracle.len() {
            return Err(format!(
                "after commit {c}: len {} != oracle {}",
                snap.len(),
                oracle.len()
            ));
        }
        let got = snap.to_vec();
        let want: Vec<(u64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        if got != want {
            return Err(format!(
                "after commit {c}: contents diverge\n  store : {got:?}\n  oracle: {want:?}"
            ));
        }

        // Point probes, including misses.
        for _ in 0..4 {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            if snap.get(&k) != oracle.get(&k).copied() {
                return Err(format!(
                    "after commit {c}: get({k}) = {:?}, oracle {:?}",
                    snap.get(&k),
                    oracle.get(&k)
                ));
            }
            if snap.contains_key(&k) != oracle.contains_key(&k) {
                return Err(format!("after commit {c}: contains_key({k}) diverges"));
            }
        }

        // A random inclusive range, spanning shard boundaries.
        let a = rng.gen_range(0..KEY_SPAN);
        let z = rng.gen_range(0..KEY_SPAN);
        let (lo, hi) = (a.min(z), a.max(z));
        let got = snap.range_entries(&lo, &hi);
        let want: Vec<(u64, u32)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        if got != want {
            return Err(format!(
                "after commit {c}: range [{lo}, {hi}] diverges\n  store : {got:?}\n  oracle: {want:?}"
            ));
        }
    }

    // The version vector reflects exactly the commits each shard took
    // part in: its sum cannot exceed commits * shards, and the global
    // version equals the commit count.
    if store.current_version() != commits as u64 {
        return Err(format!(
            "global version {} != commit count {commits}",
            store.current_version()
        ));
    }
    Ok(())
}

/// Drives `cases()` sequences (or the single `PROPTEST_SEED` sequence)
/// through one (block size, shard count) configuration.
fn run_config(b: usize, shards: usize) {
    let salt = (b as u64) << 32 | shards as u64;
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15), cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_one(seed, b, shards) {
            panic!(
                "sharded-store differential divergence (b={b}, shards={shards}): {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p store --test differential"
            );
        }
    }
}

macro_rules! differential_grid {
    ($($name:ident: ($b:expr, $shards:expr),)*) => {
        $(
            #[test]
            fn $name() {
                run_config($b, $shards);
            }
        )*
    };
}

// The full ISSUE grid: B ∈ {1, 2, 8, 32, 128} × shards ∈ {1, 2, 7}.
differential_grid! {
    diff_b1_s1: (1, 1),
    diff_b1_s2: (1, 2),
    diff_b1_s7: (1, 7),
    diff_b2_s1: (2, 1),
    diff_b2_s2: (2, 2),
    diff_b2_s7: (2, 7),
    diff_b8_s1: (8, 1),
    diff_b8_s2: (8, 2),
    diff_b8_s7: (8, 7),
    diff_b32_s1: (32, 1),
    diff_b32_s2: (32, 2),
    diff_b32_s7: (32, 7),
    diff_b128_s1: (128, 1),
    diff_b128_s2: (128, 2),
    diff_b128_s7: (128, 7),
}

/// The oracle harness must actually catch divergences: a store with a
/// deliberately wrong routing assertion fails loudly, proving the
/// comparison is not vacuous.
#[test]
fn harness_detects_injected_divergence() {
    let store: ShardedStore<u64, u32> =
        ShardedStore::in_memory(Router::uniform_span(2, KEY_SPAN)).unwrap();
    store.commit(vec![Op::Put(1, 10)]).unwrap();
    let mut oracle = BTreeMap::new();
    oracle.insert(1u64, 11u32); // wrong value on purpose
    let got = store.snapshot().to_vec();
    let want: Vec<(u64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_ne!(got, want);
}
