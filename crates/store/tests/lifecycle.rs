//! Lifecycle tests: the leak/reclaim gate (GC must hand memory back),
//! incremental checkpoint chains across reopen, and the missing-history
//! regression — a store whose WAL references versions the checkpoint
//! pages no longer reach must fail typed, never silently replay from an
//! older state.

use std::path::PathBuf;
use std::sync::Mutex;

use store::{
    shard_dir_name, Op, PacStore, RetentionPolicy, Router, ShardedStore, StoreError,
    StoreOptions, LOG_FILE, SNAPSHOT_FILE,
};

/// A fresh, empty scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pacstore-lifecycle-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Options pinning the *classic* snapshot format, immune to the
/// `PAC_POOL_PAGES` environment override — for tests that delete
/// [`SNAPSHOT_FILE`] by name to break the checkpoint chain.
fn classic() -> StoreOptions {
    StoreOptions { pool_pages: None, ..StoreOptions::default() }
}

/// The [`cpam::stats`] counters are process-global; tests that measure
/// allocation deltas must not run concurrently with other tests in this
/// binary.
static STATS_GATE: Mutex<()> = Mutex::new(());

fn live_nodes() -> u64 {
    cpam::stats::read().live_nodes()
}

// ---------------------------------------------------------------------
// Leak / reclaim gate
// ---------------------------------------------------------------------

#[test]
fn gc_returns_node_footprint_to_a_fresh_store_within_tolerance() {
    let _g = STATS_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let base = live_nodes();
    {
        let opts = StoreOptions { history_limit: 100, ..StoreOptions::default() };
        let store: PacStore<u64, u64> = PacStore::in_memory_with(opts.clone());
        // 50 full-overwrite versions: each rebuilds most leaf blocks, so
        // retained history pins ~50 tree's worth of unshared nodes.
        for round in 0..50u64 {
            store
                .commit((0..400u64).map(|k| Op::Put(k, round)).collect())
                .unwrap();
        }
        let bloated = live_nodes() - base;

        let stats = store.gc(RetentionPolicy::keep_last(1));
        assert_eq!(stats.versions_dropped, 50, "v0..v49 dropped, v50 kept");
        assert_eq!(stats.versions_retained, 1);
        assert!(stats.nodes_reclaimed > 0, "GC reclaimed nothing");

        // The footprint after GC must be within tolerance of a fresh
        // store holding the identical final contents — history cannot
        // keep pinning dropped versions' subtrees.
        let after_gc = live_nodes() - base;
        assert!(after_gc < bloated, "GC did not shrink the footprint");
        let fresh: PacStore<u64, u64> = PacStore::in_memory_with(opts);
        fresh
            .commit((0..400u64).map(|k| Op::Put(k, 49)).collect())
            .unwrap();
        let fresh_net = live_nodes() - base - after_gc;
        assert!(
            after_gc <= fresh_net * 2 + 16 && fresh_net <= after_gc * 2 + 16,
            "post-GC footprint {after_gc} vs fresh footprint {fresh_net}: leak"
        );
    }
    // Dropping every handle returns the counters to the baseline: no
    // node outlives its last reference.
    assert_eq!(live_nodes(), base, "nodes leaked past the last handle");
}

#[test]
fn sharded_gc_reclaims_across_all_shards_and_leaks_nothing() {
    let _g = STATS_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let base = live_nodes();
    {
        let opts = StoreOptions { history_limit: 100, ..StoreOptions::default() };
        let store: ShardedStore<u64, u64> =
            ShardedStore::in_memory_with(Router::uniform_span(4, 4_000), opts).unwrap();
        for round in 0..30u64 {
            store
                .commit((0..4_000u64).step_by(10).map(|k| Op::Put(k, round)).collect())
                .unwrap();
        }
        let bloated = live_nodes() - base;
        let stats = store.gc(RetentionPolicy::keep_last(2));
        assert_eq!(stats.versions_dropped, 29);
        assert!(stats.nodes_reclaimed > 0);
        assert!(live_nodes() - base < bloated);
    }
    assert_eq!(live_nodes(), base, "sharded nodes leaked past the last handle");
}

// ---------------------------------------------------------------------
// Incremental checkpoint chains
// ---------------------------------------------------------------------

#[test]
fn incremental_chain_reopens_and_rolls_over_to_full_pages() {
    let dir = scratch("chain-rollover");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit((0..2_000u64).map(|k| Op::Put(k, 0)).collect()).unwrap();
        assert_eq!(store.save().unwrap(), 1);
        assert_eq!(store.latest_checkpoint(), Some(1));
        // 17 compact cycles: 16 extend the incremental chain, the 17th
        // hits the chain cap and rolls over to a full page.
        for i in 0..17u64 {
            store.commit(vec![Op::Put(i, i + 100), Op::Put(5_000 + i, i)]).unwrap();
            assert_eq!(store.compact().unwrap(), i + 2);
            assert_eq!(store.latest_checkpoint(), Some(i + 2));
        }
        let stats = store.lifecycle_stats();
        assert_eq!(stats.compactions, 17);
        assert_eq!(stats.incremental_saves, 16);
        assert_eq!(stats.full_saves, 2, "initial save + chain-cap rollover");
        assert!(stats.wal_bytes_truncated > 0);
    }
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    assert_eq!(store.current_version(), 18);
    assert_eq!(store.len(), 2_000 + 17);
    for i in 0..17u64 {
        assert_eq!(store.get(&i), Some(i + 100));
        assert_eq!(store.get(&(5_000 + i)), Some(i));
    }
    // The reopened store continues the chain where it left off.
    store.commit(vec![Op::Put(1, 1)]).unwrap();
    store.compact().unwrap();
    assert_eq!(store.latest_checkpoint(), Some(19));
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_pages_are_much_smaller_than_full_pages() {
    let dir = scratch("incr-size");
    let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
    store.commit((0..50_000u64).map(|k| Op::Put(k, k)).collect()).unwrap();
    store.save().unwrap();
    // A 10-key delta against a 50k-key base.
    store.commit((0..10u64).map(|k| Op::Put(k, 1)).collect()).unwrap();
    store.save_incremental(1).unwrap();
    let stats = store.lifecycle_stats();
    assert!(
        stats.incremental_page_bytes * 10 < stats.full_page_bytes,
        "incremental page ({} B) not ≪ full page ({} B)",
        stats.incremental_page_bytes,
        stats.full_page_bytes
    );
    // Diffing against anything but the latest checkpoint is typed.
    assert!(matches!(
        store.save_incremental(1),
        Err(StoreError::CheckpointMismatch { requested: 1, actual: Some(2) })
    ));
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Missing-history regression (typed VersionGap, never silent replay)
// ---------------------------------------------------------------------

#[test]
fn deleted_snapshot_page_is_a_version_gap_not_a_silent_replay() {
    let dir = scratch("gap-deleted-snapshot");
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, classic()).unwrap();
        for i in 0..3u64 {
            store.commit(vec![Op::Put(i, i)]).unwrap();
        }
        store.save().unwrap();
        // These live only in the WAL, as versions 4 and 5.
        store.commit(vec![Op::Put(10, 10)]).unwrap();
        store.commit(vec![Op::Put(11, 11)]).unwrap();
    }
    std::fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
    // Replaying v4 onto an empty tree would silently resurrect a store
    // missing v1..v3; the gap must be typed instead.
    let err = PacStore::<u64, u64>::open(&dir).unwrap_err();
    assert!(
        matches!(err, StoreError::VersionGap { checkpoint: 0, first: 4 }),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn broken_incremental_chain_is_typed() {
    let dir = scratch("gap-broken-chain");
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, classic()).unwrap();
        store.commit(vec![Op::Put(1, 1)]).unwrap();
        store.save().unwrap();
        store.commit(vec![Op::Put(2, 2)]).unwrap();
        store.save_incremental(1).unwrap();
        store.commit(vec![Op::Put(3, 3)]).unwrap();
        store.save_incremental(2).unwrap();
    }
    // Deleting the middle link (incr @ v2) breaks v3's base reference.
    let incr2 = dir.join(store::incr_file_name(2));
    let incr2_bytes = std::fs::read(&incr2).unwrap();
    std::fs::remove_file(&incr2).unwrap();
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir).unwrap_err(),
        StoreError::Corrupt(_)
    ));
    std::fs::write(&incr2, &incr2_bytes).unwrap();
    // Deleting the base page strands the incrementals entirely.
    std::fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir).unwrap_err(),
        StoreError::Corrupt(_)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_missing_page_chain_is_a_version_gap() {
    let dir = scratch("gap-sharded");
    let router = Router::uniform_span(3, 3_000);
    let all_shards =
        |v: u64| vec![Op::Put(1, v), Op::Put(1_001, v), Op::Put(2_001, v)];
    {
        let store: ShardedStore<u64, u64> =
            ShardedStore::open_or_create(&dir, router.clone(), StoreOptions::default())
                .unwrap();
        store.commit(all_shards(0)).unwrap();
        store.save().unwrap();
        store.commit(all_shards(1)).unwrap();
        store.compact().unwrap(); // incremental page per shard
        store.commit(all_shards(2)).unwrap(); // lives only in the WALs
    }
    let sdir = dir.join(shard_dir_name(1));
    let incr_path = sdir.join(store::incr_file_name(2));
    assert!(incr_path.exists(), "compact should have written an incremental page");
    let incr_bytes = std::fs::read(&incr_path).unwrap();

    // Case 1: shard 1's chain reaches only v1, but the manifest and
    // the WAL both reference later local versions.
    std::fs::remove_file(&incr_path).unwrap();
    let err = ShardedStore::<u64, u64>::open(&dir).unwrap_err();
    assert!(
        matches!(err, StoreError::VersionGap { checkpoint: 1, .. }),
        "unexpected error: {err}"
    );

    // Case 2: no trailing WAL records — the manifest checkpoint record
    // itself proves shard 1 lost history.
    std::fs::write(dir.join(shard_dir_name(1)).join(LOG_FILE), b"").unwrap();
    std::fs::write(dir.join(shard_dir_name(0)).join(LOG_FILE), b"").unwrap();
    std::fs::write(dir.join(shard_dir_name(2)).join(LOG_FILE), b"").unwrap();
    let err = ShardedStore::<u64, u64>::open(&dir).unwrap_err();
    assert!(
        matches!(err, StoreError::VersionGap { .. }),
        "unexpected error: {err}"
    );

    // Restoring the page heals case 2 (the WAL-only commit is gone, as
    // those records were deleted above, but nothing is misread).
    std::fs::write(&incr_path, &incr_bytes).unwrap();
    let store: ShardedStore<u64, u64> = ShardedStore::open(&dir).unwrap();
    assert_eq!(store.get(&1), Some(1));
    assert_eq!(store.get(&1_001), Some(1));
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Pins and GC across the durable lifecycle
// ---------------------------------------------------------------------

#[test]
fn pinned_snapshots_stay_readable_through_gc_and_compaction() {
    let dir = scratch("pin-through-compact");
    let store: PacStore<u64, u64> = PacStore::open_with(
        &dir,
        StoreOptions { history_limit: 50, ..StoreOptions::default() },
    )
    .unwrap();
    for i in 1..=10u64 {
        store.commit(vec![Op::Put(i, i * 10)]).unwrap();
    }
    store.pin_version(4).unwrap();
    store.compact().unwrap();
    let stats = store.gc(RetentionPolicy::keep_last(2));
    assert!(stats.versions_dropped > 0);
    // The pinned version still serves reads; unpinned history is gone.
    let pinned = store.snapshot_at(4).unwrap();
    assert_eq!(pinned.get(&4), Some(40));
    assert_eq!(pinned.get(&5), None);
    assert!(matches!(
        store.snapshot_at(3),
        Err(StoreError::VersionNotFound(3))
    ));
    assert_eq!(store.pinned_versions(), vec![4]);
    // Release the pin; the next GC drops it.
    store.unpin_version(4).unwrap();
    store.gc(RetentionPolicy::keep_last(2));
    assert!(matches!(
        store.snapshot_at(4),
        Err(StoreError::VersionNotFound(4))
    ));
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Pins survive a reopen
// ---------------------------------------------------------------------
//
// Regression: the replay loop in `open` used to evict history with a
// bare `history.pop_front()` loop that ignored the pin registry — and
// pins were never persisted at all — so any pin silently vanished
// across a restart. Both paths now go through
// `lifecycle::evict_history` with the pin table loaded from
// `pins.pac` before replay.

#[test]
fn pin_survives_reopen_for_pacstore() {
    let dir = scratch("pin-reopen");
    let opts = StoreOptions { history_limit: 3, ..StoreOptions::default() };
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, opts.clone()).unwrap();
        store.commit(vec![Op::Put(1, 10)]).unwrap();
        store.pin_version(1).unwrap();
        assert!(dir.join("pins.pac").exists(), "pin was not persisted");
        // Push v1 far outside the retention window.
        for i in 2..=10u64 {
            store.commit(vec![Op::Put(i, i * 10)]).unwrap();
        }
        assert_eq!(store.snapshot_at(1).unwrap().get(&1), Some(10));
    }
    {
        let store: PacStore<u64, u64> = PacStore::open_with(&dir, opts.clone()).unwrap();
        assert_eq!(store.pinned_versions(), vec![1], "pin lost across reopen");
        let pinned = store.snapshot_at(1).unwrap();
        assert_eq!(pinned.get(&1), Some(10));
        assert_eq!(pinned.get(&2), None);
        // Unpinned history outside the window did get evicted.
        assert!(matches!(store.snapshot_at(5), Err(StoreError::VersionNotFound(5))));
        store.unpin_version(1).unwrap();
    }
    // The release is durable too.
    let store: PacStore<u64, u64> = PacStore::open_with(&dir, opts).unwrap();
    assert!(store.pinned_versions().is_empty());
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pin_survives_reopen_for_sharded_store() {
    let dir = scratch("pin-reopen-sharded");
    let opts = StoreOptions { history_limit: 3, ..StoreOptions::default() };
    let router = Router::uniform_span(2, 2_000);
    {
        let store: ShardedStore<u64, u64> =
            ShardedStore::open_or_create(&dir, router.clone(), opts.clone()).unwrap();
        store.commit(vec![Op::Put(1, 10), Op::Put(1_001, 10)]).unwrap();
        store.pin_version(1).unwrap();
        for i in 2..=10u64 {
            store.commit(vec![Op::Put(i, i), Op::Put(1_000 + i, i)]).unwrap();
        }
    }
    {
        let store: ShardedStore<u64, u64> = ShardedStore::open(&dir).unwrap();
        assert_eq!(store.pinned_versions(), vec![1], "pin lost across reopen");
        let snap = store.snapshot_at(1).unwrap();
        assert_eq!(snap.get(&1), Some(10));
        assert_eq!(snap.get(&1_001), Some(10));
        assert_eq!(snap.get(&2), None);
        store.unpin_version(1).unwrap();
    }
    let store: ShardedStore<u64, u64> = ShardedStore::open(&dir).unwrap();
    assert!(store.pinned_versions().is_empty());
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clobbered_pin_table_fails_open_typed() {
    let dir = scratch("pin-clobbered");
    {
        let store: PacStore<u64, u64> = PacStore::open(&dir).unwrap();
        store.commit(vec![Op::Put(1, 1)]).unwrap();
        store.pin_version(1).unwrap();
    }
    std::fs::write(dir.join("pins.pac"), b"not a pin table").unwrap();
    assert!(matches!(
        PacStore::<u64, u64>::open(&dir).unwrap_err(),
        StoreError::BadMagic
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
