//! Property tests for the snapshot page codec: decode(encode(t)) == t
//! for arbitrary sets and maps, across codecs and block sizes, with
//! *identical* leaf-payload space accounting (blocks are copied, never
//! re-encoded).

use codecs::DeltaCodec;
use cpam::{NoAug, PacMap, PacSet};
use proptest::prelude::*;
use store::{decode_snapshot, encode_snapshot};

fn roundtrip_set_raw(keys: Vec<u64>, b: usize) -> Result<(), TestCaseError> {
    let s: PacSet<u64> = PacSet::from_keys_with(b, keys);
    let page = encode_snapshot(&s, 3);
    let (back, version): (PacSet<u64>, u64) =
        decode_snapshot(&page).map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(version, 3);
    prop_assert_eq!(back.to_vec(), s.to_vec());
    prop_assert_eq!(back.space_stats(), s.space_stats());
    back.check_invariants()
        .map_err(TestCaseError::fail)?;
    Ok(())
}

fn roundtrip_set_delta(keys: Vec<u64>, b: usize) -> Result<(), TestCaseError> {
    let s: PacSet<u64, NoAug, DeltaCodec> = PacSet::from_keys_with(b, keys);
    let page = encode_snapshot(&s, 9);
    let (back, _): (PacSet<u64, NoAug, DeltaCodec>, u64) =
        decode_snapshot(&page).map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(back.to_vec(), s.to_vec());
    // The compressed leaf payload is copied verbatim: byte-identical.
    prop_assert_eq!(back.space_stats().block_bytes, s.space_stats().block_bytes);
    prop_assert_eq!(back.space_stats().total_bytes, s.space_stats().total_bytes);
    back.check_invariants()
        .map_err(TestCaseError::fail)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn set_raw_roundtrip(
        keys in prop::collection::vec(any::<u64>(), 0..500),
        b in 1usize..260,
    ) {
        roundtrip_set_raw(keys, b)?;
    }

    #[test]
    fn set_delta_roundtrip(
        keys in prop::collection::vec(any::<u64>(), 0..500),
        b in 1usize..260,
    ) {
        roundtrip_set_delta(keys, b)?;
    }

    #[test]
    fn set_delta_roundtrip_dense_keys(
        base in 0u64..1_000_000,
        len in 0usize..800,
        b in prop::sample::select(vec![1usize, 2, 7, 16, 128, 256]),
    ) {
        // Dense keys: the regime where delta blocks actually compress.
        let keys: Vec<u64> = (0..len as u64).map(|i| base + 3 * i).collect();
        roundtrip_set_delta(keys, b)?;
    }

    #[test]
    fn map_raw_roundtrip(
        pairs in prop::collection::vec(any::<(u64, u64)>(), 0..400),
        b in 1usize..200,
    ) {
        let m: PacMap<u64, u64> = PacMap::from_pairs_with(b, pairs);
        let page = encode_snapshot(&m, 1);
        let (back, _): (PacMap<u64, u64>, u64) =
            decode_snapshot(&page).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.to_vec(), m.to_vec());
        prop_assert_eq!(back.space_stats(), m.space_stats());
    }

    #[test]
    fn map_delta_roundtrip(
        pairs in prop::collection::vec((0u64..50_000, any::<u32>()), 0..400),
        b in 1usize..200,
    ) {
        let m: PacMap<u64, u32, NoAug, DeltaCodec> = PacMap::from_pairs_with(b, pairs);
        let page = encode_snapshot(&m, 1);
        let (back, _): (PacMap<u64, u32, NoAug, DeltaCodec>, u64) =
            decode_snapshot(&page).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.to_vec(), m.to_vec());
        prop_assert_eq!(back.space_stats(), m.space_stats());
        back.check_invariants().map_err(TestCaseError::fail)?;
    }
}

#[test]
fn empty_and_singleton_edge_cases() {
    for keys in [vec![], vec![0u64], vec![u64::MAX]] {
        roundtrip_set_raw(keys.clone(), 128).unwrap();
        roundtrip_set_delta(keys.clone(), 128).unwrap();
        roundtrip_set_raw(keys.clone(), 1).unwrap();
        roundtrip_set_delta(keys, 1).unwrap();
    }
    let m: PacMap<u64, u64> = PacMap::new();
    let page = encode_snapshot(&m, 0);
    let (back, _): (PacMap<u64, u64>, u64) = decode_snapshot(&page).unwrap();
    assert!(back.is_empty());
}
