//! C-trees: the Aspen baseline (Dhulipala, Blelloch, Shun; PLDI 2019).
//!
//! A reimplementation of the compressed purely-functional trees that the
//! Aspen graph-streaming system uses for edge lists, and that the
//! PaC-tree paper compares against (Figs. 1, 11; Table 5).
//!
//! A C-tree stores an ordered set of integer keys by *randomly* sampling
//! heads: key `x` is a head iff `hash(x) % b == 0` (expected block size
//! `b`). Heads live in a purely-functional search tree (a P-tree here,
//! as in Aspen, which leaves the head tree uncompressed); each head owns
//! the difference-encoded block of keys between it and the next head; a
//! *prefix* block holds keys before the first head.
//!
//! The two structural differences from PaC-trees the paper highlights
//! are visible in this implementation:
//!
//! * block sizes are only `b` in expectation (geometric), so space
//!   bounds hold only in expectation (vs deterministic for PaC-trees);
//! * the head tree itself is uncompressed, which is why Aspen's vertex
//!   trees cost more memory than CPAM's (Fig. 11 discussion).
//!
//! ```
//! use ctree::CTree;
//!
//! let t = CTree::<u64>::from_keys(16, (0..10_000).collect());
//! assert_eq!(t.len(), 10_000);
//! assert!(t.contains(&5000));
//! let t2 = t.insert_batch(vec![20_000, 20_001]);
//! assert_eq!(t2.len(), 10_002);
//! assert_eq!(t.len(), 10_000); // persistent
//! ```

use codecs::{Codec, Delta, DeltaCodec, EncodedBlock};
use cpam::ScalarKey;
use pam::PamMap;

/// Keys a C-tree can store: ordered integers with difference encoding.
pub trait CKey: ScalarKey + Delta + Copy {
    /// A mixing hash for head selection.
    fn mix(self) -> u64;
}

impl CKey for u32 {
    fn mix(self) -> u64 {
        splitmix(u64::from(self))
    }
}

impl CKey for u64 {
    fn mix(self) -> u64 {
        splitmix(self)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A compressed purely-functional ordered set of integer keys, using
/// randomized head selection (the Aspen design).
pub struct CTree<K: CKey> {
    /// head -> difference-encoded tail block (keys strictly between this
    /// head and the next head).
    heads: PamMap<K, EncodedBlock>,
    /// Keys before the first head, difference-encoded.
    prefix: Option<EncodedBlock>,
    len: usize,
    b: usize,
}

impl<K: CKey> Clone for CTree<K> {
    fn clone(&self) -> Self {
        CTree {
            heads: self.heads.clone(),
            prefix: self.prefix.clone(),
            len: self.len,
            b: self.b,
        }
    }
}

impl<K: CKey> std::fmt::Debug for CTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CTree")
            .field("len", &self.len)
            .field("expected_block", &self.b)
            .finish()
    }
}

/// Splits a sorted run into (leading non-head keys, head-led segments).
fn partition_by_heads<K: CKey>(seg: &[K], is_head: impl Fn(&K) -> bool) -> (Vec<K>, Vec<(K, Vec<K>)>) {
    let mut leading = Vec::new();
    let mut i = 0;
    while i < seg.len() && !is_head(&seg[i]) {
        leading.push(seg[i]);
        i += 1;
    }
    let mut segments = Vec::new();
    while i < seg.len() {
        let head = seg[i];
        let mut tail = Vec::new();
        i += 1;
        while i < seg.len() && !is_head(&seg[i]) {
            tail.push(seg[i]);
            i += 1;
        }
        segments.push((head, tail));
    }
    (leading, segments)
}

impl<K: CKey> CTree<K> {
    /// An empty C-tree with expected block size `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn new(b: usize) -> Self {
        assert!(b > 0, "expected block size must be positive");
        CTree {
            heads: PamMap::new(),
            prefix: None,
            len: 0,
            b,
        }
    }

    fn is_head(&self, k: &K) -> bool {
        k.mix().is_multiple_of(self.b as u64)
    }

    /// Builds from arbitrary keys (sorted and deduplicated internally).
    pub fn from_keys(b: usize, mut keys: Vec<K>) -> Self {
        parlay::par_sort(&mut keys);
        keys.dedup();
        Self::from_sorted_keys(b, &keys)
    }

    /// Builds from strictly increasing keys.
    pub fn from_sorted_keys(b: usize, keys: &[K]) -> Self {
        let mut t = Self::new(b);
        t.len = keys.len();
        let (leading, segments) = partition_by_heads(keys, |k| t.is_head(k));
        if !leading.is_empty() {
            t.prefix = Some(<DeltaCodec as Codec<K>>::encode(&leading));
        }
        let pairs: Vec<(K, EncodedBlock)> = segments
            .into_iter()
            .map(|(h, tail)| (h, <DeltaCodec as Codec<K>>::encode(&tail)))
            .collect();
        t.heads = PamMap::from_sorted_pairs(&pairs);
        t
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test: find the owning segment, decode, search.
    pub fn contains(&self, k: &K) -> bool {
        if self.is_head(k) {
            return self.heads.contains_key(k);
        }
        let segment = match self.heads.pred(k) {
            Some((_, block)) => Some(block),
            None => self.prefix.clone(),
        };
        let Some(block) = segment else { return false };
        let mut keys = Vec::with_capacity(<DeltaCodec as Codec<K>>::len(&block));
        <DeltaCodec as Codec<K>>::decode(&block, &mut keys);
        keys.binary_search(k).is_ok()
    }

    /// All keys in order.
    pub fn to_vec(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(p) = &self.prefix {
            <DeltaCodec as Codec<K>>::decode(p, &mut out);
        }
        for (head, block) in self.heads.to_vec() {
            out.push(head);
            <DeltaCodec as Codec<K>>::decode(&block, &mut out);
        }
        out
    }

    /// Visits every key in order.
    pub fn for_each(&self, mut f: impl FnMut(&K)) {
        if let Some(p) = &self.prefix {
            <DeltaCodec as Codec<K>>::for_each(p, &mut |k| f(k));
        }
        for (head, block) in self.heads.to_vec() {
            f(&head);
            <DeltaCodec as Codec<K>>::for_each(&block, &mut |k| f(k));
        }
    }

    /// Inserts a batch of keys, returning a new tree.
    ///
    /// Only the segments a batch key lands in are decoded and re-split
    /// (new keys may themselves become heads), mirroring Aspen's batch
    /// update; untouched segments are shared with the input version.
    pub fn insert_batch(&self, mut keys: Vec<K>) -> Self {
        parlay::par_sort(&mut keys);
        keys.dedup();
        if keys.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return Self::from_sorted_keys(self.b, &keys);
        }
        // Group batch keys by owning segment anchor: the largest
        // *existing* head <= k, or None for the prefix. A batch key that
        // becomes a new head is still rebuilt inside its old segment.
        let mut groups: Vec<(Option<K>, Vec<K>)> = Vec::new();
        for k in keys {
            let anchor = self.heads.pred(&k).map(|(h, _)| h);
            match groups.last_mut() {
                Some((a, ks)) if *a == anchor => ks.push(k),
                _ => groups.push((anchor, vec![k])),
            }
        }
        let mut prefix_keys: Option<Vec<K>> = None;
        let mut added = 0usize;
        let mut new_pairs: Vec<(K, EncodedBlock)> = Vec::new();
        for (anchor, batch) in groups {
            // Decode the segment this group lands in.
            let mut seg: Vec<K> = Vec::new();
            match anchor {
                Some(h) => {
                    seg.push(h);
                    let block = self.heads.find(&h).expect("anchor is a head");
                    <DeltaCodec as Codec<K>>::decode(&block, &mut seg);
                }
                None => {
                    if let Some(p) = &self.prefix {
                        <DeltaCodec as Codec<K>>::decode(p, &mut seg);
                    }
                }
            }
            let before = seg.len();
            for k in batch {
                if let Err(i) = seg.binary_search(&k) {
                    seg.insert(i, k);
                }
            }
            added += seg.len() - before;
            // Re-split: new keys may be heads.
            let (leading, segments) = partition_by_heads(&seg, |k| self.is_head(k));
            match anchor {
                Some(_) => debug_assert!(leading.is_empty(), "anchor segment starts with a head"),
                None => prefix_keys = Some(leading),
            }
            for (h, tail) in segments {
                new_pairs.push((h, <DeltaCodec as Codec<K>>::encode(&tail)));
            }
        }
        let heads = self.heads.multi_insert(new_pairs);
        let prefix = match prefix_keys {
            Some(ks) if ks.is_empty() => None,
            Some(ks) => Some(<DeltaCodec as Codec<K>>::encode(&ks)),
            None => self.prefix.clone(),
        };
        CTree {
            heads,
            prefix,
            len: self.len + added,
            b: self.b,
        }
    }

    /// Heap bytes: compressed blocks plus the uncompressed head tree
    /// (P-tree node per head, as in Aspen).
    pub fn space_bytes(&self) -> usize {
        let mut block_bytes = 0usize;
        if let Some(p) = &self.prefix {
            block_bytes += <DeltaCodec as Codec<K>>::heap_bytes(p) + 24;
        }
        for (_, block) in self.heads.to_vec() {
            block_bytes += <DeltaCodec as Codec<K>>::heap_bytes(&block) + 24;
        }
        block_bytes + self.heads.space_bytes()
    }

    /// Expected block size parameter.
    pub fn expected_block_size(&self) -> usize {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_roundtrip() {
        let keys: Vec<u64> = (0..5000).map(|i| i * 3).collect();
        let t = CTree::from_keys(16, keys.clone());
        assert_eq!(t.len(), 5000);
        assert_eq!(t.to_vec(), keys);
    }

    #[test]
    fn contains_heads_and_tails() {
        let keys: Vec<u64> = (0..2000).collect();
        let t = CTree::from_keys(8, keys);
        for k in [0u64, 1, 999, 1999] {
            assert!(t.contains(&k), "missing {k}");
        }
        assert!(!t.contains(&2000));
        assert!(!t.contains(&5000));
    }

    #[test]
    fn empty_and_tiny() {
        let t = CTree::<u64>::new(16);
        assert!(t.is_empty());
        assert!(!t.contains(&1));
        let t2 = CTree::<u64>::from_keys(16, vec![7]);
        assert_eq!(t2.len(), 1);
        assert!(t2.contains(&7));
    }

    #[test]
    fn insert_batch_matches_rebuild() {
        let initial: Vec<u64> = (0..3000).map(|i| i * 2).collect();
        let batch: Vec<u64> = (0..1500).map(|i| i * 3).collect();
        let t = CTree::from_keys(16, initial.clone());
        let t2 = t.insert_batch(batch.clone());

        let mut all = initial.clone();
        all.extend(&batch);
        all.sort_unstable();
        all.dedup();
        assert_eq!(t2.to_vec(), all);
        assert_eq!(t2.len(), all.len());
        // Persistence.
        assert_eq!(t.to_vec(), initial);
    }

    #[test]
    fn insert_batch_into_empty_and_empty_batch() {
        let t = CTree::<u64>::new(8);
        let t2 = t.insert_batch(vec![5, 1, 3]);
        assert_eq!(t2.to_vec(), vec![1, 3, 5]);
        let t3 = t2.insert_batch(vec![]);
        assert_eq!(t3.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    fn repeated_batches_accumulate() {
        let mut t = CTree::<u64>::new(32);
        let mut oracle = std::collections::BTreeSet::new();
        let mut state = 99u64;
        for _ in 0..20 {
            let batch: Vec<u64> = (0..100)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 10_000
                })
                .collect();
            for k in &batch {
                oracle.insert(*k);
            }
            t = t.insert_batch(batch);
            assert_eq!(t.len(), oracle.len());
        }
        assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn space_is_compressed_for_dense_keys() {
        let keys: Vec<u64> = (0..100_000).collect();
        let t = CTree::from_keys(64, keys);
        // Dense keys: ~1 byte each in blocks + head-tree overhead.
        assert!(
            t.space_bytes() < 100_000 * 4,
            "space {} too large",
            t.space_bytes()
        );
    }

    #[test]
    fn for_each_matches_to_vec() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7).collect();
        let t = CTree::from_keys(16, keys.clone());
        let mut seen = Vec::new();
        t.for_each(|k| seen.push(*k));
        assert_eq!(seen, keys);
    }
}
