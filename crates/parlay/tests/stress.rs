//! Stress and property tests for the work-stealing scheduler and the
//! parallel slice primitives.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn scheduler_survives_many_irregular_joins() {
    // Irregular task tree: sizes vary wildly so stealing actually happens.
    fn weird(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            let (a, b) = parlay::join(|| weird(n - 1), || weird(n / 3));
            a.wrapping_add(b).wrapping_add(1)
        }
    }
    let r1 = parlay::run(|| weird(22));
    let r2 = weird_seq(22);
    assert_eq!(r1, r2);

    fn weird_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            weird_seq(n - 1)
                .wrapping_add(weird_seq(n / 3))
                .wrapping_add(1)
        }
    }
}

/// High-contention steal storm: many external threads flood the pool
/// with fine-grained fork trees so workers constantly race for the same
/// deques and the injector. Under the locked deque shim a losing racer
/// sees `Steal::Retry`; before the retry loops were bounded this profile
/// could livelock (every attempt losing the race and spinning forever).
/// The test both finishes — the regression check — and verifies results.
#[test]
fn steal_retry_storm_makes_progress() {
    fn storm(n: u64) -> u64 {
        if n == 0 {
            1
        } else {
            // Tiny leaves: maximal fork-to-work ratio, maximal deque churn.
            let (a, b) = parlay::join(|| storm(n - 1), || storm(n.saturating_sub(2)));
            a.wrapping_add(b)
        }
    }
    let expected = {
        // Fibonacci-shaped recursion: leaf count follows fib(n + 1).
        let (mut a, mut b) = (1u64, 1u64);
        for _ in 0..14 {
            let t = a.wrapping_add(b);
            a = b;
            b = t;
        }
        b
    };
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || {
                for _ in 0..20 {
                    assert_eq!(parlay::run(|| storm(14)), expected);
                }
            });
        }
    });
    // Bounded retries are observable: the abandoned-retry counter may or
    // may not have fired (timing-dependent), but the stats snapshot must
    // be coherent after the storm.
    let stats = parlay::scheduler_stats();
    assert!(stats.exec_local + stats.exec_stolen > 0);
}

#[test]
fn concurrent_sorts_from_multiple_threads() {
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..5 {
                    let mut xs: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..10_000)).collect();
                    let mut expected = xs.clone();
                    expected.sort_unstable();
                    parlay::run(|| parlay::par_sort(&mut xs));
                    assert_eq!(xs, expected);
                }
            });
        }
    });
}

#[test]
fn filter_then_sum_pipeline() {
    let xs: Vec<u64> = (0..1_000_000).collect();
    let (evens, total) = parlay::run(|| {
        let evens = parlay::filter(&xs, |x| x % 2 == 0);
        let total = parlay::sum(&evens);
        (evens, total)
    });
    assert_eq!(evens.len(), 500_000);
    assert_eq!(total, (0..1_000_000u64).filter(|x| x % 2 == 0).sum());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_par_sort_matches_std(mut xs in prop::collection::vec(any::<u32>(), 0..5000)) {
        let mut expected = xs.clone();
        expected.sort_unstable();
        parlay::run(|| parlay::par_sort(&mut xs));
        prop_assert_eq!(xs, expected);
    }

    #[test]
    fn prop_scan_matches_prefix_sum(mut xs in prop::collection::vec(0u64..1000, 0..5000)) {
        let orig = xs.clone();
        let total = parlay::run(|| parlay::scan_inplace(&mut xs));
        let mut acc = 0u64;
        for (i, v) in orig.iter().enumerate() {
            prop_assert_eq!(xs[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn prop_filter_matches_std(xs in prop::collection::vec(any::<i32>(), 0..5000)) {
        let got = parlay::run(|| parlay::filter(&xs, |x| x % 3 == 0));
        let expected: Vec<i32> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn prop_merge_matches_concat_sort(
        mut a in prop::collection::vec(any::<u16>(), 0..2000),
        mut b in prop::collection::vec(any::<u16>(), 0..2000),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0u16; a.len() + b.len()];
        parlay::run(|| parlay::merge_by(&a, &b, &mut out, &|x, y| x.cmp(y)));
        let mut expected = [a, b].concat();
        expected.sort_unstable();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn prop_find_first_matches_position(xs in prop::collection::vec(0u32..50, 0..3000), needle in 0u32..50) {
        let got = parlay::run(|| parlay::slice::find_first(&xs, |&x| x == needle));
        let expected = xs.iter().position(|&x| x == needle);
        prop_assert_eq!(got, expected);
    }
}
