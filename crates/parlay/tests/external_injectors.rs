//! Many external threads funnelling through the one global `Injector`
//! at a tiny pool size — the scenario where a lost wakeup deadlocks:
//! every worker parks, an external `run` injects, and nobody wakes.
//!
//! Lives in its own integration-test file so the process gets a
//! dedicated pool: `set_num_threads(2)` must run before anything else
//! touches the scheduler (thread count is fixed at first use).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn nested(depth: usize) -> usize {
    if depth == 0 {
        1
    } else {
        let (a, b) = parlay::join(|| nested(depth - 1), || nested(depth - 1));
        a + b
    }
}

/// 16 external injector threads × repeated runs of nested joins on a
/// 2-worker pool. Every run must complete (no lost wakeup leaves an
/// external latch waiting forever) and the whole test is time-bounded
/// by a watchdog rather than relying on the harness timeout.
#[test]
fn sixteen_external_injectors_on_two_workers() {
    parlay::set_num_threads(2);
    assert_eq!(parlay::num_threads(), 2);

    const EXTERNAL_THREADS: usize = 16;
    const RUNS_PER_THREAD: usize = 40;
    const DEPTH: usize = 8;

    let completed = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..EXTERNAL_THREADS {
            scope.spawn(|| {
                for _ in 0..RUNS_PER_THREAD {
                    let leaves = parlay::run(|| nested(DEPTH));
                    assert_eq!(leaves, 1 << DEPTH);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Watchdog: if a wakeup is lost the scoped threads never join and
        // the whole suite would hang until the CI timeout. Panicking here
        // converts that hang into a diagnosable failure.
        scope.spawn(|| {
            let deadline = Duration::from_secs(120);
            while completed.load(Ordering::Relaxed) < EXTERNAL_THREADS * RUNS_PER_THREAD {
                assert!(
                    start.elapsed() < deadline,
                    "stalled: {}/{} runs completed after {:?} — lost wakeup or deadlock",
                    completed.load(Ordering::Relaxed),
                    EXTERNAL_THREADS * RUNS_PER_THREAD,
                    deadline
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        });
    });
    assert_eq!(
        completed.load(Ordering::Relaxed),
        EXTERNAL_THREADS * RUNS_PER_THREAD
    );
}
