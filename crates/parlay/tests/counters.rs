//! Scheduler introspection: the counters must move when the scheduler
//! works, be readable as a windowed delta, and surface through an `obs`
//! registry scrape.
//!
//! Own file (own process) so the pool here is started by these tests and
//! its counters are not polluted by other suites' thread-count choices.

use std::sync::atomic::{AtomicU64, Ordering};

fn busy_tree(depth: usize) -> u64 {
    if depth == 0 {
        std::hint::black_box(1)
    } else {
        let (a, b) = parlay::join(|| busy_tree(depth - 1), || busy_tree(depth - 1));
        a + b
    }
}

/// Counters observed over a window of known work: snapshot, run a burst
/// of external runs with nested joins, snapshot again, assert on the
/// delta (the idiom `cpam::stats` established with `OpCounts::delta`).
#[test]
fn window_delta_attributes_scheduler_activity() {
    let before = parlay::scheduler_stats();
    let total: u64 = (0..20).map(|_| parlay::run(|| busy_tree(10))).sum();
    assert_eq!(total, 20 * (1 << 10));
    let spent = parlay::scheduler_stats().delta(&before);

    // Each parlay::run goes through the injector exactly once.
    assert!(
        spent.injected >= 20,
        "expected >= 20 injections in window, got {}",
        spent.injected
    );
    // Every injected job is executed by some worker as stolen work.
    assert!(
        spent.exec_stolen >= 20,
        "expected >= 20 stolen executions, got {}",
        spent.exec_stolen
    );
    assert!(spent.steals >= 20, "steals: {}", spent.steals);
    assert_eq!(spent.per_worker.len(), parlay::num_threads());
    // The per-worker breakdown must add up to the totals.
    let (local_sum, stolen_sum) = spent
        .per_worker
        .iter()
        .fold((0, 0), |(l, s), (wl, ws)| (l + wl, s + ws));
    assert_eq!(local_sum, spent.exec_local);
    assert_eq!(stolen_sum, spent.exec_stolen);
}

/// The obs bridge: after `register_stats_with`, a scrape shows the
/// scheduler counters in Prometheus exposition format, and counter
/// values move across a window of work.
#[test]
fn obs_scrape_shows_scheduler_counters() {
    let registry = obs::Registry::new();
    parlay::register_stats_with(&registry);

    let before = registry
        .counter_value("parlay_injected_total")
        .expect("parlay_injected_total registered");
    parlay::run(|| busy_tree(8));
    let after = registry
        .counter_value("parlay_injected_total")
        .expect("parlay_injected_total registered");
    assert!(after > before, "injected: {before} -> {after}");

    let text = registry.render_text();
    for name in [
        "parlay_injected_total",
        "parlay_wakeups_total",
        "parlay_steals_total",
        "parlay_exec_local_total",
        "parlay_exec_stolen_total",
        "parlay_steal_retries_abandoned_total",
        "parlay_parks_total",
    ] {
        assert!(text.contains(name), "render_text missing {name}:\n{text}");
    }
}

/// Registration is idempotent and safe to repeat (first registration
/// wins, matching `obs::Registry::register_callback`).
#[test]
fn obs_registration_is_idempotent() {
    let registry = obs::Registry::new();
    parlay::register_stats_with(&registry);
    parlay::register_stats_with(&registry);
    let text = registry.render_text();
    let sample_lines = text
        .lines()
        .filter(|l| l.starts_with("parlay_steals_total "))
        .count();
    assert_eq!(sample_lines, 1, "duplicate registration:\n{text}");
}

/// The stats snapshot itself is consistent: monotone under work.
#[test]
fn stats_are_monotone() {
    let a = parlay::scheduler_stats();
    let done = AtomicU64::new(0);
    parlay::run(|| {
        let (x, y) = parlay::join(|| busy_tree(6), || busy_tree(6));
        done.store(x + y, Ordering::Relaxed);
    });
    let b = parlay::scheduler_stats();
    assert!(b.injected >= a.injected);
    assert!(b.exec_local + b.exec_stolen >= a.exec_local + a.exec_stolen);
    assert_eq!(done.load(Ordering::Relaxed), 2 * (1 << 6));
}
