//! Type-erased jobs that can be pushed onto work-stealing deques.
//!
//! A [`JobRef`] is a raw, type-erased pointer to a job living either on the
//! stack of a joining thread ([`StackJob`]) or on the heap
//! ([`ExternalJob`], used for jobs injected from outside the pool). The
//! owner of the underlying storage is responsible for keeping it alive until
//! the job has executed; the scheduler guarantees every pushed job is
//! executed exactly once.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Condvar, Mutex};

/// A type-erased pointer to an executable job.
///
/// Safety contract: the pointee must outlive the `JobRef` and `execute` must
/// be called exactly once.
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only a pointer + fn pointer; the scheduler upholds the
// aliasing discipline (single execution, storage kept alive by its owner).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Creates a job reference from a pointer to a [`Job`] implementation.
    ///
    /// # Safety
    /// `data` must remain valid until the job executes.
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn: <T as Job>::execute,
        }
    }

    /// Runs the job.
    ///
    /// # Safety
    /// Must be called exactly once, and the pointee must still be alive.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }
}

/// A job that can be executed through a type-erased pointer.
pub(crate) trait Job {
    /// # Safety
    /// `this` must point to a live instance of the implementing type and the
    /// call must happen at most once.
    unsafe fn execute(this: *const ());
}

/// The result slot of a job: either not finished, a value, or a captured
/// panic payload to be resumed on the joining thread.
pub(crate) enum JobResult<R> {
    None,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

impl<R> JobResult<R> {
    /// Returns the value or resumes the captured panic.
    ///
    /// # Panics
    /// Resumes the panic captured while running the job, if any.
    pub(crate) fn into_return_value(self) -> R {
        match self {
            JobResult::None => unreachable!("job result taken before completion"),
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A job allocated on the stack of a thread executing [`crate::join`].
///
/// The joining thread pushes a `JobRef` to this job onto its local deque and
/// is responsible for not returning until `done()` reads `true` (either by
/// popping and inlining the job itself or by waiting for a thief).
pub(crate) struct StackJob<F, R>
where
    F: FnOnce() -> R + Send,
{
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
{
    pub(crate) fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
            done: AtomicBool::new(false),
        }
    }

    /// # Safety
    /// The returned `JobRef` must not outlive `self`.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Whether the job has finished executing (acquire ordering, so the
    /// result written by the executing thread is visible afterwards).
    pub(crate) fn done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Extracts the result after `done()` returned `true`.
    pub(crate) fn into_result(self) -> JobResult<R> {
        debug_assert!(self.done.load(Ordering::Acquire));
        self.result.into_inner()
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
{
    unsafe fn execute(this: *const ()) {
        let this = &*(this as *const Self);
        let func = (*this.func.get())
            .take()
            .expect("stack job executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panicked(payload),
        };
        *this.result.get() = result;
        this.done.store(true, Ordering::Release);
    }
}

/// A blocking latch based on a mutex + condvar, used by threads outside the
/// pool to wait for an injected job.
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn set(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.cond.notify_all();
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cond.wait(&mut done);
        }
    }
}

/// A job injected from a thread outside the pool; the submitting thread
/// blocks on the latch, so the job can live on its stack.
pub(crate) struct ExternalJob<F, R>
where
    F: FnOnce() -> R + Send,
{
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: LockLatch,
}

impl<F, R> ExternalJob<F, R>
where
    F: FnOnce() -> R + Send,
{
    pub(crate) fn new(func: F) -> Self {
        ExternalJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
            latch: LockLatch::new(),
        }
    }

    /// # Safety
    /// The returned `JobRef` must not outlive `self`, and the caller must
    /// block on [`Self::wait`] before dropping `self`.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    pub(crate) fn wait(&self) {
        self.latch.wait();
    }

    pub(crate) fn into_result(self) -> JobResult<R> {
        self.result.into_inner()
    }
}

impl<F, R> Job for ExternalJob<F, R>
where
    F: FnOnce() -> R + Send,
{
    unsafe fn execute(this: *const ()) {
        let this = &*(this as *const Self);
        let func = (*this.func.get())
            .take()
            .expect("external job executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panicked(payload),
        };
        *this.result.get() = result;
        this.latch.set();
    }
}

// SAFETY: access to the interior cells is serialized by the done/latch
// protocol: the executing thread writes before the release store / latch
// set, the joining thread reads after the acquire load / latch wait.
unsafe impl<F: FnOnce() -> R + Send, R> Sync for StackJob<F, R> {}
unsafe impl<F: FnOnce() -> R + Send, R> Sync for ExternalJob<F, R> {}
