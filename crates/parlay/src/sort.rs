//! Parallel merge sort and parallel merge.
//!
//! `O(n log n)` work, `O(log^3 n)` span merge sort: halves are sorted in
//! parallel and combined with a parallel merge that splits on the median
//! of the larger side (dual binary search).

use std::cmp::Ordering;

use crate::{join, DEFAULT_GRAIN};

/// Merges two sorted slices into `out` using `cmp`, in parallel.
///
/// `out` must have length `a.len() + b.len()`. The merge is stable:
/// elements of `a` precede equal elements of `b`.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
///
/// # Examples
///
/// ```
/// let a = vec![1, 3, 5];
/// let b = vec![2, 3, 6];
/// let mut out = vec![0; 6];
/// parlay::merge_by(&a, &b, &mut out, &|x, y| x.cmp(y));
/// assert_eq!(out, vec![1, 2, 3, 3, 5, 6]);
/// ```
pub fn merge_by<T, C>(a: &[T], b: &[T], out: &mut [T], cmp: &C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    assert_eq!(out.len(), a.len() + b.len(), "output length mismatch");
    if a.len() + b.len() <= 2 * DEFAULT_GRAIN {
        seq_merge(a, b, out, cmp);
        return;
    }
    // Split on the median of the larger input; binary-search its rank in
    // the other input so both halves merge independently.
    if a.len() >= b.len() {
        let amid = a.len() / 2;
        let pivot = &a[amid];
        // Stability: elements of `b` equal to the pivot stay to the right
        // (they follow equal `a` elements).
        let bmid = b.partition_point(|x| cmp(x, pivot) == Ordering::Less);
        let (out_l, out_r) = out.split_at_mut(amid + bmid);
        join(
            || merge_by(&a[..amid], &b[..bmid], out_l, cmp),
            || merge_by(&a[amid..], &b[bmid..], out_r, cmp),
        );
    } else {
        let bmid = b.len() / 2;
        let pivot = &b[bmid];
        // Stability: elements of `a` equal to the pivot go to the left.
        let amid = a.partition_point(|x| cmp(x, pivot) != Ordering::Greater);
        let (out_l, out_r) = out.split_at_mut(amid + bmid);
        join(
            || merge_by(&a[..amid], &b[..bmid], out_l, cmp),
            || merge_by(&a[amid..], &b[bmid..], out_r, cmp),
        );
    }
}

fn seq_merge<T, C>(a: &[T], b: &[T], out: &mut [T], cmp: &C)
where
    T: Clone,
    C: Fn(&T, &T) -> Ordering,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != Ordering::Greater) {
            slot.clone_from(&a[i]);
            i += 1;
        } else {
            slot.clone_from(&b[j]);
            j += 1;
        }
    }
}

/// Sorts `xs` in parallel with a stable merge sort using `cmp`.
///
/// # Examples
///
/// ```
/// let mut xs = vec![5, 1, 4, 2, 3];
/// parlay::par_sort_by(&mut xs, &|a, b| a.cmp(b));
/// assert_eq!(xs, vec![1, 2, 3, 4, 5]);
/// ```
pub fn par_sort_by<T, C>(xs: &mut [T], cmp: &C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    if xs.len() <= 4 * DEFAULT_GRAIN {
        xs.sort_by(|a, b| cmp(a, b));
        return;
    }
    let mut buf: Vec<T> = xs.to_vec();
    sort_in_place(xs, &mut buf, cmp);
}

/// Sorts a slice of `Ord` elements in parallel.
///
/// ```
/// let mut xs: Vec<u32> = (0..100).rev().collect();
/// parlay::par_sort(&mut xs);
/// assert!(xs.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn par_sort<T>(xs: &mut [T])
where
    T: Clone + Send + Sync + Ord,
{
    par_sort_by(xs, &T::cmp);
}

/// Sorts a slice in parallel by a key extraction function.
///
/// ```
/// let mut xs = vec![(3, 'c'), (1, 'a'), (2, 'b')];
/// parlay::par_sort_by_key(&mut xs, &|p: &(i32, char)| p.0);
/// assert_eq!(xs[0].1, 'a');
/// ```
pub fn par_sort_by_key<T, K, F>(xs: &mut [T], key: &F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by(xs, &|a, b| key(a).cmp(&key(b)));
}

/// Sorts `data` in place, using `buf` (same length, initialized) as scratch.
fn sort_in_place<T, C>(data: &mut [T], buf: &mut [T], cmp: &C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(data.len(), buf.len());
    if data.len() <= 4 * DEFAULT_GRAIN {
        data.sort_by(|a, b| cmp(a, b));
        return;
    }
    let mid = data.len() / 2;
    let (dl, dr) = data.split_at_mut(mid);
    let (bl, br) = buf.split_at_mut(mid);
    join(|| sort_into(dl, bl, cmp), || sort_into(dr, br, cmp));
    merge_by(bl, br, data, cmp);
}

/// Sorts the contents of `src`, leaving the sorted output in `dst`.
fn sort_into<T, C>(src: &mut [T], dst: &mut [T], cmp: &C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(src.len(), dst.len());
    if src.len() <= 4 * DEFAULT_GRAIN {
        src.sort_by(|a, b| cmp(a, b));
        dst.clone_from_slice(src);
        return;
    }
    let mid = src.len() / 2;
    let (sl, sr) = src.split_at_mut(mid);
    let (dl, dr) = dst.split_at_mut(mid);
    join(|| sort_in_place(sl, dl, cmp), || sort_in_place(sr, dr, cmp));
    merge_by(sl, sr, dst, cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    #[test]
    fn sort_random_matches_std() {
        let mut seed = 12345u64;
        let mut xs: Vec<u64> = (0..100_000).map(|_| xorshift(&mut seed) % 1000).collect();
        let mut expected = xs.clone();
        expected.sort_unstable();
        crate::run(|| par_sort(&mut xs));
        assert_eq!(xs, expected);
    }

    #[test]
    fn sort_already_sorted_and_reverse() {
        let mut xs: Vec<u32> = (0..50_000).collect();
        crate::run(|| par_sort(&mut xs));
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        let mut ys: Vec<u32> = (0..50_000).rev().collect();
        crate::run(|| par_sort(&mut ys));
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_is_stable() {
        // Pairs sorted by first element only: second element records
        // original order and must stay ascending within equal keys.
        let mut xs: Vec<(u8, u32)> = (0..40_000u32).map(|i| ((i % 5) as u8, i)).collect();
        crate::run(|| par_sort_by(&mut xs, &|a, b| a.0.cmp(&b.0)));
        for w in xs.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn merge_handles_empty_sides() {
        let a: Vec<u32> = vec![];
        let b = vec![1, 2, 3];
        let mut out = vec![0; 3];
        merge_by(&a, &b, &mut out, &|x, y| x.cmp(y));
        assert_eq!(out, b);
        let mut out2 = vec![0; 3];
        merge_by(&b, &a, &mut out2, &|x, y| x.cmp(y));
        assert_eq!(out2, b);
    }

    #[test]
    fn merge_large_random() {
        let mut seed = 777u64;
        let mut a: Vec<u64> = (0..60_000).map(|_| xorshift(&mut seed) % 500).collect();
        let mut b: Vec<u64> = (0..80_000).map(|_| xorshift(&mut seed) % 500).collect();
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0u64; a.len() + b.len()];
        crate::run(|| merge_by(&a, &b, &mut out, &|x, y| x.cmp(y)));
        let mut expected = [a, b].concat();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn sort_strings() {
        let mut xs: Vec<String> = (0..20_000).map(|i| format!("k{}", (i * 37) % 9991)).collect();
        let mut expected = xs.clone();
        expected.sort();
        crate::run(|| par_sort(&mut xs));
        assert_eq!(xs, expected);
    }
}
