//! A binary fork-join work-stealing scheduler and parallel primitives.
//!
//! This crate is the parallelism substrate of the CPAM/PaC-tree
//! reproduction, playing the role that [ParlayLib] plays for the original
//! C++ implementation: it provides nested fork-join parallelism
//! ([`join`]) on a global work-stealing thread pool, plus a toolkit of
//! parallel slice primitives (map, reduce, scan, filter, sort, merge) used
//! by the tree algorithms and by the array-based sequence baseline
//! (the stand-in for Intel ParallelSTL in the paper's Figure 2).
//!
//! # Quick start
//!
//! ```
//! let xs: Vec<u64> = (0..100_000).collect();
//! let total = parlay::run(|| parlay::reduce(&xs, 0u64, |x| *x, |a, b| a + b));
//! assert_eq!(total, 100_000 * 99_999 / 2);
//! ```
//!
//! [`join`] may be called from anywhere: on a pool worker it forks in
//! place; on any other thread it routes the pair through the pool first.
//! [`run`] moves a closure onto the pool explicitly, which avoids that
//! per-call routing overhead in hot loops.
//!
//! [ParlayLib]: https://github.com/cmuparlay/parlaylib

mod job;
mod registry;

pub mod ops;
pub mod slice;
pub mod sort;

pub use ops::{
    blocked, filter, for_each_index, map, map_indexed, reduce, scan_inplace, sum, tabulate,
    SendPtr,
};
pub use registry::{
    num_threads, register_stats_with, scheduler_stats, set_num_threads, SchedulerStats,
};
pub use sort::{merge_by, par_sort, par_sort_by, par_sort_by_key};

use job::{ExternalJob, StackJob};
use registry::WorkerThread;

/// Granularity below which recursive primitives run sequentially.
pub const DEFAULT_GRAIN: usize = 2048;

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// This is the binary-forking primitive of the paper's cost model: `a`
/// runs on the current thread while `b` is exposed for stealing; if no
/// other worker is idle, `b` is popped back and run inline, so the
/// sequential overhead is a few atomic operations.
///
/// If called from a thread outside the pool, the pair is first moved onto
/// the pool (blocking the calling thread until both complete).
///
/// # Panics
///
/// If either closure panics, the panic is propagated to the caller after
/// both closures have stopped running.
///
/// # Examples
///
/// ```
/// fn fib(n: u64) -> u64 {
///     if n < 20 {
///         (1..=n).fold((0, 1), |(a, b), _| (b, a + b)).0
///     } else {
///         let (x, y) = parlay::join(|| fib(n - 1), || fib(n - 2));
///         x + y
///     }
/// }
/// assert_eq!(fib(24), 46_368);
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WorkerThread::current();
    if worker.is_null() {
        if registry::num_threads() <= 1 {
            // Single-threaded pool: nothing to gain from routing.
            return (a(), b());
        }
        return run(move || join(a, b));
    }
    // SAFETY: `worker` is the current thread's own WorkerThread, valid for
    // the duration of this call.
    let worker = unsafe { &*worker };

    if worker.is_solo() {
        // No thieves exist, so `b` could never run anywhere but here.
        // Skip the StackJob push/pop and catch_unwind entirely; panic
        // semantics match the outside-pool single-thread path (a panic in
        // `a` skips `b`).
        return (a(), b());
    }

    let job_b = StackJob::new(b);
    // SAFETY: `job_b` lives on this stack frame and we do not leave the
    // frame until `job_b.done()` is observed true.
    unsafe { worker.push(job_b.as_job_ref()) };

    // Run `a` while `b` is up for grabs. If `a` panics we still must wait
    // for `b` to finish (a thief may hold a pointer into our stack).
    let result_a = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(a)) {
        Ok(value) => value,
        Err(payload) => {
            worker.wait_until(|| job_b.done());
            std::panic::resume_unwind(payload);
        }
    };

    worker.wait_until(|| job_b.done());
    let result_b = job_b.into_result().into_return_value();
    (result_a, result_b)
}

/// Executes `f` on the thread pool and blocks until it completes.
///
/// Use this to enter the pool once at the top of a parallel computation;
/// nested [`join`] calls inside `f` then fork without any routing
/// overhead. Calling `run` from inside the pool simply invokes `f`.
///
/// # Panics
///
/// Propagates any panic raised by `f`.
///
/// # Examples
///
/// ```
/// let v: Vec<u32> = (0..1000).collect();
/// let doubled = parlay::run(|| parlay::map(&v, |x| x * 2));
/// assert_eq!(doubled[999], 1998);
/// ```
pub fn run<F, R>(f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if !WorkerThread::current().is_null() {
        return f();
    }
    let registry = registry::global();
    let job = ExternalJob::new(f);
    // SAFETY: we block on the latch below, so `job` outlives its execution.
    unsafe { registry.inject(job.as_job_ref()) };
    job.wait();
    job.into_result().into_return_value()
}

/// True if the current thread is a pool worker.
pub fn in_worker() -> bool {
    !WorkerThread::current().is_null()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fib(n: u64) -> u64 {
        if n < 10 {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..n {
                let t = a + b;
                a = b;
                b = t;
            }
            a
        } else {
            let (x, y) = join(|| fib(n - 1), || fib(n - 2));
            x + y
        }
    }

    #[test]
    fn join_computes_nested_recursion() {
        assert_eq!(run(|| fib(28)), 317_811);
    }

    #[test]
    fn join_outside_pool_routes_through_pool() {
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn join_returns_both_closure_results() {
        let (a, b) = run(|| join(|| "left".to_string(), || vec![1, 2, 3]));
        assert_eq!(a, "left");
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn run_nested_inside_pool_is_inline() {
        let r = run(|| run(|| 7));
        assert_eq!(r, 7);
    }

    #[test]
    fn panic_in_left_closure_propagates() {
        let result = std::panic::catch_unwind(|| run(|| join(|| panic!("left boom"), || 42)));
        assert!(result.is_err());
    }

    #[test]
    fn panic_in_right_closure_propagates() {
        let result = std::panic::catch_unwind(|| run(|| join(|| 42, || panic!("right boom"))));
        assert!(result.is_err());
    }

    #[test]
    fn many_concurrent_external_runs() {
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let n = run(|| fib(15));
                        assert_eq!(n, 610);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn deeply_nested_joins() {
        fn depth(d: usize) -> usize {
            if d == 0 {
                0
            } else {
                let (a, b) = join(|| depth(d - 1), || depth(d - 1));
                1 + a.max(b)
            }
        }
        assert_eq!(run(|| depth(12)), 12);
    }
}
