//! The global work-stealing thread pool.
//!
//! A fixed set of worker threads each own a LIFO [`Worker`] deque. `join`
//! pushes the second closure onto the local deque and runs the first; idle
//! workers steal from the FIFO end of other deques or from a global
//! [`Injector`] that receives jobs from threads outside the pool.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

use crate::job::JobRef;

/// Shared state of the pool.
pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleepers: AtomicUsize,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    num_threads: usize,
}

static REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Requests a specific worker count for the global pool.
///
/// Only effective before the pool is first used; afterwards it is ignored.
/// The environment variable `PARLAY_NUM_THREADS` has the same effect.
pub fn set_num_threads(n: usize) {
    REQUESTED_THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads in the global pool.
pub fn num_threads() -> usize {
    global().num_threads
}

fn configured_threads() -> usize {
    let requested = REQUESTED_THREADS.load(Ordering::Relaxed);
    if requested > 0 {
        return requested;
    }
    if let Ok(value) = std::env::var("PARLAY_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn global() -> &'static Arc<Registry> {
    REGISTRY.get_or_init(|| {
        let num_threads = configured_threads();
        let workers: Vec<Worker<JobRef>> =
            (0..num_threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleepers: AtomicUsize::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            num_threads,
        });
        for (index, worker) in workers.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("parlay-{index}"))
                .spawn(move || worker_main(registry, worker, index))
                .expect("failed to spawn parlay worker thread");
        }
        registry
    })
}

impl Registry {
    /// Queues a job from outside the pool and wakes a sleeping worker.
    ///
    /// # Safety
    /// The job must stay alive until executed.
    pub(crate) unsafe fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.notify_sleepers();
    }

    fn notify_sleepers(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_mutex.lock();
            self.sleep_cond.notify_all();
        }
    }

    /// One full attempt at finding work from the injector or a victim deque.
    fn steal_work(&self, self_index: usize, rng: &Cell<u64>) -> Option<JobRef> {
        // Try the global injector first.
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        // Then sweep the other workers, starting from a random victim.
        let n = self.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (next_rand(rng) as usize) % n;
        for offset in 0..n {
            let victim = (start + offset) % n;
            if victim == self_index {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }
}

fn next_rand(state: &Cell<u64>) -> u64 {
    // xorshift64*; cheap per-worker victim selection.
    let mut x = state.get();
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state.set(x);
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Per-worker state, reachable from thread-local storage while on a worker.
pub(crate) struct WorkerThread {
    worker: Worker<JobRef>,
    registry: Arc<Registry>,
    index: usize,
    rng: Cell<u64>,
}

thread_local! {
    static WORKER_THREAD: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

impl WorkerThread {
    /// The current worker, or null if this thread is not a pool worker.
    pub(crate) fn current() -> *const WorkerThread {
        WORKER_THREAD.with(Cell::get)
    }

    pub(crate) fn push(&self, job: JobRef) {
        self.worker.push(job);
        self.registry.notify_sleepers();
    }

    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.worker.pop()
    }

    /// Executes local, stolen, or injected jobs until `done()` is true.
    ///
    /// This is the heart of `join`: while the second closure may have been
    /// stolen, the waiting worker keeps itself busy with other work rather
    /// than blocking.
    pub(crate) fn wait_until<F: Fn() -> bool>(&self, done: F) {
        while !done() {
            if let Some(job) = self.pop() {
                // SAFETY: every JobRef in a deque points at live storage and
                // is executed exactly once. If this was our own pushed job it
                // runs inline here and `done()` turns true.
                unsafe { job.execute() };
            } else if let Some(job) = self.registry.steal_work(self.index, &self.rng) {
                // SAFETY: as above.
                unsafe { job.execute() };
            } else {
                std::thread::yield_now();
            }
        }
    }
}

fn worker_main(registry: Arc<Registry>, worker: Worker<JobRef>, index: usize) {
    let me = WorkerThread {
        worker,
        registry: Arc::clone(&registry),
        index,
        rng: Cell::new(0x9E3779B97F4A7C15u64.wrapping_mul(index as u64 + 1) | 1),
    };
    WORKER_THREAD.with(|cell| cell.set(&me as *const WorkerThread));

    let mut idle_rounds = 0u32;
    loop {
        let job = me.pop().or_else(|| registry.steal_work(index, &me.rng));
        match job {
            Some(job) => {
                idle_rounds = 0;
                // SAFETY: jobs in deques are live and executed exactly once.
                unsafe { job.execute() };
            }
            None => {
                idle_rounds += 1;
                if idle_rounds < 64 {
                    std::thread::yield_now();
                } else {
                    // Register as a sleeper and park briefly. The timeout
                    // bounds the cost of any lost-wakeup race.
                    registry.sleepers.fetch_add(1, Ordering::SeqCst);
                    let mut guard = registry.sleep_mutex.lock();
                    registry
                        .sleep_cond
                        .wait_for(&mut guard, Duration::from_millis(1));
                    drop(guard);
                    registry.sleepers.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
}
