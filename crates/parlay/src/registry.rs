//! The global work-stealing thread pool.
//!
//! A fixed set of worker threads each own a LIFO [`Worker`] deque. `join`
//! pushes the second closure onto the local deque and runs the first; idle
//! workers steal batches from the FIFO end of other deques or from a
//! global [`Injector`] that receives jobs from threads outside the pool.
//!
//! # Wake protocol
//!
//! Pushing a job must wake an idle worker, but the push path is the hot
//! path of every `join`, so it cannot afford a mutex or a `notify_all`
//! stampede. The protocol (after Rayon's sleep module, simplified):
//!
//! - **Pusher fast path:** a relaxed load of the `sleepers` count. When no
//!   worker is parked — the common case under load — pushing costs one
//!   uncontended atomic read and nothing else.
//! - **Pusher slow path:** bump the `wake_epoch` counter, take the sleep
//!   mutex, `notify_one`. Exactly one parked worker wakes per push instead
//!   of all of them.
//! - **Sleeper:** capture `wake_epoch`, advertise itself in `sleepers`,
//!   re-scan the queues (closing the race against a pusher that loaded
//!   `sleepers` before the increment), then re-check `wake_epoch` under
//!   the sleep mutex and only park if no wake happened in between. Parks
//!   always use a bounded timeout, so the residual window left by the
//!   relaxed fast-path load (pusher reads a stale zero while the sleeper
//!   registers) costs at most one timeout instead of a lost wakeup.
//!
//! Workers that complete a stolen job also run the pusher slow path: a
//! `join` caller may be parked waiting on exactly that job's `done` flag,
//! and nothing else would wake it before its timeout.
//!
//! # Steal policy
//!
//! Steals move a *batch* (half the victim's queue, capped) into the
//! thief's own deque and return one job to run, amortizing the
//! synchronization per steal. `Steal::Retry` — a lost race with another
//! thief — is bounded everywhere: a few retries on the injector, a few
//! per victim before moving on. An unbounded retry loop can livelock when
//! every attempt loses the race (observed as a real risk under
//! oversubscription; see `tests/stress.rs`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

use crate::job::JobRef;

/// Bounded `Steal::Retry` attempts against the global injector per scan.
const INJECTOR_RETRIES: usize = 4;
/// Bounded `Steal::Retry` attempts per victim before moving to the next.
const VICTIM_RETRIES: usize = 3;
/// Backoff rounds spent in `spin_loop` bursts (2^round iterations each).
const SPIN_ROUNDS: u32 = 6;
/// Backoff rounds spent in `yield_now` after spinning, before parking.
const YIELD_ROUNDS: u32 = 4;
/// Park timeout for a `join` caller waiting on its forked job. Short: the
/// completion wake usually arrives first, the timeout only bounds races.
const JOIN_PARK_TIMEOUT: Duration = Duration::from_micros(100);
/// Park timeout for an idle worker with no pending obligations.
const IDLE_PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Per-worker counters, padded to a cache line so relaxed increments on
/// the hot path never false-share with a neighbour's.
#[repr(align(64))]
#[derive(Default)]
struct WorkerCounters {
    steals: AtomicU64,
    exec_local: AtomicU64,
    exec_stolen: AtomicU64,
    retries_abandoned: AtomicU64,
    parks: AtomicU64,
}

/// Shared state of the pool.
pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    /// Number of workers currently advertising themselves as parked (or
    /// about to park). Pushers read this relaxed as the wake fast path.
    sleepers: AtomicUsize,
    /// Monotonic wake counter. Bumped by every slow-path wake; sleepers
    /// re-check it under the mutex to detect a wake that raced their
    /// registration and skip the park entirely.
    wake_epoch: AtomicU64,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    num_threads: usize,
    injected: AtomicU64,
    wakeups: AtomicU64,
    counters: Vec<WorkerCounters>,
}

static REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Requests a specific worker count for the global pool.
///
/// Only effective before the pool is first used; afterwards it is ignored.
/// The environment variable `PARLAY_NUM_THREADS` has the same effect.
pub fn set_num_threads(n: usize) {
    REQUESTED_THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads in the global pool.
pub fn num_threads() -> usize {
    global().num_threads
}

fn configured_threads() -> usize {
    let requested = REQUESTED_THREADS.load(Ordering::Relaxed);
    if requested > 0 {
        return requested;
    }
    if let Ok(value) = std::env::var("PARLAY_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn global() -> &'static Arc<Registry> {
    REGISTRY.get_or_init(|| {
        let num_threads = configured_threads();
        let workers: Vec<Worker<JobRef>> =
            (0..num_threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleepers: AtomicUsize::new(0),
            wake_epoch: AtomicU64::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            num_threads,
            injected: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            counters: (0..num_threads).map(|_| WorkerCounters::default()).collect(),
        });
        for (index, worker) in workers.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("parlay-{index}"))
                .spawn(move || worker_main(registry, worker, index))
                .expect("failed to spawn parlay worker thread");
        }
        registry
    })
}

impl Registry {
    /// Queues a job from outside the pool and wakes a sleeping worker.
    ///
    /// # Safety
    /// The job must stay alive until executed.
    pub(crate) unsafe fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.notify_one();
    }

    /// Wakes one parked worker, if any. See the module docs for the full
    /// protocol; the fast path is a single relaxed load.
    fn notify_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.wake_epoch.fetch_add(1, Ordering::Release);
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        let _guard = self.sleep_mutex.lock();
        self.sleep_cond.notify_one();
    }

    /// Whether any queue currently holds a job this worker could take.
    /// Used as the last look before parking; a false positive costs one
    /// extra scan, a false negative costs at most one park timeout.
    fn has_pending_work(&self, self_index: usize) -> bool {
        if !self.injector.is_empty() {
            return true;
        }
        self.stealers
            .iter()
            .enumerate()
            .any(|(i, s)| i != self_index && !s.is_empty())
    }
}

fn next_rand(state: &Cell<u64>) -> u64 {
    // xorshift64*; cheap per-worker victim selection.
    let mut x = state.get();
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state.set(x);
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Per-worker state, reachable from thread-local storage while on a worker.
pub(crate) struct WorkerThread {
    worker: Worker<JobRef>,
    registry: Arc<Registry>,
    index: usize,
    rng: Cell<u64>,
}

thread_local! {
    static WORKER_THREAD: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

impl WorkerThread {
    /// The current worker, or null if this thread is not a pool worker.
    pub(crate) fn current() -> *const WorkerThread {
        WORKER_THREAD.with(Cell::get)
    }

    /// Whether this worker is alone in the pool (no thieves exist).
    pub(crate) fn is_solo(&self) -> bool {
        self.registry.num_threads <= 1
    }

    fn counters(&self) -> &WorkerCounters {
        &self.registry.counters[self.index]
    }

    pub(crate) fn push(&self, job: JobRef) {
        self.worker.push(job);
        self.registry.notify_one();
    }

    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.worker.pop()
    }

    /// One full attempt at finding work: the global injector first, then
    /// the other workers starting from a random victim. Batch-steals into
    /// this worker's own deque; all `Steal::Retry` loops are bounded.
    fn steal_work(&self) -> Option<JobRef> {
        let registry = &*self.registry;
        let mut retries = 0;
        loop {
            match registry.injector.steal_batch_and_pop(&self.worker) {
                Steal::Success(job) => {
                    self.counters().steals.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
                Steal::Empty => break,
                Steal::Retry => {
                    retries += 1;
                    if retries >= INJECTOR_RETRIES {
                        self.counters()
                            .retries_abandoned
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
        let n = registry.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = (next_rand(&self.rng) as usize) % n;
        for offset in 0..n {
            let victim = (start + offset) % n;
            if victim == self.index {
                continue;
            }
            let mut retries = 0;
            loop {
                match registry.stealers[victim].steal_batch_and_pop(&self.worker) {
                    Steal::Success(job) => {
                        self.counters().steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {
                        retries += 1;
                        if retries >= VICTIM_RETRIES {
                            // Lost the race repeatedly; the next victim is
                            // more promising than another spin here.
                            self.counters()
                                .retries_abandoned
                                .fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }
        None
    }

    /// Runs a stolen or injected job and then wakes one sleeper: the
    /// job's completion may be exactly what a parked `join` caller is
    /// waiting on, and nothing else would signal it.
    ///
    /// # Safety
    /// As for [`JobRef::execute`]: `job` must point at live storage and be
    /// executed exactly once.
    unsafe fn execute_stolen(&self, job: JobRef) {
        // Count before executing: an external job's `execute` releases the
        // submitting thread, which may snapshot the stats immediately — the
        // window delta must already include this job.
        self.counters().exec_stolen.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { job.execute() };
        self.registry.notify_one();
    }

    /// Parks this worker for at most `timeout`, unless a wake or new work
    /// races in first. `abort` is re-checked after registration so a
    /// `join` waiter never sleeps past its job's completion.
    fn park(&self, timeout: Duration, abort: &dyn Fn() -> bool) {
        let registry = &*self.registry;
        let epoch = registry.wake_epoch.load(Ordering::Acquire);
        registry.sleepers.fetch_add(1, Ordering::SeqCst);
        // Re-scan after advertising ourselves: a pusher that loaded
        // `sleepers` before our increment will not wake us, but its job
        // is already visible in some queue by now (or will be caught by
        // the timeout in the worst-case interleaving).
        if abort() || !self.worker.is_empty() || registry.has_pending_work(self.index) {
            registry.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        {
            let mut guard = registry.sleep_mutex.lock();
            if registry.wake_epoch.load(Ordering::Acquire) == epoch {
                registry.sleep_cond.wait_for(&mut guard, timeout);
            }
        }
        registry.sleepers.fetch_sub(1, Ordering::SeqCst);
        self.counters().parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Executes local, stolen, or injected jobs until `done()` is true.
    ///
    /// This is the heart of `join`: while the second closure may have been
    /// stolen, the waiting worker keeps itself busy with other work rather
    /// than blocking. When no work is available it backs off in stages —
    /// spin bursts, then yields, then short parks — instead of burning a
    /// core in a bare `yield_now` loop.
    pub(crate) fn wait_until<F: Fn() -> bool>(&self, done: F) {
        let mut idle_rounds = 0u32;
        while !done() {
            if let Some(job) = self.pop() {
                self.counters().exec_local.fetch_add(1, Ordering::Relaxed);
                // SAFETY: every JobRef in a deque points at live storage and
                // is executed exactly once. If this was our own pushed job it
                // runs inline here and `done()` turns true.
                unsafe { job.execute() };
                idle_rounds = 0;
            } else if let Some(job) = self.steal_work() {
                // SAFETY: as above.
                unsafe { self.execute_stolen(job) };
                idle_rounds = 0;
            } else if idle_rounds < SPIN_ROUNDS {
                for _ in 0..(1u32 << idle_rounds) {
                    std::hint::spin_loop();
                }
                idle_rounds += 1;
            } else if idle_rounds < SPIN_ROUNDS + YIELD_ROUNDS {
                std::thread::yield_now();
                idle_rounds += 1;
            } else {
                self.park(JOIN_PARK_TIMEOUT, &|| done());
            }
        }
    }
}

fn worker_main(registry: Arc<Registry>, worker: Worker<JobRef>, index: usize) {
    let me = WorkerThread {
        worker,
        registry: Arc::clone(&registry),
        index,
        rng: Cell::new(0x9E3779B97F4A7C15u64.wrapping_mul(index as u64 + 1) | 1),
    };
    WORKER_THREAD.with(|cell| cell.set(&me as *const WorkerThread));

    let mut idle_rounds = 0u32;
    loop {
        if let Some(job) = me.pop() {
            idle_rounds = 0;
            me.counters().exec_local.fetch_add(1, Ordering::Relaxed);
            // SAFETY: jobs in deques are live and executed exactly once.
            unsafe { job.execute() };
            continue;
        }
        if let Some(job) = me.steal_work() {
            idle_rounds = 0;
            // SAFETY: as above.
            unsafe { me.execute_stolen(job) };
            continue;
        }
        idle_rounds += 1;
        if idle_rounds < SPIN_ROUNDS {
            for _ in 0..(1u32 << idle_rounds) {
                std::hint::spin_loop();
            }
        } else if idle_rounds < SPIN_ROUNDS + YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            me.park(IDLE_PARK_TIMEOUT, &|| false);
        }
    }
}

/// A snapshot of the scheduler's introspection counters.
///
/// All counters are cumulative since pool start and monotonically
/// non-decreasing; to attribute activity to a window of work, snapshot
/// before and after and subtract (see [`SchedulerStats::delta`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs injected from threads outside the pool (`parlay::run`).
    pub injected: u64,
    /// Slow-path wakes: a pusher or completing thief found at least one
    /// parked worker and signalled it.
    pub wakeups: u64,
    /// Successful steal operations (each may move a whole batch).
    pub steals: u64,
    /// Jobs a worker popped from its own deque.
    pub exec_local: u64,
    /// Stolen or injected jobs a worker executed.
    pub exec_stolen: u64,
    /// Steal attempts abandoned after the bounded `Retry` budget.
    pub retries_abandoned: u64,
    /// Times a worker parked on the sleep condvar.
    pub parks: u64,
    /// `(exec_local, exec_stolen)` broken out per worker thread.
    pub per_worker: Vec<(u64, u64)>,
}

impl SchedulerStats {
    /// Counter increments between `earlier` and `self`, where `earlier`
    /// was snapshotted first. The `per_worker` breakdown is subtracted
    /// index-wise.
    pub fn delta(&self, earlier: &SchedulerStats) -> SchedulerStats {
        SchedulerStats {
            injected: self.injected - earlier.injected,
            wakeups: self.wakeups - earlier.wakeups,
            steals: self.steals - earlier.steals,
            exec_local: self.exec_local - earlier.exec_local,
            exec_stolen: self.exec_stolen - earlier.exec_stolen,
            retries_abandoned: self.retries_abandoned - earlier.retries_abandoned,
            parks: self.parks - earlier.parks,
            per_worker: self
                .per_worker
                .iter()
                .zip(&earlier.per_worker)
                .map(|((l, s), (el, es))| (l - el, s - es))
                .collect(),
        }
    }
}

/// Reads the scheduler counters.
///
/// Starts the pool if it is not yet running (counters are a property of
/// the running scheduler).
pub fn scheduler_stats() -> SchedulerStats {
    let registry = global();
    let mut stats = SchedulerStats {
        injected: registry.injected.load(Ordering::Relaxed),
        wakeups: registry.wakeups.load(Ordering::Relaxed),
        ..SchedulerStats::default()
    };
    for c in &registry.counters {
        let local = c.exec_local.load(Ordering::Relaxed);
        let stolen = c.exec_stolen.load(Ordering::Relaxed);
        stats.steals += c.steals.load(Ordering::Relaxed);
        stats.exec_local += local;
        stats.exec_stolen += stolen;
        stats.retries_abandoned += c.retries_abandoned.load(Ordering::Relaxed);
        stats.parks += c.parks.load(Ordering::Relaxed);
        stats.per_worker.push((local, stolen));
    }
    stats
}

/// Bridges the scheduler counters into an `obs` registry as pull-style
/// callbacks (`parlay_steals_total`, `parlay_wakeups_total`, ...), the
/// same pattern as `cpam::stats::register_with`: the hot paths keep their
/// single relaxed `fetch_add` and pay nothing until something scrapes the
/// registry. Idempotent: re-registering a name is a no-op.
pub fn register_stats_with(registry: &obs::Registry) {
    fn total(read: impl Fn(&WorkerCounters) -> &AtomicU64) -> u64 {
        global()
            .counters
            .iter()
            .map(|c| read(c).load(Ordering::Relaxed))
            .sum()
    }
    registry.register_callback("parlay_injected_total", || {
        global().injected.load(Ordering::Relaxed)
    });
    registry.register_callback("parlay_wakeups_total", || {
        global().wakeups.load(Ordering::Relaxed)
    });
    registry.register_callback("parlay_steals_total", || total(|c| &c.steals));
    registry.register_callback("parlay_exec_local_total", || total(|c| &c.exec_local));
    registry.register_callback("parlay_exec_stolen_total", || total(|c| &c.exec_stolen));
    registry.register_callback("parlay_steal_retries_abandoned_total", || {
        total(|c| &c.retries_abandoned)
    });
    registry.register_callback("parlay_parks_total", || total(|c| &c.parks));
}
