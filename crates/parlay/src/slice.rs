//! Array-based parallel sequence primitives.
//!
//! This module is the reproduction's stand-in for Intel ParallelSTL in the
//! paper's Figure 2: a *static* (array-backed) sequence interface with the
//! same operations the paper benchmarks against CPAM sequences. The key
//! asymptotic contrasts the paper highlights are preserved here:
//! `nth` is `O(1)` (vs `O(log n + B)` for trees) while `append` is
//! `O(n)` (copies both inputs, vs `O(log n + B)` for trees).

use std::cmp::Ordering;

use crate::ops::SendPtr;
use crate::{blocked, reduce, tabulate, DEFAULT_GRAIN};

/// Parallel reduction with an associative operator.
///
/// ```
/// let xs = vec![1u64, 2, 3];
/// assert_eq!(parlay::slice::reduce_with(&xs, 0, |a, b| a + b), 6);
/// ```
pub fn reduce_with<T, Op>(xs: &[T], id: T, op: Op) -> T
where
    T: Clone + Send + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    reduce(xs, id, |x| x.clone(), op)
}

/// True if the slice is sorted with respect to `Ord`.
///
/// ```
/// assert!(parlay::slice::is_sorted(&[1, 2, 2, 3]));
/// assert!(!parlay::slice::is_sorted(&[2, 1]));
/// ```
pub fn is_sorted<T: Ord + Sync>(xs: &[T]) -> bool {
    if xs.len() < 2 {
        return true;
    }
    // Check adjacent pairs in parallel: pair i is (xs[i], xs[i+1]).
    reduce(
        &tabulate(xs.len() - 1, |i| i),
        true,
        |&i| xs[i] <= xs[i + 1],
        |a, b| a && b,
    )
}

/// Index of the first element satisfying `pred`, if any.
///
/// Processes geometrically growing prefixes so that an early match costs
/// `O(k)` work where `k` is the match position (the paper's `FindFirst`).
///
/// ```
/// let xs: Vec<i32> = (0..1000).collect();
/// assert_eq!(parlay::slice::find_first(&xs, |&x| x == 900), Some(900));
/// assert_eq!(parlay::slice::find_first(&xs, |&x| x > 2000), None);
/// ```
pub fn find_first<T, F>(xs: &[T], pred: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = xs.len();
    let mut lo = 0usize;
    let mut width = DEFAULT_GRAIN;
    while lo < n {
        let hi = (lo + width).min(n);
        // Min-index reduction over the current window.
        let found = reduce(
            &tabulate(hi - lo, |i| lo + i),
            usize::MAX,
            |&i| if pred(&xs[i]) { i } else { usize::MAX },
            |a, b| a.min(b),
        );
        if found != usize::MAX {
            return Some(found);
        }
        lo = hi;
        width *= 2;
    }
    None
}

/// Returns a reversed copy of the slice, in parallel.
///
/// ```
/// assert_eq!(parlay::slice::reverse(&[1, 2, 3]), vec![3, 2, 1]);
/// ```
pub fn reverse<T: Clone + Send + Sync>(xs: &[T]) -> Vec<T> {
    let n = xs.len();
    tabulate(n, |i| xs[n - 1 - i].clone())
}

/// Copies the subrange `[lo, hi)` into a fresh vector, in parallel.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > xs.len()`.
///
/// ```
/// let xs: Vec<u32> = (0..10).collect();
/// assert_eq!(parlay::slice::subseq(&xs, 2, 5), vec![2, 3, 4]);
/// ```
pub fn subseq<T: Clone + Send + Sync>(xs: &[T], lo: usize, hi: usize) -> Vec<T> {
    assert!(lo <= hi && hi <= xs.len(), "subseq range out of bounds");
    tabulate(hi - lo, |i| xs[lo + i].clone())
}

/// Concatenates two slices into a fresh vector, in parallel.
///
/// This is the `O(n)` array append the paper contrasts with the
/// `O(log n + B)` tree join.
///
/// ```
/// assert_eq!(parlay::slice::append(&[1, 2], &[3]), vec![1, 2, 3]);
/// ```
pub fn append<T: Clone + Send + Sync>(a: &[T], b: &[T]) -> Vec<T> {
    let n = a.len() + b.len();
    let mut out: Vec<T> = Vec::with_capacity(n);
    let ptr = SendPtr(out.as_mut_ptr());
    blocked(0, n, DEFAULT_GRAIN, &|lo, hi| {
        for i in lo..hi {
            let v = if i < a.len() {
                a[i].clone()
            } else {
                b[i - a.len()].clone()
            };
            // SAFETY: disjoint writes within capacity.
            unsafe { ptr.raw().add(i).write(v) };
        }
    });
    // SAFETY: all n slots written.
    unsafe { out.set_len(n) };
    out
}

/// The k-th smallest element (0-indexed) by sorting a copy.
///
/// The paper's `select` benchmark; arrays pay `O(n log n)` here while the
/// tree version answers rank queries in `O(log n + B)`.
pub fn select<T: Clone + Send + Sync + Ord>(xs: &[T], k: usize) -> Option<T> {
    if k >= xs.len() {
        return None;
    }
    let mut copy = xs.to_vec();
    crate::par_sort(&mut copy);
    Some(copy[k].clone())
}

/// Binary search in a sorted slice with an explicit comparator; returns
/// the index of the first element not less than `target`.
pub fn lower_bound_by<T, C>(xs: &[T], target: &T, cmp: &C) -> usize
where
    C: Fn(&T, &T) -> Ordering,
{
    xs.partition_point(|x| cmp(x, target) == Ordering::Less)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_sorted_detects_single_violation() {
        let mut xs: Vec<u32> = (0..50_000).collect();
        assert!(crate::run(|| is_sorted(&xs)));
        xs[30_000] = 0;
        assert!(!crate::run(|| is_sorted(&xs)));
    }

    #[test]
    fn is_sorted_edge_cases() {
        let empty: [u32; 0] = [];
        assert!(is_sorted(&empty));
        assert!(is_sorted(&[5]));
        assert!(is_sorted(&[5, 5, 5]));
    }

    #[test]
    fn find_first_returns_first_index() {
        let xs: Vec<u32> = (0..100_000).map(|i| i % 4).collect();
        // Element 3 first occurs at index 3.
        assert_eq!(crate::run(|| find_first(&xs, |&x| x == 3)), Some(3));
    }

    #[test]
    fn find_first_late_match() {
        let mut xs = vec![0u32; 80_000];
        xs[79_999] = 1;
        assert_eq!(crate::run(|| find_first(&xs, |&x| x == 1)), Some(79_999));
    }

    #[test]
    fn reverse_roundtrip() {
        let xs: Vec<u64> = (0..10_000).collect();
        assert_eq!(reverse(&reverse(&xs)), xs);
    }

    #[test]
    fn subseq_and_append_compose() {
        let xs: Vec<u32> = (0..10_000).collect();
        let left = subseq(&xs, 0, 5000);
        let right = subseq(&xs, 5000, 10_000);
        assert_eq!(append(&left, &right), xs);
    }

    #[test]
    fn select_matches_sorted_index() {
        let xs: Vec<u32> = (0..10_000).rev().collect();
        assert_eq!(select(&xs, 0), Some(0));
        assert_eq!(select(&xs, 9_999), Some(9_999));
        assert_eq!(select(&xs, 10_000), None);
    }
}
