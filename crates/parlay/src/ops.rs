//! Parallel primitives over index ranges and slices.
//!
//! All primitives are divide-and-conquer over [`crate::join`] with a
//! sequential base case of [`crate::DEFAULT_GRAIN`] elements, matching the
//! binary-forking cost model of the paper (work `O(n)`, span `O(log n)`).

use crate::{join, DEFAULT_GRAIN};

/// A raw pointer that may be sent across threads.
///
/// Used to let disjoint index ranges of one output buffer be written from
/// different workers. Safety rests entirely on the user: tasks must write
/// disjoint ranges and the buffer must outlive all tasks.
#[derive(Debug)]
pub struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The raw pointer. Taking `self` by value makes closures capture
    /// the whole `SendPtr` (which is `Send + Sync`) instead of
    /// edition-2021 disjoint-capturing the bare `*mut T` field (which
    /// is neither) — the reason the old code rebound the pointer inside
    /// every closure.
    #[inline]
    pub fn raw(self) -> *mut T {
        self.0
    }
}

// SAFETY: the users of SendPtr only write disjoint ranges from each task.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Fork cutoff adapted to the pool: forks stop once a range is below
/// `max(grain, n / (8 * num_threads))`. With `8T` leaves per thread the
/// scheduler has slack to balance load, without flooding the deques when
/// `n` is huge; on a single-threaded pool no range is ever worth forking.
fn effective_grain(n: usize, grain: usize) -> usize {
    let threads = crate::num_threads();
    if threads <= 1 {
        return usize::MAX;
    }
    grain.max(n / (8 * threads))
}

/// Applies `body(lo, hi)` over disjoint subranges of `[lo, hi)` in
/// parallel, splitting until ranges have at most `grain` elements.
///
/// Forking stops early when the pool cannot use more parallel slack
/// (the fork cutoff scales as `n / (8 · threads)` and becomes infinite
/// on a 1-thread pool); below the cutoff, `body` is still invoked on
/// chunks of at most `grain` elements, sequentially.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let total = AtomicU64::new(0);
/// parlay::blocked(0, 1000, 64, &|lo, hi| {
///     total.fetch_add((lo..hi).sum::<usize>() as u64, Ordering::Relaxed);
/// });
/// assert_eq!(total.into_inner(), 1000 * 999 / 2);
/// ```
pub fn blocked<F>(lo: usize, hi: usize, grain: usize, body: &F)
where
    F: Fn(usize, usize) + Sync,
{
    debug_assert!(grain > 0);
    if hi <= lo {
        return;
    }
    blocked_rec(lo, hi, grain, effective_grain(hi - lo, grain), body);
}

fn blocked_rec<F>(lo: usize, hi: usize, grain: usize, fork_below: usize, body: &F)
where
    F: Fn(usize, usize) + Sync,
{
    if hi - lo <= fork_below {
        let mut at = lo;
        while at < hi {
            let end = at.saturating_add(grain).min(hi);
            body(at, end);
            at = end;
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        join(
            || blocked_rec(lo, mid, grain, fork_below, body),
            || blocked_rec(mid, hi, grain, fork_below, body),
        );
    }
}

/// Calls `f(i)` for every `i` in `[0, n)` in parallel.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let hits = AtomicUsize::new(0);
/// parlay::for_each_index(100, &|_i| { hits.fetch_add(1, Ordering::Relaxed); });
/// assert_eq!(hits.into_inner(), 100);
/// ```
pub fn for_each_index<F>(n: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    blocked(0, n, DEFAULT_GRAIN, &|lo, hi| {
        for i in lo..hi {
            f(i);
        }
    });
}

/// Builds a vector of length `n` where element `i` is `f(i)`, in parallel.
///
/// ```
/// let squares = parlay::tabulate(10, |i| i * i);
/// assert_eq!(squares[7], 49);
/// ```
pub fn tabulate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(n);
    let ptr = SendPtr(out.as_mut_ptr());
    blocked(0, n, DEFAULT_GRAIN, &|lo, hi| {
        for i in lo..hi {
            // SAFETY: each index is written exactly once, within capacity.
            unsafe { ptr.raw().add(i).write(f(i)) };
        }
    });
    // SAFETY: all n slots were initialized above.
    unsafe { out.set_len(n) };
    out
}

/// Applies `f` to every element of `xs` in parallel, collecting results.
///
/// ```
/// let xs = vec![1, 2, 3];
/// assert_eq!(parlay::map(&xs, |x| x * 10), vec![10, 20, 30]);
/// ```
pub fn map<T, U, F>(xs: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    tabulate(xs.len(), |i| f(&xs[i]))
}

/// Like [`map`], but the function also receives the element index.
pub fn map_indexed<T, U, F>(xs: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    tabulate(xs.len(), |i| f(i, &xs[i]))
}

/// Parallel reduction: maps each element with `m`, combines with the
/// associative operator `op` starting from identity `id`.
///
/// ```
/// let xs: Vec<u32> = (1..=6).collect();
/// let product = parlay::reduce(&xs, 1u64, |x| *x as u64, |a, b| a * b);
/// assert_eq!(product, 720);
/// ```
pub fn reduce<T, R, M, Op>(xs: &[T], id: R, m: M, op: Op) -> R
where
    T: Sync,
    R: Send + Sync + Clone,
    M: Fn(&T) -> R + Sync,
    Op: Fn(R, R) -> R + Sync,
{
    fn go<T, R, M, Op>(xs: &[T], id: &R, m: &M, op: &Op, fork_below: usize) -> R
    where
        T: Sync,
        R: Send + Sync + Clone,
        M: Fn(&T) -> R + Sync,
        Op: Fn(R, R) -> R + Sync,
    {
        if xs.len() <= fork_below {
            xs.iter().fold(id.clone(), |acc, x| op(acc, m(x)))
        } else {
            let (l, r) = xs.split_at(xs.len() / 2);
            let (a, b) = join(
                || go(l, id, m, op, fork_below),
                || go(r, id, m, op, fork_below),
            );
            op(a, b)
        }
    }
    // The reduction tree's shape depends on the worker count, so `op`
    // must be associative for the result to be deterministic.
    go(xs, &id, &m, &op, effective_grain(xs.len(), DEFAULT_GRAIN))
}

/// Parallel sum of a slice of unsigned integers.
///
/// ```
/// let xs = vec![1u64, 2, 3, 4];
/// assert_eq!(parlay::sum(&xs), 10);
/// ```
pub fn sum<T>(xs: &[T]) -> u64
where
    T: Sync + Copy + Into<u64>,
{
    reduce(xs, 0u64, |x| (*x).into(), |a, b| a + b)
}

/// Exclusive prefix sum in place; returns the total.
///
/// Uses the classic two-pass blocked algorithm: per-block sums, a
/// sequential scan over block sums, then a parallel fix-up pass.
///
/// ```
/// let mut xs = vec![3u64, 1, 4, 1, 5];
/// let total = parlay::scan_inplace(&mut xs);
/// assert_eq!(total, 14);
/// assert_eq!(xs, vec![0, 3, 4, 8, 9]);
/// ```
pub fn scan_inplace(xs: &mut [u64]) -> u64 {
    let n = xs.len();
    if n == 0 {
        return 0;
    }
    if n <= DEFAULT_GRAIN {
        let mut acc = 0u64;
        for x in xs.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        return acc;
    }
    let num_blocks = n.div_ceil(DEFAULT_GRAIN);
    let mut block_sums = vec![0u64; num_blocks];
    {
        let sums = SendPtr(block_sums.as_mut_ptr());
        let data = SendPtr(xs.as_mut_ptr());
        blocked(0, num_blocks, 1, &|blo, bhi| {
            for b in blo..bhi {
                let lo = b * DEFAULT_GRAIN;
                let hi = ((b + 1) * DEFAULT_GRAIN).min(n);
                let mut acc = 0u64;
                for i in lo..hi {
                    // SAFETY: blocks are disjoint index ranges.
                    unsafe { acc += *data.raw().add(i) };
                }
                unsafe { *sums.raw().add(b) = acc };
            }
        });
    }
    let mut acc = 0u64;
    for s in block_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let total = acc;
    {
        let sums = SendPtr(block_sums.as_mut_ptr());
        let data = SendPtr(xs.as_mut_ptr());
        blocked(0, num_blocks, 1, &|blo, bhi| {
            for b in blo..bhi {
                let lo = b * DEFAULT_GRAIN;
                let hi = ((b + 1) * DEFAULT_GRAIN).min(n);
                // SAFETY: blocks are disjoint index ranges.
                let mut running = unsafe { *sums.raw().add(b) };
                for i in lo..hi {
                    unsafe {
                        let v = *data.raw().add(i);
                        *data.raw().add(i) = running;
                        running += v;
                    }
                }
            }
        });
    }
    total
}

/// Keeps the elements satisfying `pred`, preserving order, in parallel.
///
/// ```
/// let xs: Vec<i32> = (0..100).collect();
/// let evens = parlay::filter(&xs, |x| x % 2 == 0);
/// assert_eq!(evens.len(), 50);
/// assert_eq!(evens[3], 6);
/// ```
pub fn filter<T, F>(xs: &[T], pred: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = xs.len();
    if n <= DEFAULT_GRAIN {
        return xs.iter().filter(|x| pred(x)).cloned().collect();
    }
    let num_blocks = n.div_ceil(DEFAULT_GRAIN);
    let mut offsets: Vec<u64> = tabulate(num_blocks, |b| {
        let lo = b * DEFAULT_GRAIN;
        let hi = ((b + 1) * DEFAULT_GRAIN).min(n);
        xs[lo..hi].iter().filter(|x| pred(x)).count() as u64
    });
    let total = scan_inplace(&mut offsets) as usize;
    let mut out: Vec<T> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    blocked(0, num_blocks, 1, &|blo, bhi| {
        for (b, &off) in offsets.iter().enumerate().take(bhi).skip(blo) {
            let lo = b * DEFAULT_GRAIN;
            let hi = ((b + 1) * DEFAULT_GRAIN).min(n);
            let mut at = off as usize;
            for x in &xs[lo..hi] {
                if pred(x) {
                    // SAFETY: each block writes its own disjoint output
                    // range starting at its scanned offset.
                    unsafe { ptr.raw().add(at).write(x.clone()) };
                    at += 1;
                }
            }
        }
    });
    // SAFETY: exactly `total` slots were initialized.
    unsafe { out.set_len(total) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_empty() {
        let v: Vec<u32> = tabulate(0, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn tabulate_large_matches_sequential() {
        let v = crate::run(|| tabulate(100_000, |i| i as u64 * 3));
        assert_eq!(v.len(), 100_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn reduce_matches_fold() {
        let xs: Vec<u64> = (0..50_000).collect();
        let expected: u64 = xs.iter().sum();
        assert_eq!(crate::run(|| sum(&xs)), expected);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let xs: Vec<u64> = vec![];
        assert_eq!(reduce(&xs, 42u64, |x| *x, |a, b| a + b), 42);
    }

    #[test]
    fn scan_matches_sequential_scan() {
        let mut xs: Vec<u64> = (0..10_000).map(|i| i % 7).collect();
        let mut expected = xs.clone();
        let mut acc = 0;
        for x in expected.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        let total = crate::run(|| scan_inplace(&mut xs));
        assert_eq!(total, acc);
        assert_eq!(xs, expected);
    }

    #[test]
    fn scan_empty_and_single() {
        let mut e: Vec<u64> = vec![];
        assert_eq!(scan_inplace(&mut e), 0);
        let mut s = vec![9u64];
        assert_eq!(scan_inplace(&mut s), 9);
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn filter_matches_sequential() {
        let xs: Vec<u32> = (0..30_000).collect();
        let got = crate::run(|| filter(&xs, |x| x % 3 == 0));
        let expected: Vec<u32> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn filter_none_and_all() {
        let xs: Vec<u32> = (0..5000).collect();
        assert!(filter(&xs, |_| false).is_empty());
        assert_eq!(filter(&xs, |_| true), xs);
    }

    #[test]
    fn map_preserves_order() {
        let xs: Vec<i64> = (0..10_000).rev().collect();
        let ys = crate::run(|| map(&xs, |x| x + 1));
        assert!(ys.windows(2).all(|w| w[0] == w[1] + 1));
    }
}
