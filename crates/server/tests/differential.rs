//! Differential tests for the wire protocol: random op sequences
//! driven through a *live* in-process server — real frames, real
//! connection threads, real group commit — and checked request-by-
//! request against a `BTreeMap` oracle.
//!
//! Every sequence also exercises the two failure paths a network
//! client actually hits: a mid-sequence reconnect (the client drops
//! its connection and redials; no state may leak across the redial)
//! and one torn-frame injection (a bit-flipped frame written on a raw
//! connection must come back as a typed `MalformedRequest` error and
//! kill only that connection, never the server).
//!
//! Any divergence panics with the exact reproducing seed, and setting
//! `PROPTEST_SEED=<n>` replays just that sequence. `DIFF_SERVER_CASES`
//! overrides the default volume (40 sequences).

use std::collections::BTreeMap;
use std::io::Write;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server::{
    serve_pipe, Client, ClientError, ClientOptions, ErrorCode, Request, Response, ServerOptions,
};
use store::{Op, Router, ShardedStore, StoreOptions};

/// Keys are drawn a little past the routed span so the last shard's
/// open upper range is exercised through the wire too.
const KEY_SPAN: u64 = 96;

fn cases() -> u64 {
    std::env::var("DIFF_SERVER_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

fn client_opts() -> ClientOptions {
    ClientOptions {
        request_timeout: Duration::from_secs(10),
        ..ClientOptions::default()
    }
}

/// Flips a payload bit in an otherwise valid frame and writes it on a
/// raw connection: the server must answer with a typed
/// `MalformedRequest` error, then drop that connection (frame
/// boundaries are unrecoverable after a CRC failure).
fn inject_torn_frame(connector: &server::PipeConnector) -> Result<(), String> {
    let mut raw = connector.connect().map_err(|e| e.to_string())?;
    raw.set_read_timeout(Some(Duration::from_secs(10)));
    let mut bytes = store::wal::frame(&Request::<u64, u32>::Snapshot.encode());
    bytes[1] ^= 0x01; // first payload byte: CRC no longer matches
    raw.write_all(&bytes).map_err(|e| e.to_string())?;
    match server::read_frame(&mut raw) {
        Ok(payload) => match Response::<u64, u32>::decode(&payload) {
            Ok(Response::Error { code: ErrorCode::MalformedRequest, .. }) => {}
            other => return Err(format!("torn frame: unexpected response {other:?}")),
        },
        Err(e) => return Err(format!("torn frame: no error response ({e})")),
    }
    // The server hangs up after a framing error.
    match server::read_frame(&mut raw) {
        Err(server::FrameError::Closed) => Ok(()),
        other => Err(format!("torn frame: connection not dropped ({other:?})")),
    }
}

/// One randomized sequence through a live pipe server.
fn run_one(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = StoreOptions {
        block_size: 4,
        history_limit: 4,
        ..StoreOptions::default()
    };
    let shards = 1 + rng.gen_range(0..4usize);
    let store: ShardedStore<u64, u32> =
        ShardedStore::in_memory_with(Router::uniform_span(shards, KEY_SPAN), opts)
            .map_err(|e| e.to_string())?;
    let (mut handle, connector) = serve_pipe(store, ServerOptions::default());
    let mut client: Client<u64, u32> = Client::connect_pipe(connector.clone(), client_opts());

    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
    // Oracle state at the moment we pinned, for end-of-run `get_at`.
    let mut pinned: Option<(u64, BTreeMap<u64, u32>)> = None;

    let commits = 2 + rng.gen_range(0..6usize);
    let reconnect_at = rng.gen_range(0..commits);
    let torn_at = rng.gen_range(0..commits);
    let pin_at = rng.gen_range(0..commits);

    for c in 0..commits {
        if c == reconnect_at {
            client.reconnect();
        }
        if c == torn_at {
            inject_torn_frame(&connector)?;
        }

        let len = rng.gen_range(1..16usize);
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            if rng.gen_range(0..10) < 7 {
                let v = rng.gen_range(0..1_000u32);
                oracle.insert(k, v);
                ops.push(Op::Put(k, v));
            } else {
                oracle.remove(&k);
                ops.push(Op::Delete(k));
            }
        }
        let version = client.put_batch(ops).map_err(|e| format!("commit {c}: {e}"))?;
        if version != c as u64 + 1 {
            return Err(format!("commit {c}: version {version}, expected {}", c + 1));
        }

        if c == pin_at {
            client.pin(version).map_err(|e| format!("pin {version}: {e}"))?;
            pinned = Some((version, oracle.clone()));
        }

        // Point probes, including misses.
        for _ in 0..4 {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            let got = client.get(k).map_err(|e| format!("get({k}): {e}"))?;
            if got != oracle.get(&k).copied() {
                return Err(format!(
                    "after commit {c}: get({k}) = {got:?}, oracle {:?}",
                    oracle.get(&k)
                ));
            }
        }

        // A random inclusive range, spanning shard boundaries, with a
        // random limit (0 = unlimited).
        let a = rng.gen_range(0..KEY_SPAN);
        let z = rng.gen_range(0..KEY_SPAN);
        let (lo, hi) = (a.min(z), a.max(z));
        let limit = rng.gen_range(0..8u64);
        let got = client
            .range(lo, hi, limit, None)
            .map_err(|e| format!("range [{lo},{hi}]: {e}"))?;
        let mut want: Vec<(u64, u32)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        if limit != 0 && want.len() as u64 > limit {
            want.truncate(limit as usize);
        }
        if got != want {
            return Err(format!(
                "after commit {c}: range [{lo}, {hi}] limit {limit} diverges\n  \
                 server: {got:?}\n  oracle: {want:?}"
            ));
        }

        // The version vector is consistent: the global version equals
        // the commit count, and each local is at most the global.
        let (global, locals) = client.snapshot().map_err(|e| format!("snapshot: {e}"))?;
        if global != c as u64 + 1 {
            return Err(format!("after commit {c}: global {global} != {}", c + 1));
        }
        if locals.len() != shards || locals.iter().any(|&l| l > global) {
            return Err(format!(
                "after commit {c}: inconsistent version vector {locals:?} (global {global})"
            ));
        }
    }

    // The pinned version still reads exactly its commit-time contents,
    // even though history_limit=4 evicted its unpinned contemporaries.
    if let Some((version, ref at_pin)) = pinned {
        for _ in 0..6 {
            let k = rng.gen_range(0..KEY_SPAN + KEY_SPAN / 4);
            let got = client
                .get_at(k, Some(version))
                .map_err(|e| format!("get_at({k}, {version}): {e}"))?;
            if got != at_pin.get(&k).copied() {
                return Err(format!(
                    "pinned get_at({k}, {version}) = {got:?}, oracle-at-pin {:?}",
                    at_pin.get(&k)
                ));
            }
        }
        client.unpin(version).map_err(|e| format!("unpin {version}: {e}"))?;
    }

    // A version that fell off the (tiny) retained history is a typed
    // VersionNotFound through the wire, not a hang or a wrong answer.
    if commits as u64 > 4 + 1 {
        let evicted = 1u64;
        if pinned.as_ref().map(|(v, _)| *v) != Some(evicted) {
            match client.get_at(0, Some(evicted)) {
                Err(ClientError::Server { code: ErrorCode::VersionNotFound, .. }) => {}
                other => {
                    return Err(format!("evicted version read: expected typed miss, got {other:?}"))
                }
            }
        }
    }

    // The metrics scrape flows through the same wire path.
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    if !stats.contains("pacserve_requests_total") {
        return Err("stats scrape is missing pacserve_requests_total".into());
    }

    handle.shutdown();
    Ok(())
}

#[test]
fn server_matches_btreemap_oracle() {
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => (0xD1FF_5E2Bu64.wrapping_mul(0x9E37_79B9_7F4A_7C15), cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_one(seed) {
            panic!(
                "server differential divergence: {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p server --test differential"
            );
        }
    }
}

/// Garbage *inside* a valid frame (CRC passes, message does not parse)
/// must produce a typed error and keep the connection alive — the
/// stream is still framed, so the next request on the same connection
/// succeeds.
#[test]
fn malformed_message_keeps_the_connection() {
    let store: ShardedStore<u64, u32> = ShardedStore::in_memory_with(
        Router::uniform_span(2, KEY_SPAN),
        StoreOptions::default(),
    )
    .unwrap();
    let (mut handle, connector) = serve_pipe(store, ServerOptions::default());

    let mut raw = connector.connect().unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10)));
    // A framed message with a bogus opcode: intact on the wire,
    // nonsense at the protocol layer.
    raw.write_all(&store::wal::frame(&[server::WIRE_FORMAT, 0x7E])).unwrap();
    let payload = server::read_frame(&mut raw).unwrap();
    match Response::<u64, u32>::decode(&payload).unwrap() {
        Response::Error { code: ErrorCode::MalformedRequest, .. } => {}
        other => panic!("expected MalformedRequest, got {other:?}"),
    }
    // Same connection, now a well-formed request: still served.
    raw.write_all(&store::wal::frame(&Request::<u64, u32>::Snapshot.encode())).unwrap();
    let payload = server::read_frame(&mut raw).unwrap();
    match Response::<u64, u32>::decode(&payload).unwrap() {
        Response::Snapshot { global: 0, .. } => {}
        other => panic!("expected empty snapshot, got {other:?}"),
    }

    handle.shutdown();
}

/// A reader holding a pinned snapshot observes its version's exact
/// contents while concurrent writers commit through the same server.
#[test]
fn pinned_reader_is_isolated_from_concurrent_writers() {
    let store: ShardedStore<u64, u64> = ShardedStore::in_memory_with(
        Router::uniform_span(4, KEY_SPAN),
        StoreOptions { history_limit: 8, ..StoreOptions::default() },
    )
    .unwrap();
    let (mut handle, connector) = serve_pipe(store, ServerOptions::default());

    // Seed a known state and pin it.
    let mut writer: Client<u64, u64> = Client::connect_pipe(connector.clone(), client_opts());
    let base = writer
        .put_batch((0..KEY_SPAN).map(|k| Op::Put(k, k * 10)).collect())
        .unwrap();
    let mut reader: Client<u64, u64> = Client::connect_pipe(connector.clone(), client_opts());
    reader.pin(base).unwrap();

    // Writers hammer the same keys from four connections.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let connector = connector.clone();
            std::thread::spawn(move || {
                let mut client: Client<u64, u64> =
                    Client::connect_pipe(connector, client_opts());
                for i in 0..50u64 {
                    client
                        .put_batch(vec![Op::Put((w * 13 + i) % KEY_SPAN, w * 1_000 + i)])
                        .unwrap();
                }
            })
        })
        .collect();

    // Meanwhile the pinned view never moves.
    for probe in 0..40u64 {
        let k = (probe * 7) % KEY_SPAN;
        assert_eq!(
            reader.get_at(k, Some(base)).unwrap(),
            Some(k * 10),
            "pinned read of key {k} drifted while writers committed"
        );
    }
    for w in writers {
        w.join().unwrap();
    }

    // After the dust settles the live view has advanced past the pin.
    // (Concurrent batches share commit groups, so the global version
    // grows by the number of *groups*, not the number of batches.)
    let (global, locals) = reader.snapshot().unwrap();
    assert!(
        global > base && global <= base + 200,
        "global {global} outside (base, base+200] with base {base}"
    );
    assert!(locals.iter().all(|&l| l <= global));
    reader.unpin(base).unwrap();

    handle.shutdown();
}
