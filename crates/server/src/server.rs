//! The serving loop: connection-per-thread request dispatch into a
//! [`ShardedStore`], with graceful drain on shutdown.
//!
//! Threading model: one accept thread per server plus one thread per
//! live connection. Writers funnel into the store's group-commit
//! pipeline — concurrent `put_batch` requests from different
//! connections land in one commit group, so the WAL sees one append
//! per *group*, not per request. Readers never block writers: every
//! read request pins a consistent version-vector snapshot
//! ([`ShardedStore::snapshot`] is O(shards)) and serves from it.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] stops the
//! accept loop, then every connection thread finishes the request it
//! is serving (connection loops poll the shutdown flag between
//! frames) and exits; the handle waits for that drain up to
//! [`ServerOptions::drain_timeout`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use codecs::BlockIo;
use obs::{Counter, Gauge, Histogram};
use store::{ShardedStore, StoreKey, StoreValue};

use crate::frame::{self, FrameError};
use crate::proto::{ErrorCode, ProtoError, Request, Response};
use crate::transport::{pipe_channel, PipeConnector, Transport};

/// Tuning knobs for a server.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// How long a connection thread blocks waiting for the next frame
    /// before re-checking the shutdown flag. Lower = faster shutdown,
    /// higher = fewer wakeups.
    pub read_poll: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight
    /// requests to drain before giving up on stragglers.
    pub drain_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_poll: Duration::from_millis(25),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Pre-resolved [`obs::global`] handles for the request path, same
/// zero-overhead policy as `store::metrics`: the registry lock is
/// never touched after construction. All series are prefixed
/// `pacserve_`.
struct ServerMetrics {
    /// Per-op request latency, `pacserve_request_ns{op=...}` — frame
    /// read to response flushed.
    put_batch: Arc<Histogram>,
    get: Arc<Histogram>,
    range: Arc<Histogram>,
    snapshot: Arc<Histogram>,
    pin: Arc<Histogram>,
    unpin: Arc<Histogram>,
    stats: Arc<Histogram>,
    /// Requests currently being served, across all connections.
    in_flight: Arc<Gauge>,
    /// Wire bytes received / sent (frame overhead included).
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    /// Requests served (errors included) and error responses sent.
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    /// Connections ever accepted.
    connections: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let r = obs::global();
        let op_hist =
            |op: &str| r.histogram(&obs::labeled("pacserve_request_ns", &[("op", op)]));
        ServerMetrics {
            put_batch: op_hist("put_batch"),
            get: op_hist("get"),
            range: op_hist("range"),
            snapshot: op_hist("snapshot"),
            pin: op_hist("pin"),
            unpin: op_hist("unpin"),
            stats: op_hist("stats"),
            in_flight: r.gauge("pacserve_in_flight_requests"),
            bytes_in: r.counter("pacserve_bytes_in_total"),
            bytes_out: r.counter("pacserve_bytes_out_total"),
            requests: r.counter("pacserve_requests_total"),
            errors: r.counter("pacserve_request_errors_total"),
            connections: r.counter("pacserve_connections_total"),
        }
    }

    fn request_hist(&self, req_op: &str) -> &Arc<Histogram> {
        match req_op {
            "put_batch" => &self.put_batch,
            "get" => &self.get,
            "range" => &self.range,
            "snapshot" => &self.snapshot,
            "pin" => &self.pin,
            "unpin" => &self.unpin,
            _ => &self.stats,
        }
    }
}

/// Shutdown flag plus live-connection accounting, shared by the
/// accept loop, every connection thread, and the handle.
struct Control {
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    drained: Mutex<()>,
    drained_cv: Condvar,
}

impl Control {
    fn new() -> Arc<Control> {
        Arc::new(Control {
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            drained: Mutex::new(()),
            drained_cv: Condvar::new(),
        })
    }

    fn conn_started(&self) {
        self.active_conns.fetch_add(1, Ordering::SeqCst);
    }

    fn conn_finished(&self) {
        self.active_conns.fetch_sub(1, Ordering::SeqCst);
        self.drained_cv.notify_all();
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (stop accepting, drain in-flight requests).
pub struct ServerHandle {
    control: Arc<Control>,
    accept_thread: Option<JoinHandle<()>>,
    addr: Option<std::net::SocketAddr>,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// The bound socket address (TCP servers only).
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.addr
    }

    /// Stops accepting, lets in-flight requests finish, and waits for
    /// every connection thread to exit (bounded by
    /// [`ServerOptions::drain_timeout`]). Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.control.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.drain_timeout;
        let mut guard = self.control.drained.lock().unwrap_or_else(|e| e.into_inner());
        while self.control.active_conns.load(Ordering::SeqCst) > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _) = self
                .control
                .drained_cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = next;
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves `store` over TCP on `addr` (use port 0 for an ephemeral
/// port, then read [`ServerHandle::addr`]).
///
/// # Errors
///
/// Any socket bind/configure error.
pub fn serve_tcp<K, V, C>(
    store: ShardedStore<K, V, C>,
    addr: impl std::net::ToSocketAddrs,
    opts: ServerOptions,
) -> std::io::Result<ServerHandle>
where
    K: StoreKey + Send + Sync + 'static,
    V: StoreValue + Send + Sync + 'static,
    C: BlockIo<(K, V)> + Send + Sync + 'static,
{
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let control = Control::new();
    let metrics = Arc::new(ServerMetrics::new());
    let accept_control = Arc::clone(&control);
    let accept_opts = opts.clone();
    let accept_thread = std::thread::spawn(move || {
        while !accept_control.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((sock, _peer)) => {
                    let _ = sock.set_nodelay(true);
                    let _ = sock.set_read_timeout(Some(accept_opts.read_poll));
                    spawn_conn(
                        store.clone(),
                        Transport::Tcp(sock),
                        Arc::clone(&accept_control),
                        Arc::clone(&metrics),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(accept_opts.read_poll.min(Duration::from_millis(10)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    });
    Ok(ServerHandle {
        control,
        accept_thread: Some(accept_thread),
        addr: Some(local),
        drain_timeout: opts.drain_timeout,
    })
}

/// Serves `store` over an in-process pipe; clients dial through the
/// returned [`PipeConnector`]. No sockets involved — the whole framed
/// wire path still runs.
pub fn serve_pipe<K, V, C>(
    store: ShardedStore<K, V, C>,
    opts: ServerOptions,
) -> (ServerHandle, PipeConnector)
where
    K: StoreKey + Send + Sync + 'static,
    V: StoreValue + Send + Sync + 'static,
    C: BlockIo<(K, V)> + Send + Sync + 'static,
{
    let (listener, connector) = pipe_channel();
    let control = Control::new();
    let metrics = Arc::new(ServerMetrics::new());
    let accept_control = Arc::clone(&control);
    let accept_opts = opts.clone();
    let accept_thread = std::thread::spawn(move || {
        while !accept_control.shutdown.load(Ordering::SeqCst) {
            match listener.accept(accept_opts.read_poll) {
                Ok(Some(mut end)) => {
                    end.set_read_timeout(Some(accept_opts.read_poll));
                    spawn_conn(
                        store.clone(),
                        Transport::Pipe(end),
                        Arc::clone(&accept_control),
                        Arc::clone(&metrics),
                    );
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    });
    (
        ServerHandle {
            control,
            accept_thread: Some(accept_thread),
            addr: None,
            drain_timeout: opts.drain_timeout,
        },
        connector,
    )
}

fn spawn_conn<K, V, C>(
    store: ShardedStore<K, V, C>,
    conn: Transport,
    control: Arc<Control>,
    metrics: Arc<ServerMetrics>,
) where
    K: StoreKey + Send + Sync + 'static,
    V: StoreValue + Send + Sync + 'static,
    C: BlockIo<(K, V)> + Send + Sync + 'static,
{
    control.conn_started();
    metrics.connections.inc();
    std::thread::spawn(move || {
        serve_conn(&store, conn, &control, &metrics);
        control.conn_finished();
    });
}

/// One connection's request loop. Exits on peer close, on an
/// unrecoverable stream error, or once shutdown is flagged (after
/// finishing the frame being served, never mid-request).
fn serve_conn<K, V, C>(
    store: &ShardedStore<K, V, C>,
    mut conn: Transport,
    control: &Control,
    metrics: &ServerMetrics,
) where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    loop {
        if control.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match frame::read_frame(&mut conn) {
            Ok(p) => p,
            Err(FrameError::TimedOut) => continue,
            Err(FrameError::Closed) => return,
            Err(err @ (FrameError::TooLarge(_) | FrameError::BadCrc { .. })) => {
                // The stream framing itself is broken; after telling
                // the peer (best effort) the only safe move is to
                // drop the connection — frame boundaries are gone.
                metrics.errors.inc();
                let resp: Response<K, V> = Response::Error {
                    code: ErrorCode::MalformedRequest,
                    message: err.to_string(),
                };
                let _ = frame::write_frame(&mut conn, &resp.encode());
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        metrics
            .bytes_in
            .add(payload.len() as u64 + codecs::bytecode::varint_len(payload.len() as u64) as u64 + 4);

        let started = Instant::now();
        metrics.in_flight.add(1);
        metrics.requests.inc();
        let (op, resp) = match Request::<K, V>::decode(&payload) {
            Ok(req) => {
                let op = req.op_name();
                (op, handle_request(store, req))
            }
            Err(e @ (ProtoError::Malformed(_) | ProtoError::Opcode(_) | ProtoError::Format(_))) => {
                // The frame was intact (CRC passed) but the message
                // inside is nonsense; the stream is still framed, so
                // answer typed and keep the connection.
                (
                    "malformed",
                    Response::Error {
                        code: ErrorCode::MalformedRequest,
                        message: e.to_string(),
                    },
                )
            }
        };
        if matches!(resp, Response::Error { .. }) {
            metrics.errors.inc();
        }
        let write = frame::write_frame(&mut conn, &resp.encode());
        metrics.request_hist(op).record(started.elapsed().as_nanos() as u64);
        metrics.in_flight.add(-1);
        match write {
            Ok(n) => metrics.bytes_out.add(n),
            Err(_) => return,
        }
    }
}

/// Maps one decoded request onto the store. Reads pin a consistent
/// version-vector snapshot per request; writes go through the group
/// commit pipeline.
fn handle_request<K, V, C>(store: &ShardedStore<K, V, C>, req: Request<K, V>) -> Response<K, V>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    fn store_err<K: StoreKey, V: StoreValue>(e: &store::StoreError) -> Response<K, V> {
        Response::Error { code: ErrorCode::of(e), message: e.to_string() }
    }

    match req {
        Request::PutBatch(ops) => match store.commit(ops) {
            Ok(version) => Response::Committed(version),
            Err(e) => store_err(&e),
        },
        Request::Get { key, at } => match read_snapshot(store, at) {
            Ok(snap) => Response::Value(snap.get(&key)),
            Err(e) => store_err(&e),
        },
        Request::Range { lo, hi, limit, at } => match read_snapshot(store, at) {
            Ok(snap) => {
                let mut entries = snap.range_entries(&lo, &hi);
                if limit != 0 && (entries.len() as u64) > limit {
                    entries.truncate(limit as usize);
                }
                Response::Entries(entries)
            }
            Err(e) => store_err(&e),
        },
        Request::Snapshot => {
            let snap = store.snapshot();
            Response::Snapshot {
                global: snap.version(),
                locals: snap.version_vector().to_vec(),
            }
        }
        Request::Pin(v) => match store.pin_version(v) {
            Ok(()) => Response::Pinned(v),
            Err(e) => store_err(&e),
        },
        Request::Unpin(v) => match store.unpin_version(v) {
            Ok(()) => Response::Unpinned(v),
            Err(e) => store_err(&e),
        },
        Request::Stats => Response::Stats(obs::global().render_text()),
    }
}

fn read_snapshot<K, V, C>(
    store: &ShardedStore<K, V, C>,
    at: Option<u64>,
) -> Result<store::ShardedSnapshot<K, V, C>, store::StoreError>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    match at {
        None => Ok(store.snapshot()),
        Some(v) => store.snapshot_at(v),
    }
}
