//! Request/response message layer: what goes inside a wire frame.
//!
//! Every payload leads with [`WIRE_FORMAT`] (so a peer speaking a
//! different protocol revision is a typed error, mirroring
//! [`store::wal::LOG_FORMAT`]) and an opcode byte; fields follow in
//! [`codecs::ByteEncode`] encoding. Decoding goes exclusively through
//! the fallible `try_read` path — the frame CRC only proves the bytes
//! are what the peer sent, not that the peer is honest, so every
//! length is validated in the u64 domain before it becomes an
//! allocation or a slice.

use codecs::{bytecode, ByteEncode};
use store::{Op, StoreError, StoreKey, StoreValue};

/// Format byte of every message this build writes and reads (revision
/// 1 of the pacserve wire protocol). Distinct from
/// [`store::wal::LOG_FORMAT`] so a log image piped at a server (or
/// vice versa) fails typed.
pub const WIRE_FORMAT: u8 = 0xB3;

const REQ_PUT_BATCH: u8 = 0x01;
const REQ_GET: u8 = 0x02;
const REQ_RANGE: u8 = 0x03;
const REQ_SNAPSHOT: u8 = 0x04;
const REQ_PIN: u8 = 0x05;
const REQ_UNPIN: u8 = 0x06;
const REQ_STATS: u8 = 0x07;

const RESP_COMMITTED: u8 = 0x81;
const RESP_VALUE: u8 = 0x82;
const RESP_ENTRIES: u8 = 0x83;
const RESP_SNAPSHOT: u8 = 0x84;
const RESP_PINNED: u8 = 0x85;
const RESP_UNPINNED: u8 = 0x86;
const RESP_STATS: u8 = 0x87;
const RESP_ERROR: u8 = 0xFF;

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Why a message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The leading format byte is not [`WIRE_FORMAT`].
    Format(u8),
    /// Unknown opcode for this message direction.
    Opcode(u8),
    /// The payload ended inside the named field, or a count/length
    /// described more elements than the payload could hold.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Format(b) => {
                write!(f, "wire format {b:#04x}, this build speaks {WIRE_FORMAT:#04x}")
            }
            ProtoError::Opcode(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Stable error codes carried by [`Response::Error`], so clients can
/// react without parsing the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The requested version is neither current nor retained.
    VersionNotFound = 1,
    /// Unpin of a version that holds no pin.
    NotPinned = 2,
    /// The commit (or its group) failed; nothing was published.
    CommitFailed = 3,
    /// The request decoded as a frame but not as a message.
    MalformedRequest = 4,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown = 5,
    /// Any other store-side failure; see the message text.
    Internal = 6,
}

impl ErrorCode {
    /// The code for a store-side failure.
    pub fn of(err: &StoreError) -> ErrorCode {
        match err {
            StoreError::VersionNotFound(_) => ErrorCode::VersionNotFound,
            StoreError::NotPinned(_) => ErrorCode::NotPinned,
            StoreError::CommitFailed(_) => ErrorCode::CommitFailed,
            _ => ErrorCode::Internal,
        }
    }

    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::VersionNotFound,
            2 => ErrorCode::NotPinned,
            3 => ErrorCode::CommitFailed,
            4 => ErrorCode::MalformedRequest,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<K, V> {
    /// Commit a batch through the store's group-commit pipeline.
    PutBatch(Vec<Op<K, V>>),
    /// Point read — against the current version, or against retained
    /// version `at` (as pinned by [`Request::Pin`]).
    Get {
        /// Key to look up.
        key: K,
        /// Retained global commit id to read at; `None` = current.
        at: Option<u64>,
    },
    /// Range read over `[lo, hi]`, at most `limit` entries (0 = all).
    Range {
        /// Inclusive lower bound.
        lo: K,
        /// Inclusive upper bound.
        hi: K,
        /// Entry cap; 0 means unlimited.
        limit: u64,
        /// Retained global commit id to read at; `None` = current.
        at: Option<u64>,
    },
    /// The current consistent version vector.
    Snapshot,
    /// Pin a global commit id against eviction.
    Pin(u64),
    /// Release one pin.
    Unpin(u64),
    /// A metrics scrape of the server process.
    Stats,
}

impl<K: StoreKey, V: StoreValue> Request<K, V> {
    /// The operation label, used for metrics and logs.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::PutBatch(_) => "put_batch",
            Request::Get { .. } => "get",
            Request::Range { .. } => "range",
            Request::Snapshot => "snapshot",
            Request::Pin(_) => "pin",
            Request::Unpin(_) => "unpin",
            Request::Stats => "stats",
        }
    }

    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_FORMAT];
        match self {
            Request::PutBatch(ops) => {
                out.push(REQ_PUT_BATCH);
                bytecode::write_varint(ops.len() as u64, &mut out);
                for op in ops {
                    match op {
                        Op::Put(k, v) => {
                            out.push(OP_PUT);
                            k.write(&mut out);
                            v.write(&mut out);
                        }
                        Op::Delete(k) => {
                            out.push(OP_DELETE);
                            k.write(&mut out);
                        }
                    }
                }
            }
            Request::Get { key, at } => {
                out.push(REQ_GET);
                key.write(&mut out);
                write_opt_u64(&mut out, *at);
            }
            Request::Range { lo, hi, limit, at } => {
                out.push(REQ_RANGE);
                lo.write(&mut out);
                hi.write(&mut out);
                bytecode::write_varint(*limit, &mut out);
                write_opt_u64(&mut out, *at);
            }
            Request::Snapshot => out.push(REQ_SNAPSHOT),
            Request::Pin(v) => {
                out.push(REQ_PIN);
                bytecode::write_varint(*v, &mut out);
            }
            Request::Unpin(v) => {
                out.push(REQ_UNPIN);
                bytecode::write_varint(*v, &mut out);
            }
            Request::Stats => out.push(REQ_STATS),
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// See [`ProtoError`]; hostile counts and truncated fields are
    /// always typed, never panics.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let (opcode, body) = split_header(buf)?;
        let mut pos = 0usize;
        let req = match opcode {
            REQ_PUT_BATCH => {
                let count = read_count(body, &mut pos, "op count")?;
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    let tag = *body.get(pos).ok_or(ProtoError::Malformed("op tag"))?;
                    pos += 1;
                    match tag {
                        OP_PUT => {
                            let k = K::try_read(body, &mut pos)
                                .ok_or(ProtoError::Malformed("put key"))?;
                            let v = V::try_read(body, &mut pos)
                                .ok_or(ProtoError::Malformed("put value"))?;
                            ops.push(Op::Put(k, v));
                        }
                        OP_DELETE => {
                            let k = K::try_read(body, &mut pos)
                                .ok_or(ProtoError::Malformed("delete key"))?;
                            ops.push(Op::Delete(k));
                        }
                        _ => return Err(ProtoError::Malformed("op tag")),
                    }
                }
                Request::PutBatch(ops)
            }
            REQ_GET => {
                let key = K::try_read(body, &mut pos).ok_or(ProtoError::Malformed("get key"))?;
                let at = read_opt_u64(body, &mut pos)?;
                Request::Get { key, at }
            }
            REQ_RANGE => {
                let lo = K::try_read(body, &mut pos).ok_or(ProtoError::Malformed("range lo"))?;
                let hi = K::try_read(body, &mut pos).ok_or(ProtoError::Malformed("range hi"))?;
                let limit = bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("range limit"))?;
                let at = read_opt_u64(body, &mut pos)?;
                Request::Range { lo, hi, limit, at }
            }
            REQ_SNAPSHOT => Request::Snapshot,
            REQ_PIN => Request::Pin(
                bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("pin version"))?,
            ),
            REQ_UNPIN => Request::Unpin(
                bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("unpin version"))?,
            ),
            REQ_STATS => Request::Stats,
            other => return Err(ProtoError::Opcode(other)),
        };
        ensure_consumed(body, pos)?;
        Ok(req)
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response<K, V> {
    /// The batch committed as this global commit id.
    Committed(u64),
    /// Point-read result.
    Value(Option<V>),
    /// Range-read result, in key order.
    Entries(Vec<(K, V)>),
    /// A consistent version vector: the global commit id and the
    /// per-shard local versions it pins.
    Snapshot {
        /// Global commit id.
        global: u64,
        /// Per-shard local versions, in shard order.
        locals: Vec<u64>,
    },
    /// Pin acknowledged for this version.
    Pinned(u64),
    /// Unpin acknowledged for this version.
    Unpinned(u64),
    /// Metrics scrape (Prometheus text exposition).
    Stats(String),
    /// The request failed server-side.
    Error {
        /// Stable error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl<K: StoreKey, V: StoreValue> Response<K, V> {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_FORMAT];
        match self {
            Response::Committed(v) => {
                out.push(RESP_COMMITTED);
                bytecode::write_varint(*v, &mut out);
            }
            Response::Value(v) => {
                out.push(RESP_VALUE);
                match v {
                    Some(v) => {
                        out.push(1);
                        v.write(&mut out);
                    }
                    None => out.push(0),
                }
            }
            Response::Entries(entries) => {
                out.push(RESP_ENTRIES);
                bytecode::write_varint(entries.len() as u64, &mut out);
                for (k, v) in entries {
                    k.write(&mut out);
                    v.write(&mut out);
                }
            }
            Response::Snapshot { global, locals } => {
                out.push(RESP_SNAPSHOT);
                bytecode::write_varint(*global, &mut out);
                bytecode::write_varint(locals.len() as u64, &mut out);
                for l in locals {
                    bytecode::write_varint(*l, &mut out);
                }
            }
            Response::Pinned(v) => {
                out.push(RESP_PINNED);
                bytecode::write_varint(*v, &mut out);
            }
            Response::Unpinned(v) => {
                out.push(RESP_UNPINNED);
                bytecode::write_varint(*v, &mut out);
            }
            Response::Stats(text) => {
                out.push(RESP_STATS);
                text.write(&mut out);
            }
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                out.push(*code as u8);
                message.write(&mut out);
            }
        }
        out
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// See [`ProtoError`].
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let (opcode, body) = split_header(buf)?;
        let mut pos = 0usize;
        let resp = match opcode {
            RESP_COMMITTED => Response::Committed(
                bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("committed version"))?,
            ),
            RESP_VALUE => {
                let flag = *body.get(pos).ok_or(ProtoError::Malformed("value flag"))?;
                pos += 1;
                match flag {
                    0 => Response::Value(None),
                    1 => Response::Value(Some(
                        V::try_read(body, &mut pos).ok_or(ProtoError::Malformed("value"))?,
                    )),
                    _ => return Err(ProtoError::Malformed("value flag")),
                }
            }
            RESP_ENTRIES => {
                let count = read_count(body, &mut pos, "entry count")?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let k =
                        K::try_read(body, &mut pos).ok_or(ProtoError::Malformed("entry key"))?;
                    let v =
                        V::try_read(body, &mut pos).ok_or(ProtoError::Malformed("entry value"))?;
                    entries.push((k, v));
                }
                Response::Entries(entries)
            }
            RESP_SNAPSHOT => {
                let global = bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("snapshot global"))?;
                let count = read_count(body, &mut pos, "shard count")?;
                let mut locals = Vec::with_capacity(count);
                for _ in 0..count {
                    locals.push(
                        bytecode::try_read_varint(body, &mut pos)
                            .ok_or(ProtoError::Malformed("shard version"))?,
                    );
                }
                Response::Snapshot { global, locals }
            }
            RESP_PINNED => Response::Pinned(
                bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("pinned version"))?,
            ),
            RESP_UNPINNED => Response::Unpinned(
                bytecode::try_read_varint(body, &mut pos)
                    .ok_or(ProtoError::Malformed("unpinned version"))?,
            ),
            RESP_STATS => Response::Stats(
                String::try_read(body, &mut pos).ok_or(ProtoError::Malformed("stats text"))?,
            ),
            RESP_ERROR => {
                let code = *body.get(pos).ok_or(ProtoError::Malformed("error code"))?;
                pos += 1;
                let code = ErrorCode::from_u8(code).ok_or(ProtoError::Malformed("error code"))?;
                let message = String::try_read(body, &mut pos)
                    .ok_or(ProtoError::Malformed("error message"))?;
                Response::Error { code, message }
            }
            other => return Err(ProtoError::Opcode(other)),
        };
        ensure_consumed(body, pos)?;
        Ok(resp)
    }
}

fn split_header(buf: &[u8]) -> Result<(u8, &[u8]), ProtoError> {
    match buf {
        [] => Err(ProtoError::Malformed("empty payload")),
        [format, ..] if *format != WIRE_FORMAT => Err(ProtoError::Format(*format)),
        [_] => Err(ProtoError::Malformed("missing opcode")),
        [_, opcode, body @ ..] => Ok((*opcode, body)),
    }
}

/// Reads an element count, validated in the u64 domain against the
/// payload's byte budget before it sizes an allocation.
fn read_count(body: &[u8], pos: &mut usize, what: &'static str) -> Result<usize, ProtoError> {
    let count = bytecode::try_read_varint(body, pos).ok_or(ProtoError::Malformed(what))?;
    if count > body.len() as u64 {
        return Err(ProtoError::Malformed(what));
    }
    Ok(count as usize)
}

fn ensure_consumed(body: &[u8], pos: usize) -> Result<(), ProtoError> {
    if pos == body.len() {
        Ok(())
    } else {
        Err(ProtoError::Malformed("trailing bytes"))
    }
}

fn write_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            bytecode::write_varint(v, out);
        }
        None => out.push(0),
    }
}

fn read_opt_u64(body: &[u8], pos: &mut usize) -> Result<Option<u64>, ProtoError> {
    let flag = *body.get(*pos).ok_or(ProtoError::Malformed("option flag"))?;
    *pos += 1;
    match flag {
        0 => Ok(None),
        1 => Ok(Some(
            bytecode::try_read_varint(body, pos).ok_or(ProtoError::Malformed("option value"))?,
        )),
        _ => Err(ProtoError::Malformed("option flag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request<u64, String>) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response<u64, String>) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip_req(Request::PutBatch(vec![
            Op::Put(1, "one".into()),
            Op::Delete(2),
            Op::Put(u64::MAX, String::new()),
        ]));
        roundtrip_req(Request::Get { key: 7, at: None });
        roundtrip_req(Request::Get { key: 7, at: Some(3) });
        roundtrip_req(Request::Range { lo: 1, hi: 100, limit: 0, at: None });
        roundtrip_req(Request::Range { lo: 0, hi: u64::MAX, limit: 10, at: Some(9) });
        roundtrip_req(Request::Snapshot);
        roundtrip_req(Request::Pin(42));
        roundtrip_req(Request::Unpin(42));
        roundtrip_req(Request::Stats);

        roundtrip_resp(Response::Committed(17));
        roundtrip_resp(Response::Value(None));
        roundtrip_resp(Response::Value(Some("v".into())));
        roundtrip_resp(Response::Entries(vec![(1, "a".into()), (2, "b".into())]));
        roundtrip_resp(Response::Snapshot { global: 5, locals: vec![3, 1, 5] });
        roundtrip_resp(Response::Pinned(5));
        roundtrip_resp(Response::Unpinned(5));
        roundtrip_resp(Response::Stats("pacserve_requests_total 9\n".into()));
        roundtrip_resp(Response::Error {
            code: ErrorCode::VersionNotFound,
            message: "version 3 not retained".into(),
        });
    }

    #[test]
    fn hostile_messages_are_typed_errors() {
        // Wrong format byte (a WAL record aimed at the server).
        assert_eq!(
            Request::<u64, u64>::decode(&[store::wal::LOG_FORMAT, REQ_STATS]),
            Err(ProtoError::Format(store::wal::LOG_FORMAT))
        );
        // Unknown opcodes, both directions.
        assert_eq!(
            Request::<u64, u64>::decode(&[WIRE_FORMAT, 0x7E]),
            Err(ProtoError::Opcode(0x7E))
        );
        assert_eq!(
            Response::<u64, u64>::decode(&[WIRE_FORMAT, 0x02]),
            Err(ProtoError::Opcode(0x02))
        );
        // Hostile op count: claims 2^33 ops in a tiny payload.
        let mut buf = vec![WIRE_FORMAT, REQ_PUT_BATCH];
        bytecode::write_varint(1 << 33, &mut buf);
        assert_eq!(
            Request::<u64, u64>::decode(&buf),
            Err(ProtoError::Malformed("op count"))
        );
        // Truncated mid-field.
        let full = Request::<u64, u64>::PutBatch(vec![Op::Put(300, 400)]).encode();
        for cut in 2..full.len() {
            assert!(Request::<u64, u64>::decode(&full[..cut]).is_err());
        }
        // Trailing garbage after a complete message.
        let mut padded = Request::<u64, u64>::Snapshot.encode();
        padded.push(0xAB);
        assert_eq!(
            Request::<u64, u64>::decode(&padded),
            Err(ProtoError::Malformed("trailing bytes"))
        );
    }
}
