//! The pacserve client: a synchronous request/response handle with
//! per-request timeouts, bounded jittered-backoff retry, and explicit
//! reconnect.
//!
//! Retry policy: only requests whose replay is harmless are retried.
//! Reads (`get`, `range`, `snapshot`, `stats`) retry on connection
//! errors and timeouts. Writes and pin-count mutations (`put_batch`,
//! `pin`, `unpin`) are *not* retried once the request may have reached
//! the server — a replayed batch would commit twice and a replayed pin
//! would leak a count — so those fail fast with the transport error
//! and leave the retry decision to the caller, who knows whether the
//! operation is idempotent at their layer.

use std::io::Write as _;
use std::time::Duration;

use codecs::BlockIo;
use store::{Op, ShardedSnapshot, ShardedStore, StoreKey, StoreValue};

use crate::frame::{self, FrameError};
use crate::proto::{ErrorCode, ProtoError, Request, Response};
use crate::transport::{PipeConnector, Transport};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// How long one request may wait for its response frame.
    pub request_timeout: Duration,
    /// Additional attempts after the first failure (idempotent
    /// requests only).
    pub retries: u32,
    /// Base backoff between attempts; attempt `n` sleeps
    /// `base * 2^n` plus up to 50% jitter.
    pub backoff: Duration,
    /// Seed for the jitter generator, so a replayed test run backs
    /// off identically.
    pub jitter_seed: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            request_timeout: Duration::from_secs(5),
            retries: 3,
            backoff: Duration::from_millis(5),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

/// Why a request failed client-side.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (dial, send, or receive).
    Io(std::io::Error),
    /// The response frame was corrupt or the connection broke
    /// mid-frame.
    Frame(FrameError),
    /// The response frame was intact but the message inside did not
    /// decode.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server {
        /// Stable error category.
        code: ErrorCode,
        /// Server-side detail.
        message: String,
    },
    /// Every attempt failed; `last` is the final attempt's error.
    RetriesExhausted {
        /// Attempts made (first try included).
        attempts: u32,
        /// The last attempt's failure, stringified.
        last: String,
    },
    /// The server answered with a response type the request cannot
    /// produce (protocol confusion; the connection was dropped).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client frame: {e}"),
            ClientError::Proto(e) => write!(f, "client decode: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Where a client dials. Cloneable so one address can mint many
/// clients.
#[derive(Clone)]
pub enum Dialer {
    /// A TCP endpoint.
    Tcp(std::net::SocketAddr),
    /// An in-process pipe listener.
    Pipe(PipeConnector),
}

impl Dialer {
    fn dial(&self, timeout: Duration) -> std::io::Result<Transport> {
        match self {
            Dialer::Tcp(addr) => {
                let sock = std::net::TcpStream::connect_timeout(addr, timeout)?;
                sock.set_nodelay(true)?;
                Ok(Transport::Tcp(sock))
            }
            Dialer::Pipe(connector) => Ok(Transport::Pipe(connector.connect()?)),
        }
    }
}

/// A synchronous pacserve connection. One in-flight request at a
/// time; `&mut self` throughout. Reconnects lazily after any
/// transport failure.
pub struct Client<K, V> {
    dialer: Dialer,
    conn: Option<Transport>,
    opts: ClientOptions,
    jitter: u64,
    _types: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: StoreKey, V: StoreValue> Client<K, V> {
    /// A client dialing `addr` over TCP. Connects lazily on first
    /// request.
    pub fn connect_tcp(addr: std::net::SocketAddr, opts: ClientOptions) -> Client<K, V> {
        Client::new(Dialer::Tcp(addr), opts)
    }

    /// A client dialing an in-process [`crate::serve_pipe`] server.
    pub fn connect_pipe(connector: PipeConnector, opts: ClientOptions) -> Client<K, V> {
        Client::new(Dialer::Pipe(connector), opts)
    }

    /// A client over any [`Dialer`].
    pub fn new(dialer: Dialer, opts: ClientOptions) -> Client<K, V> {
        let jitter = opts.jitter_seed | 1;
        Client { dialer, conn: None, opts, jitter, _types: std::marker::PhantomData }
    }

    /// Drops the current connection; the next request re-dials. Used
    /// by tests to exercise mid-sequence reconnects, and by callers
    /// that know the peer restarted.
    pub fn reconnect(&mut self) {
        self.conn = None;
    }

    /// Commits a batch; returns the global commit id. Not retried
    /// once the request may have reached the server (see the module
    /// docs).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::CommitFailed`] when
    /// the group failed; transport errors otherwise.
    pub fn put_batch(&mut self, ops: Vec<Op<K, V>>) -> Result<u64, ClientError> {
        match self.call(&Request::PutBatch(ops), false)? {
            Response::Committed(v) => Ok(v),
            _ => Err(self.confused("put_batch")),
        }
    }

    /// Point read against the current version.
    ///
    /// # Errors
    ///
    /// Transport errors after retries; server-side typed errors.
    pub fn get(&mut self, key: K) -> Result<Option<V>, ClientError> {
        self.get_at(key, None)
    }

    /// Point read at retained version `at` (`None` = current).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::VersionNotFound`] when `at` is not retained.
    pub fn get_at(&mut self, key: K, at: Option<u64>) -> Result<Option<V>, ClientError> {
        match self.call(&Request::Get { key, at }, true)? {
            Response::Value(v) => Ok(v),
            _ => Err(self.confused("get")),
        }
    }

    /// Range read over `[lo, hi]`, at most `limit` entries (0 = all),
    /// at retained version `at` (`None` = current).
    ///
    /// # Errors
    ///
    /// See [`Client::get_at`].
    pub fn range(
        &mut self,
        lo: K,
        hi: K,
        limit: u64,
        at: Option<u64>,
    ) -> Result<Vec<(K, V)>, ClientError> {
        match self.call(&Request::Range { lo, hi, limit, at }, true)? {
            Response::Entries(entries) => Ok(entries),
            _ => Err(self.confused("range")),
        }
    }

    /// The server's current consistent version vector:
    /// `(global, per-shard locals)`.
    ///
    /// # Errors
    ///
    /// Transport errors after retries.
    pub fn snapshot(&mut self) -> Result<(u64, Vec<u64>), ClientError> {
        match self.call(&Request::Snapshot, true)? {
            Response::Snapshot { global, locals } => Ok((global, locals)),
            _ => Err(self.confused("snapshot")),
        }
    }

    /// Pins global commit `version` on the server. Not retried (a
    /// replayed pin would leak a pin count).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::VersionNotFound`] when the version was already
    /// evicted.
    pub fn pin(&mut self, version: u64) -> Result<(), ClientError> {
        match self.call(&Request::Pin(version), false)? {
            Response::Pinned(_) => Ok(()),
            _ => Err(self.confused("pin")),
        }
    }

    /// Releases one pin on `version`. Not retried.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NotPinned`] when no pin is held.
    pub fn unpin(&mut self, version: u64) -> Result<(), ClientError> {
        match self.call(&Request::Unpin(version), false)? {
            Response::Unpinned(_) => Ok(()),
            _ => Err(self.confused("unpin")),
        }
    }

    /// A metrics scrape of the server process (Prometheus text).
    ///
    /// # Errors
    ///
    /// Transport errors after retries.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats, true)? {
            Response::Stats(text) => Ok(text),
            _ => Err(self.confused("stats")),
        }
    }

    /// One request/response exchange, with bounded retry for
    /// idempotent requests.
    fn call(
        &mut self,
        req: &Request<K, V>,
        idempotent: bool,
    ) -> Result<Response<K, V>, ClientError> {
        let payload = req.encode();
        let attempts = self.opts.retries + 1;
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            // Dial failures never reached the server, so even
            // non-idempotent requests may redial freely.
            let conn = match self.ensure_conn() {
                Ok(conn) => conn,
                Err(e) => {
                    if attempt + 1 == attempts {
                        return Err(ClientError::Io(e));
                    }
                    last = e.to_string();
                    continue;
                }
            };
            if let Err(e) = frame::write_frame(conn, &payload).and_then(|_| conn.flush()) {
                // The request may have partially reached the server;
                // from here on only idempotent requests retry.
                self.conn = None;
                if !idempotent {
                    return Err(ClientError::Io(e));
                }
                last = e.to_string();
                continue;
            }
            match frame::read_frame(self.conn.as_mut().expect("just used")) {
                Ok(bytes) => {
                    let resp = Response::decode(&bytes)?;
                    if let Response::Error { code, message } = resp {
                        // A typed server error is deterministic;
                        // retrying would re-fail.
                        return Err(ClientError::Server { code, message });
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.conn = None;
                    if !idempotent {
                        return Err(ClientError::Frame(e));
                    }
                    last = e.to_string();
                }
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    fn ensure_conn(&mut self) -> std::io::Result<&mut Transport> {
        if self.conn.is_none() {
            let mut conn = self.dialer.dial(self.opts.request_timeout)?;
            conn.set_read_timeout(Some(self.opts.request_timeout))?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just set"))
    }

    /// Exponential backoff with multiplicative xorshift jitter:
    /// `base * 2^(attempt-1)` scaled by a factor in `[1.0, 1.5)`.
    fn backoff(&mut self, attempt: u32) {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let base = self.opts.backoff.as_nanos() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(10));
        let jittered = exp + (self.jitter % (exp / 2 + 1));
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    fn confused(&mut self, what: &'static str) -> ClientError {
        // A mismatched response type means request/response framing
        // slipped; the connection cannot be trusted for the next call.
        self.conn = None;
        ClientError::Unexpected(what)
    }
}

/// Convenience for tests and benches: a locally-held snapshot read
/// from a server-side store handle. (Network clients use
/// [`Client::snapshot`] + `get_at`; in-process embedders can borrow
/// the store directly.)
pub fn local_snapshot<K, V, C>(store: &ShardedStore<K, V, C>) -> ShardedSnapshot<K, V, C>
where
    K: StoreKey,
    V: StoreValue,
    C: BlockIo<(K, V)>,
{
    store.snapshot()
}
