//! pacserve: a framed network serving layer for the sharded pacstore.
//!
//! The store crate ends at a library boundary — every caller so far
//! links the store into its own process. This crate puts a wire in
//! front of it: a length-prefixed, CRC-framed request/response
//! protocol served over TCP (or an in-process duplex pipe for tests
//! and sandboxed CI), a connection-per-thread server that funnels
//! writers into the store's MVCC group commit, and a client with
//! per-request timeouts and bounded jittered retry.
//!
//! # Layers
//!
//! - [`frame`]: the WAL's `varint len ++ payload ++ crc32` framing
//!   ([`store::wal::frame`]) read incrementally off a byte stream,
//!   with every length bounds-checked *before* allocation and every
//!   CRC verified *before* parse. Corrupt frames are typed
//!   [`FrameError`]s, never panics.
//! - [`proto`]: the messages inside frames — [`Request`] and
//!   [`Response`] over any `StoreKey`/`StoreValue` pair, encoded with
//!   the same fallible [`codecs::ByteEncode`] discipline as the WAL.
//! - [`transport`]: [`Transport`] abstracts a real [`std::net::TcpStream`]
//!   and the in-process [`PipeEnd`]; both carry the identical byte
//!   stream, so CI exercises the full wire path without a socket.
//! - [`server`]: [`serve_tcp`] / [`serve_pipe`] accept loops,
//!   connection threads, graceful drain, and `pacserve_*` metrics in
//!   the [`obs::global`] registry.
//! - [`client`]: the synchronous [`Client`], which retries idempotent
//!   reads with jittered backoff and fails writes fast once they may
//!   have reached the server.
//!
//! # Quick tour
//!
//! ```
//! use server::{serve_pipe, Client, ClientOptions, ServerOptions};
//! use store::{Op, Router, ShardedStore, StoreOptions};
//!
//! let store = ShardedStore::<u64, u64>::in_memory_with(
//!     Router::uniform_span(4, 1 << 32),
//!     StoreOptions::default(),
//! )
//! .unwrap();
//! let (mut handle, connector) = serve_pipe(store, ServerOptions::default());
//!
//! let mut client = Client::<u64, u64>::connect_pipe(connector, ClientOptions::default());
//! let v1 = client.put_batch(vec![Op::Put(7, 700)]).unwrap();
//! assert_eq!(client.get(7).unwrap(), Some(700));
//!
//! // Pin the commit, overwrite, and read the old value back at the pin.
//! client.pin(v1).unwrap();
//! client.put_batch(vec![Op::Put(7, 701)]).unwrap();
//! assert_eq!(client.get_at(7, Some(v1)).unwrap(), Some(700));
//! client.unpin(v1).unwrap();
//!
//! handle.shutdown();
//! ```

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod transport;

pub use client::{Client, ClientError, ClientOptions, Dialer};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME};
pub use proto::{ErrorCode, ProtoError, Request, Response, WIRE_FORMAT};
pub use server::{serve_pipe, serve_tcp, ServerHandle, ServerOptions};
pub use transport::{pipe_channel, PipeConnector, PipeEnd, PipeListener, Transport};
