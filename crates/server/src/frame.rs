//! Streaming wire frames: the WAL's `varint len ++ payload ++ crc32`
//! layout ([`store::wal::frame`]) read incrementally off a byte
//! stream.
//!
//! The on-disk log and the wire share one framing discipline on
//! purpose: both face the same hostile-input problem (a torn tail on
//! disk, a misbehaving peer on the wire), and both answer it the same
//! way — every length is bounds-checked before anything is allocated
//! or sliced, and the CRC is verified before the payload is parsed.
//! A corrupt frame is a typed [`FrameError`], never a panic and never
//! a silent truncation.
//!
//! What the CRC does *not* buy: integrity of intent. A frame that
//! checks out is exactly what the peer sent, but the peer may be
//! hostile, so [`crate::proto`] decoding still goes through the
//! fallible [`codecs::ByteEncode::try_read`] path.

use std::io::{Read, Write};

use store::checksum::crc32;

/// Largest payload a peer may send, well above any real request
/// (a full commit group is split client-side long before this).
/// A length past it is rejected *before* allocation — a hostile
/// 16 EiB length must not become a 16 EiB `Vec`.
pub const MAX_FRAME: u64 = 16 << 20;

/// How one frame failed to arrive.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF *inside* a frame —
    /// the peer died mid-send).
    Io(std::io::Error),
    /// Clean EOF on a frame boundary: the peer closed the connection.
    Closed,
    /// No byte arrived within the stream's read timeout while waiting
    /// *between* frames (a timeout mid-frame is [`FrameError::Io`]:
    /// the peer stalled mid-send, which is indistinguishable from a
    /// dead peer).
    TimedOut,
    /// The length prefix exceeds [`MAX_FRAME`] (or does not fit in
    /// 64 bits at all).
    TooLarge(u64),
    /// The payload arrived but its checksum does not match.
    BadCrc {
        /// Checksum read from the frame trailer.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TimedOut => write!(f, "timed out waiting for a frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::BadCrc { stored, computed } => write!(
                f,
                "frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length, payload, CRC) and flushes; returns the
/// bytes put on the wire.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<u64> {
    let bytes = store::wal::frame(payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len() as u64)
}

/// Reads one frame off `r`, verifying length and CRC; returns the
/// payload.
///
/// # Errors
///
/// See [`FrameError`]. After [`FrameError::Closed`] or
/// [`FrameError::TimedOut`] the stream is still positioned on a frame
/// boundary and may be read again; after any other error the stream
/// state is unknown and the connection should be dropped.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    // Varint length prefix, one byte at a time (same overflow rules as
    // `codecs::bytecode::try_read_varint`: at most ten groups, and the
    // tenth may only contribute one bit).
    let mut len = 0u64;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if first => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length",
                )))
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if first
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(FrameError::TimedOut)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
        let b = byte[0];
        if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(FrameError::TooLarge(u64::MAX));
        }
        len |= u64::from(b & 0x7f) << shift;
        first = false;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_uninterrupted(r, &mut payload)?;
    let mut trailer = [0u8; 4];
    read_exact_uninterrupted(r, &mut trailer)?;
    let stored = u32::from_le_bytes(trailer);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(FrameError::BadCrc { stored, computed });
    }
    Ok(payload)
}

/// `read_exact` that keeps going across `Interrupted` and across a
/// bounded number of poll-timeout wakeups — once a frame has started
/// arriving, a between-bytes timeout usually means "peer is slow", not
/// "no request yet". A peer stalled past the stall budget is
/// indistinguishable from a dead one and becomes an I/O error.
fn read_exact_uninterrupted<R: Read>(r: &mut R, mut buf: &mut [u8]) -> Result<(), FrameError> {
    // With the server's default 25 ms poll timeout this tolerates
    // ~10 s of mid-frame stall before giving up on the peer.
    const MAX_STALLS: u32 = 400;
    let mut stalls = 0u32;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside a frame",
                )))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) && stalls < MAX_STALLS =>
            {
                stalls += 1;
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAAu8; 1000]).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xAAu8; 1000]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn corrupt_frames_are_typed_errors_not_panics() {
        // Flipped payload bit: CRC mismatch.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire[3] ^= 0x01;
        assert!(matches!(read_frame(&mut &wire[..]), Err(FrameError::BadCrc { .. })));

        // Hostile length: 1 << 33, rejected before allocation.
        let mut wire = Vec::new();
        codecs::bytecode::write_varint(1 << 33, &mut wire);
        wire.extend_from_slice(&[0u8; 32]);
        assert!(matches!(read_frame(&mut &wire[..]), Err(FrameError::TooLarge(_))));

        // Length varint that overflows 64 bits entirely.
        let wire = [0xFFu8; 16];
        assert!(matches!(read_frame(&mut &wire[..]), Err(FrameError::TooLarge(_))));

        // Truncated mid-payload: the peer died mid-send.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"truncated-later").unwrap();
        wire.truncate(wire.len() - 6);
        assert!(matches!(read_frame(&mut &wire[..]), Err(FrameError::Io(_))));
    }
}
