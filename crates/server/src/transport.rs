//! Connection transports: real TCP sockets and an in-process duplex
//! pipe that speaks the exact same framed byte stream.
//!
//! The pipe exists so tests and CI can exercise the full wire path —
//! framing, CRC verification, hostile-input handling, reconnects —
//! without binding a socket (sandboxed runners may not allow it). It
//! is not a shortcut around the protocol: bytes written into one end
//! come out the other end as an opaque stream, so everything above
//! [`std::io::Read`]/[`std::io::Write`] behaves identically on both
//! transports.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One direction of a pipe: a byte queue with a closed flag.
struct Half {
    state: Mutex<HalfState>,
    cv: Condvar,
}

struct HalfState {
    data: VecDeque<u8>,
    closed: bool,
}

impl Half {
    fn new() -> Arc<Half> {
        Arc::new(Half {
            state: Mutex::new(HalfState { data: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.cv.notify_all();
    }
}

/// One end of an in-process duplex byte pipe. Dropping an end closes
/// both directions: the peer's reads return EOF once drained, and its
/// writes fail with `BrokenPipe`.
pub struct PipeEnd {
    rx: Arc<Half>,
    tx: Arc<Half>,
    read_timeout: Option<Duration>,
}

impl std::fmt::Debug for PipeEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeEnd")
            .field("read_timeout", &self.read_timeout)
            .finish_non_exhaustive()
    }
}

impl PipeEnd {
    /// A connected pair of ends.
    pub fn pair() -> (PipeEnd, PipeEnd) {
        let a = Half::new();
        let b = Half::new();
        (
            PipeEnd { rx: Arc::clone(&a), tx: Arc::clone(&b), read_timeout: None },
            PipeEnd { rx: b, tx: a, read_timeout: None },
        )
    }

    /// Blocks reads for at most `timeout` (`None` = forever), matching
    /// [`TcpStream::set_read_timeout`] semantics: a timed-out read
    /// fails with [`std::io::ErrorKind::WouldBlock`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let mut state = self.rx.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.data.is_empty() {
                let n = buf.len().min(state.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.data.pop_front().expect("n <= len");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = match deadline {
                None => self.rx.cv.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            "pipe read timed out",
                        ));
                    }
                    let (state, _) = self
                        .rx
                        .cv
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state
                }
            };
        }
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self.tx.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe peer closed",
            ));
        }
        state.data.extend(buf);
        self.tx.cv.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

struct ListenerShared {
    state: Mutex<ListenerState>,
    cv: Condvar,
}

struct ListenerState {
    pending: VecDeque<PipeEnd>,
    closed: bool,
}

/// Server side of an in-process "address": accepts [`PipeEnd`]s that
/// [`PipeConnector::connect`] dialed.
pub struct PipeListener {
    shared: Arc<ListenerShared>,
}

/// Client side of an in-process "address". Cloneable; hand one to
/// every in-process client.
#[derive(Clone)]
pub struct PipeConnector {
    shared: Arc<ListenerShared>,
}

/// A connected in-process listener/connector pair.
pub fn pipe_channel() -> (PipeListener, PipeConnector) {
    let shared = Arc::new(ListenerShared {
        state: Mutex::new(ListenerState { pending: VecDeque::new(), closed: false }),
        cv: Condvar::new(),
    });
    (PipeListener { shared: Arc::clone(&shared) }, PipeConnector { shared })
}

impl PipeListener {
    /// Waits up to `timeout` for an incoming connection; `Ok(None)` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::ConnectionAborted`] once the listener is
    /// closed.
    pub fn accept(&self, timeout: Duration) -> std::io::Result<Option<PipeEnd>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(end) = state.pending.pop_front() {
                return Ok(Some(end));
            }
            if state.closed {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "pipe listener closed",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (next, _) = self
                .shared
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }
}

impl Drop for PipeListener {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.shared.cv.notify_all();
    }
}

impl PipeConnector {
    /// Dials the listener: returns the client end of a fresh pipe.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::ConnectionRefused`] once the listener is
    /// gone.
    pub fn connect(&self) -> std::io::Result<PipeEnd> {
        let (client, server) = PipeEnd::pair();
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "pipe listener closed",
            ));
        }
        state.pending.push_back(server);
        self.shared.cv.notify_all();
        Ok(client)
    }
}

/// A connected byte stream: TCP or in-process pipe. Everything above
/// this enum ([`crate::frame`], [`crate::Client`], the server
/// connection loop) is transport-agnostic.
pub enum Transport {
    /// A real socket.
    Tcp(TcpStream),
    /// An in-process duplex pipe.
    Pipe(PipeEnd),
}

impl Transport {
    /// Bounds blocking reads, with [`TcpStream::set_read_timeout`]
    /// semantics on both variants.
    ///
    /// # Errors
    ///
    /// Any socket-level error (the pipe variant is infallible).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.set_read_timeout(timeout),
            Transport::Pipe(p) => {
                p.set_read_timeout(timeout);
                Ok(())
            }
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Pipe(p) => p.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Pipe(p) => p.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Pipe(p) => p.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_and_signals_eof() {
        let (mut a, mut b) = PipeEnd::pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        drop(a);
        // Peer closed: reads drain then EOF, writes break.
        assert_eq!(b.read(&mut buf).unwrap(), 0);
        assert_eq!(
            b.write(b"x").unwrap_err().kind(),
            std::io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn pipe_read_timeout_is_would_block() {
        let (_a, mut b) = PipeEnd::pair();
        b.set_read_timeout(Some(Duration::from_millis(10)));
        let mut buf = [0u8; 1];
        assert_eq!(
            b.read(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::WouldBlock
        );
    }

    #[test]
    fn listener_hands_out_connected_pairs() {
        let (listener, connector) = pipe_channel();
        let mut client = connector.connect().unwrap();
        let mut server = listener.accept(Duration::from_secs(1)).unwrap().unwrap();
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        // No pending dial: accept times out cleanly.
        assert!(listener.accept(Duration::from_millis(5)).unwrap().is_none());
        drop(listener);
        assert_eq!(
            connector.connect().unwrap_err().kind(),
            std::io::ErrorKind::ConnectionRefused
        );
    }
}
