//! Regression gates over the global `cpam::stats` counters.
//!
//! * Cursor access layer: point lookups on a byte-coded map of 1M keys
//!   must perform **zero** full-block decodes — the `block_decodes`
//!   counter stays flat while `cursor_ops` advances.
//! * Ownership-aware updates: a sequential insert loop over a
//!   uniquely-owned map must rebuild ≥ 90% of its path nodes **in
//!   place** (`nodes_reused`), while the same loop against a spine
//!   pinned by snapshots must reuse **nothing** (`nodes_copied` only) —
//!   the safety half of the refcount-1 rule, not just the speed half.
//!
//! The counters are process-wide, so the tests in this binary serialize
//! on one mutex; each reads its deltas inside the critical section.
//! Runs under the CI `PARLAY_NUM_THREADS` matrix like every cpam test.

use std::sync::{Mutex, MutexGuard};

use cpam::{stats, DiffMap, DiffSet, PacMap};

static COUNTERS: Mutex<()> = Mutex::new(());

fn counters_lock() -> MutexGuard<'static, ()> {
    // A panicking sibling test must not wedge the others.
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn point_lookups_on_byte_coded_map_never_fully_decode() {
    let _serialize = counters_lock();
    const N: u64 = 1_000_000;
    parlay::run(|| {
        let pairs: Vec<(u64, u64)> = (0..N).map(|i| (i * 3, i)).collect();
        let map: DiffMap<u64, u64> = DiffMap::from_sorted_pairs(128, &pairs);
        let keys: Vec<u64> = (0..N).collect();
        let set: DiffSet<u64> = DiffSet::from_sorted_keys(128, &keys);

        let before = stats::read();
        let mut hits = 0u64;
        for probe in 0..20_000u64 {
            // Mix of hits (multiples of 3) and misses.
            if map.find(&probe).is_some() {
                hits += 1;
            }
            if map.contains_key(&(probe * 151 % (3 * N))) {
                hits += 1;
            }
            if set.contains(&probe) {
                hits += 1;
            }
        }
        let d = stats::read().delta(before);
        assert!(hits > 0, "workload degenerated: no hits at all");
        assert_eq!(
            d.block_decodes, 0,
            "point lookups fully decoded {} blocks",
            d.block_decodes
        );
        // Not every lookup reaches a leaf (some resolve at a regular
        // pivot), but the bulk must be cursor searches.
        assert!(
            d.cursor_ops >= 20_000,
            "expected >= 20000 cursor ops, saw {}",
            d.cursor_ops
        );
        // Lookups build nothing and encode nothing either.
        assert_eq!(d.node_allocs, 0, "point lookups allocated nodes");
        assert_eq!(d.block_encodes, 0, "point lookups encoded blocks");
    });
}

#[test]
fn sequential_unique_owner_inserts_reuse_the_spine() {
    let _serialize = counters_lock();
    parlay::run(|| {
        // The map is uniquely owned throughout, so every node on each
        // insert's root-to-leaf path is eligible for in-place reuse;
        // only rebalancing rotations and leaf splits may copy.
        let mut m: PacMap<u64, u64> =
            PacMap::from_pairs((0..50_000u64).map(|i| (i * 2, i)).collect());
        let before = stats::read();
        let mut k = 1u64;
        for i in 0..2_000u64 {
            m = m.insert_owned(k, i);
            // Deterministic LCG: a spread of hits and fresh keys.
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                % 1_000_000;
        }
        let d = stats::read().delta(before);
        assert!(
            d.nodes_reused + d.nodes_copied > 0,
            "insert loop never hit a reuse-eligible rebuild"
        );
        assert!(
            d.reuse_ratio() >= 0.9,
            "unique-owner insert loop reused only {:.1}% of eligible rebuilds \
             (reused {}, copied {})",
            100.0 * d.reuse_ratio(),
            d.nodes_reused,
            d.nodes_copied
        );
        assert!(m.check_invariants().is_ok());
    });
}

#[test]
fn pinned_snapshot_spines_are_never_reused() {
    let _serialize = counters_lock();
    parlay::run(|| {
        let base: PacMap<u64, u64> =
            PacMap::from_pairs((0..50_000u64).map(|i| (i * 2, i)).collect());
        let reference = base.to_vec();

        let mut m = base.clone();
        let mut pins = Vec::new();
        let before = stats::read();
        for i in 0..500u64 {
            // Pin every version, then overwrite an existing key: each
            // insert sees a fully shared path and must path-copy it —
            // zero in-place reuse. (Overwrites keep the shape fixed, so
            // no rebalancing happens and every single rebuild on the
            // path is a shared-node rebuild.)
            pins.push((m.clone(), i));
            let k = (i * 97 % 50_000) * 2;
            m = m.insert_owned(k, 1_000_000 + i);
        }
        let d = stats::read().delta(before);
        assert_eq!(
            d.nodes_reused, 0,
            "an update mutated a node reachable from a pinned snapshot"
        );
        assert!(
            d.nodes_copied > 0,
            "pinned-spine inserts should tally as copies"
        );

        // The safety half, verified on the data too: the original still
        // holds exactly its old contents, and every pinned version
        // reads the value that was current when it was pinned — not the
        // overwrite that came after.
        assert_eq!(base.to_vec(), reference);
        for (pin, i) in &pins {
            let k = (i * 97 % 50_000) * 2;
            let at_pin_time = (0..*i)
                .rev()
                .find(|j| (j * 97 % 50_000) * 2 == k)
                .map_or(k / 2, |j| 1_000_000 + j);
            assert_eq!(pin.find(&k), Some(at_pin_time), "pin {i} saw a later write");
            assert_eq!(pin.len(), reference.len(), "pin {i} changed size");
        }
        assert_eq!(m.len(), reference.len());
    });
}
