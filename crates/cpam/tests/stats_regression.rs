//! Regression gate for the cursor access layer: point lookups on a
//! byte-coded map of 1M keys must perform **zero** full-block decodes —
//! the `block_decodes` counter stays flat while `cursor_ops` advances.
//! Runs under the CI `PARLAY_NUM_THREADS` matrix like every cpam test.
//!
//! One `#[test]` only: the counters are process-wide, so a sibling test
//! running concurrently would pollute the deltas.

use cpam::{stats, DiffMap, DiffSet};

#[test]
fn point_lookups_on_byte_coded_map_never_fully_decode() {
    const N: u64 = 1_000_000;
    parlay::run(|| {
        let pairs: Vec<(u64, u64)> = (0..N).map(|i| (i * 3, i)).collect();
        let map: DiffMap<u64, u64> = DiffMap::from_sorted_pairs(128, &pairs);
        let keys: Vec<u64> = (0..N).collect();
        let set: DiffSet<u64> = DiffSet::from_sorted_keys(128, &keys);

        let before = stats::read();
        let mut hits = 0u64;
        for probe in 0..20_000u64 {
            // Mix of hits (multiples of 3) and misses.
            if map.find(&probe).is_some() {
                hits += 1;
            }
            if map.contains_key(&(probe * 151 % (3 * N))) {
                hits += 1;
            }
            if set.contains(&probe) {
                hits += 1;
            }
        }
        let d = stats::delta(before, stats::read());
        assert!(hits > 0, "workload degenerated: no hits at all");
        assert_eq!(
            d.block_decodes, 0,
            "point lookups fully decoded {} blocks",
            d.block_decodes
        );
        // Not every lookup reaches a leaf (some resolve at a regular
        // pivot), but the bulk must be cursor searches.
        assert!(
            d.cursor_ops >= 20_000,
            "expected >= 20000 cursor ops, saw {}",
            d.cursor_ops
        );
        // Lookups build nothing and encode nothing either.
        assert_eq!(d.node_allocs, 0, "point lookups allocated nodes");
        assert_eq!(d.block_encodes, 0, "point lookups encoded blocks");
    });
}
