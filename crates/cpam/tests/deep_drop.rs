//! Regression gate for the deep-drop hazard: dropping a tree must not
//! recurse once per node. A plain derived drop runs `Arc` → `Node` →
//! children recursively, which is a stack overflow waiting to happen on
//! huge trees (millions of nodes at `B = 1`, where every entry is its
//! own leaf) — especially on worker threads with small stacks. `Node`'s
//! `Drop` unlinks big subtrees iteratively/in parallel instead; these
//! tests build million-entry trees at `B = 1` and drop them on threads
//! with deliberately small stacks.

use cpam::{PacMap, PacSet};

const N: u64 = 1_000_000;
/// Small enough that per-node drop recursion would blow it, large
/// enough for the O(log n) build/drop recursion plus test harness.
const SMALL_STACK: usize = 512 * 1024;

fn on_small_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .name("small-stack-drop".into())
        .stack_size(SMALL_STACK)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("deep drop overflowed the stack or panicked");
}

#[test]
fn dropping_a_million_entry_b1_map_does_not_overflow() {
    // ~1M leaf nodes + ~1M regular nodes at B = 1.
    let pairs: Vec<(u64, u64)> = (0..N).map(|i| (i, i)).collect();
    let map = PacMap::<u64, u64>::from_sorted_pairs(1, &pairs);
    assert_eq!(map.len(), N as usize);
    on_small_stack(move || drop(map));
}

#[test]
fn dropping_a_million_entry_b1_set_after_owned_updates_does_not_overflow() {
    // Same hazard through the consuming update path: the final tree is a
    // mix of original and in-place-rebuilt nodes.
    let keys: Vec<u64> = (0..N).map(|i| 2 * i).collect();
    let mut set = PacSet::<u64>::from_sorted_keys(1, &keys);
    for k in 0..1000u64 {
        set = set.insert_owned(2 * k + 1);
    }
    assert_eq!(set.len(), N as usize + 1000);
    on_small_stack(move || drop(set));
}

#[test]
fn dropping_a_shared_spine_is_shallow_and_keeps_the_pin_intact() {
    // Dropping one handle of a shared tree must only decrement: the
    // other handle still reads everything afterwards.
    let pairs: Vec<(u64, u64)> = (0..N).map(|i| (i, i * 3)).collect();
    let map = PacMap::<u64, u64>::from_sorted_pairs(1, &pairs);
    let pin = map.clone();
    on_small_stack(move || drop(map));
    assert_eq!(pin.len(), N as usize);
    assert_eq!(pin.find(&123_456), Some(370_368));
}
