//! Proves — with a counting global allocator, not a benchmark — that
//! `find`/`contains_key` on a byte-coded map perform **zero** heap
//! allocations on the flat-node path.
//!
//! This file must contain exactly one `#[test]`: the allocation counter
//! is per-process, so a concurrently running sibling test would make
//! the zero-delta assertion racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn find_on_byte_coded_map_allocates_nothing() {
    use cpam::DiffMap;

    let pairs: Vec<(u64, u64)> = (0..200_000u64).map(|i| (i * 3, i)).collect();
    let map: DiffMap<u64, u64> = DiffMap::from_sorted_pairs(128, &pairs);

    // Warm up any lazily initialized state (thread locals, counters).
    let mut sum = 0u64;
    for probe in 0..100u64 {
        sum = sum.wrapping_add(map.find(&probe).unwrap_or(0));
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for probe in 0..50_000u64 {
        sum = sum.wrapping_add(map.find(&probe).unwrap_or(0));
        if map.contains_key(&(probe * 7 % 600_000)) {
            sum = sum.wrapping_add(1);
        }
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(sum > 0, "workload degenerated");
    assert_eq!(delta, 0, "find/contains_key allocated {delta} times");
}
