//! Differential tests for the adaptive fork-granularity policy
//! (`cpam::grain`): every bulk operation must produce bit-identical
//! results at problem sizes just below, at, and just above each fork
//! cutoff, whatever the pool size. The CI thread matrix runs this same
//! binary under `PARLAY_NUM_THREADS ∈ {1, 2, 4, 8}`, which is what turns
//! "same result at every cutoff" into "same result at every thread
//! count" — at 1 thread the policy degrades to pure-sequential code, so
//! any divergence between the sequential and forked paths shows up as a
//! cross-leg difference in CI.
//!
//! Replayable like the other differential suites: failures panic with
//! the reproducing seed; `PROPTEST_SEED=<n>` replays one sequence.

use std::collections::{BTreeMap, BTreeSet};

use cpam::{PacMap, PacSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The static cutoff floors of `cpam::grain`: `max(4b, 1024)` for the
/// set operations and `4096` for builds/walks. Testing one element
/// below, at, and above each boundary pins the sequential/forked
/// hand-off exactly where the code switches.
const BOUNDARIES: [usize; 6] = [1023, 1024, 1025, 4095, 4096, 4097];

fn cases() -> u64 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

/// One randomized scenario: sets of `n` and `n/2` keys around one
/// boundary size, every bulk op checked against the `BTreeSet` oracle.
fn run_set_one(seed: u64, b: usize, n: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = (4 * n as u64).max(16);
    let keys_a: BTreeSet<u64> = (0..n).map(|_| rng.gen_range(0..span)).collect();
    let keys_b: BTreeSet<u64> = (0..n / 2).map(|_| rng.gen_range(0..span)).collect();

    let sa = PacSet::<u64>::from_keys_with(b, keys_a.iter().copied().collect());
    let sb = PacSet::<u64>::from_keys_with(b, keys_b.iter().copied().collect());
    sa.check_invariants().map_err(|e| format!("invariants a: {e}"))?;

    let check = |name: &str, got: PacSet<u64>, want: BTreeSet<u64>| -> Result<(), String> {
        got.check_invariants()
            .map_err(|e| format!("{name} invariants: {e}"))?;
        let got_v = got.to_vec();
        let want_v: Vec<u64> = want.into_iter().collect();
        if got_v != want_v {
            return Err(format!(
                "{name} diverges: got {} entries, want {}",
                got_v.len(),
                want_v.len()
            ));
        }
        Ok(())
    };

    check("union", sa.union(&sb), keys_a.union(&keys_b).copied().collect())?;
    check(
        "intersect",
        sa.intersect(&sb),
        keys_a.intersection(&keys_b).copied().collect(),
    )?;
    check(
        "difference",
        sa.difference(&sb),
        keys_a.difference(&keys_b).copied().collect(),
    )?;
    check(
        "union_naive",
        sa.union_naive(&sb),
        keys_a.union(&keys_b).copied().collect(),
    )?;

    let batch: Vec<u64> = (0..n / 2).map(|_| rng.gen_range(0..span)).collect();
    let mut want_ins = keys_a.clone();
    want_ins.extend(batch.iter().copied());
    check("multi_insert", sa.multi_insert(batch.clone()), want_ins)?;

    let mut want_del = keys_a.clone();
    for k in &batch {
        want_del.remove(k);
    }
    check("multi_delete", sa.multi_delete(batch), want_del)?;

    check(
        "filter",
        sa.filter(|k| k % 3 != 0),
        keys_a.iter().copied().filter(|k| k % 3 != 0).collect(),
    )?;
    Ok(())
}

/// Map flavour: union_with / multi_insert_with have a combiner whose
/// application order must not depend on where the forks land.
fn run_map_one(seed: u64, b: usize, n: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = (4 * n as u64).max(16);
    let pairs_a: BTreeMap<u64, u64> = (0..n)
        .map(|_| (rng.gen_range(0..span), rng.gen_range(0..1000)))
        .collect();
    let pairs_b: BTreeMap<u64, u64> = (0..n / 2)
        .map(|_| (rng.gen_range(0..span), rng.gen_range(0..1000)))
        .collect();

    let ma: PacMap<u64, u64> =
        PacMap::from_sorted_pairs(b, &pairs_a.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>());
    let mb: PacMap<u64, u64> =
        PacMap::from_sorted_pairs(b, &pairs_b.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>());

    let union = ma.union_with(&mb, |x, y| x.wrapping_add(*y));
    union
        .check_invariants()
        .map_err(|e| format!("union_with invariants: {e}"))?;
    let mut want = pairs_a.clone();
    for (&k, &v) in &pairs_b {
        want.entry(k).and_modify(|x| *x = x.wrapping_add(v)).or_insert(v);
    }
    let want_v: Vec<(u64, u64)> = want.iter().map(|(&k, &v)| (k, v)).collect();
    if union.to_vec() != want_v {
        return Err("union_with diverges from oracle".into());
    }

    let mapped = ma.map_values(|_, v| v * 2 + 1);
    let want_mapped: Vec<(u64, u64)> = pairs_a.iter().map(|(&k, &v)| (k, v * 2 + 1)).collect();
    if mapped.to_vec() != want_mapped {
        return Err("map_values diverges from oracle".into());
    }

    let total: u64 = ma.map_reduce(|_, v| *v, |a, c| a.wrapping_add(c), 0u64);
    let want_total: u64 = pairs_a.values().fold(0u64, |acc, v| acc.wrapping_add(*v));
    if total != want_total {
        return Err(format!("map_reduce {total} != {want_total}"));
    }
    Ok(())
}

#[test]
fn bulk_ops_identical_at_grain_boundaries() {
    let threads = parlay::num_threads();
    for b in [8usize, 32] {
        for &n in &BOUNDARIES {
            let seeds: Vec<u64> = match env_seed() {
                Some(s) => vec![s],
                None => (0..cases()).map(|i| 0xC0FFEE + i * 7919).collect(),
            };
            for seed in seeds {
                if let Err(e) = run_set_one(seed, b, n) {
                    panic!(
                        "set ops diverge (b={b}, n={n}, threads={threads}): {e}\n\
                         replay with PROPTEST_SEED={seed}"
                    );
                }
                if let Err(e) = run_map_one(seed, b, n) {
                    panic!(
                        "map ops diverge (b={b}, n={n}, threads={threads}): {e}\n\
                         replay with PROPTEST_SEED={seed}"
                    );
                }
            }
        }
    }
}

/// The κ base case (`8b` combined entries) is the third regime change;
/// exercise sizes that straddle it for a large block size, where the
/// base case covers the whole tree and no fork can ever fire.
#[test]
fn bulk_ops_identical_at_kappa_boundary() {
    let threads = parlay::num_threads();
    for b in [32usize, 128] {
        for n in [8 * b - 1, 8 * b, 8 * b + 1] {
            let seed = env_seed().unwrap_or(0xBADCAB);
            if let Err(e) = run_set_one(seed, b, n) {
                panic!(
                    "set ops diverge at kappa (b={b}, n={n}, threads={threads}): {e}\n\
                     replay with PROPTEST_SEED={seed}"
                );
            }
        }
    }
}
