//! Edge cases around block-size boundaries, codec variety, and deep
//! operation sequences — the places where Definition 4.1 bookkeeping
//! (fold / unfold / redistribute) actually triggers.

use codecs::GammaCodec;
use cpam::{NoAug, PacMap, PacSeq, PacSet};

/// Sizes that straddle every fold/redistribute boundary for a given b.
fn boundary_sizes(b: usize) -> Vec<usize> {
    vec![
        1,
        b.saturating_sub(1).max(1),
        b,
        b + 1,
        2 * b - 1,
        2 * b,
        2 * b + 1,
        4 * b - 1,
        4 * b,
        4 * b + 1,
        8 * b + 3,
    ]
}

#[test]
fn build_at_every_block_boundary() {
    for b in [1usize, 2, 7, 16, 128] {
        for n in boundary_sizes(b) {
            let keys: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
            let s = PacSet::<u64>::from_sorted_keys(b, &keys);
            s.check_invariants()
                .unwrap_or_else(|e| panic!("b={b} n={n}: {e}"));
            assert_eq!(s.to_vec(), keys, "b={b} n={n}");
        }
    }
}

#[test]
fn insert_across_block_split_boundary() {
    // Growing a collection one element at a time forces every leaf
    // split/fold transition.
    for b in [2usize, 8] {
        let mut s = PacSet::<u64>::with_block_size(b);
        for i in 0..(8 * b as u64 + 5) {
            s = s.insert(i * 3);
            s.check_invariants()
                .unwrap_or_else(|e| panic!("b={b} i={i}: {e}"));
        }
        assert_eq!(s.len(), 8 * b + 5);
    }
}

#[test]
fn remove_down_to_empty() {
    for b in [2usize, 32] {
        let keys: Vec<u64> = (0..(6 * b as u64)).collect();
        let mut s = PacSet::<u64>::from_sorted_keys(b, &keys);
        for k in &keys {
            s = s.remove(k);
            s.check_invariants()
                .unwrap_or_else(|e| panic!("b={b} k={k}: {e}"));
        }
        assert!(s.is_empty());
    }
}

#[test]
fn union_at_boundary_sizes() {
    let b = 16usize;
    for n1 in boundary_sizes(b) {
        for n2 in [1usize, b, 4 * b] {
            let a = PacSet::<u64>::from_sorted_keys(
                b,
                &(0..n1 as u64).map(|i| i * 2).collect::<Vec<_>>(),
            );
            let c = PacSet::<u64>::from_sorted_keys(
                b,
                &(0..n2 as u64).map(|i| i * 3 + 1).collect::<Vec<_>>(),
            );
            let u = a.union(&c);
            u.check_invariants()
                .unwrap_or_else(|e| panic!("n1={n1} n2={n2}: {e}"));
            let mut expected: Vec<u64> = (0..n1 as u64)
                .map(|i| i * 2)
                .chain((0..n2 as u64).map(|i| i * 3 + 1))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(u.to_vec(), expected, "n1={n1} n2={n2}");
        }
    }
}

#[test]
fn gamma_codec_set_roundtrip() {
    let keys: Vec<u64> = (0..5000).map(|i| 100_000 + i * 2).collect();
    let s = PacSet::<u64, NoAug, GammaCodec>::from_sorted_keys(64, &keys);
    s.check_invariants().expect("gamma invariants");
    assert_eq!(s.to_vec(), keys);
    // Gamma beats bytes on unit gaps.
    let dense: Vec<u64> = (0..50_000).collect();
    let g = PacSet::<u64, NoAug, GammaCodec>::from_sorted_keys(128, &dense);
    let d = cpam::DiffSet::<u64>::from_sorted_keys(128, &dense);
    assert!(g.space_stats().total_bytes < d.space_stats().total_bytes);
}

#[test]
fn key_delta_codec_map_roundtrip() {
    // The graph vertex-tree codec: diff keys, opaque values.
    use codecs::KeyDeltaCodec;
    let pairs: Vec<(u64, String)> = (0..2000).map(|i| (i * 4, format!("v{i}"))).collect();
    let m = PacMap::<u64, String, NoAug, KeyDeltaCodec>::from_sorted_pairs(64, &pairs);
    m.check_invariants().expect("invariants");
    assert_eq!(m.find(&4000), Some("v1000".to_string()));
    assert_eq!(m.to_vec(), pairs);
    let m2 = m.insert(5, "new".into()).remove(&0);
    m2.check_invariants().expect("invariants");
    assert_eq!(m2.len(), 2000);
}

#[test]
fn deep_split_join_roundtrips() {
    let b = 8usize;
    let keys: Vec<u64> = (0..10_000).map(|i| i * 2 + 1).collect();
    let s = PacSet::<u64>::from_sorted_keys(b, &keys);
    // Split at many positions (members, non-members, extremes) and
    // verify both halves stay valid and rejoinable.
    for split_key in [0u64, 1, 2, 999, 10_001, 19_999, 50_000] {
        let (lo, hit, hi) = s.split(&split_key);
        lo.check_invariants().unwrap_or_else(|e| panic!("lo {split_key}: {e}"));
        hi.check_invariants().unwrap_or_else(|e| panic!("hi {split_key}: {e}"));
        assert_eq!(hit, split_key % 2 == 1 && split_key < 20_000);
        let total = lo.len() + hi.len() + usize::from(hit);
        assert_eq!(total, s.len(), "split {split_key}");
    }
}

#[test]
fn take_drop_boundary_positions() {
    let b = 4usize;
    let values: Vec<u64> = (0..1000).map(|i| i * 7 % 101).collect();
    let s = PacSeq::<u64>::from_slice_with(b, &values);
    for i in [0usize, 1, b - 1, b, 2 * b, 2 * b + 1, 500, 999, 1000] {
        let front = s.take(i);
        let back = s.drop_first(i);
        front.check_invariants().unwrap_or_else(|e| panic!("take {i}: {e}"));
        back.check_invariants().unwrap_or_else(|e| panic!("drop {i}: {e}"));
        assert_eq!(front.len() + back.len(), 1000);
        assert_eq!(front.append(&back).to_vec(), values, "i = {i}");
    }
}

#[test]
fn repeated_filter_keeps_invariants() {
    let mut s = PacSet::<u64>::from_sorted_keys(16, &(0..20_000).collect::<Vec<_>>());
    for p in [2u64, 3, 5, 7] {
        s = s.filter(|k| k % p != 0 || *k == 0);
        s.check_invariants().unwrap_or_else(|e| panic!("p={p}: {e}"));
    }
    // Survivors are coprime to 210 (plus 0).
    assert!(s.to_vec().iter().skip(1).all(|k| k % 2 != 0 && k % 3 != 0 && k % 5 != 0 && k % 7 != 0));
}

#[test]
fn stats_counters_move() {
    let before = cpam::stats::read();
    let s = PacSet::<u64>::from_keys((0..10_000).collect());
    let _u = s.union(&PacSet::from_keys((5_000..15_000).collect()));
    let after = cpam::stats::read();
    let d = after.delta(before);
    assert!(d.node_allocs > 0);
    assert!(d.block_encodes > 0);
    assert!(d.block_decodes > 0);
}

#[test]
fn multi_insert_with_combines_batch_duplicates() {
    // Group-by semantics: duplicates inside one batch combine with f.
    let m = PacMap::<u64, u64>::new();
    let batch: Vec<(u64, u64)> = vec![(1, 1), (2, 1), (1, 1), (1, 1), (2, 1)];
    let counts = m.multi_insert_with(batch, |a, b| a + b);
    assert_eq!(counts.find(&1), Some(3));
    assert_eq!(counts.find(&2), Some(2));
}
