//! Differential suite for the cursor-based flat-node paths: every
//! point / range / iteration / setops result must be identical to the
//! decode-everything oracle (a `BTreeMap`/`BTreeSet` plus full
//! `to_vec` materializations), across all four codecs and the paper's
//! block-size sweep B ∈ {1, 2, 8, 32, 128}.
//!
//! Like the existing differential suites: every failure panics with the
//! exact reproducing seed, and setting `PROPTEST_SEED=<n>` replays just
//! that sequence on every codec × block size.

use std::collections::{BTreeMap, BTreeSet};

use codecs::{Codec, DeltaCodec, GammaCodec, KeyDeltaCodec, RawCodec};
use cpam::{Augmentation, NoAug, PacMap, PacSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY_SPAN: u64 = 512;

fn cases() -> u64 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

/// One randomized map scenario over one codec and block size.
fn run_map_one<C>(seed: u64, b: usize) -> Result<(), String>
where
    C: Codec<(u64, u64)>,
    NoAug: Augmentation<(u64, u64)>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(0..400usize);
    let pairs: Vec<(u64, u64)> = (0..n)
        .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
        .collect();
    // Last pair per key wins in both representations.
    let m: PacMap<u64, u64, NoAug, C> = PacMap::from_pairs_with(b, pairs.clone());
    let oracle: BTreeMap<u64, u64> = pairs.iter().copied().collect();

    m.check_invariants().map_err(|e| format!("invariants: {e}"))?;

    // Full iteration (streaming cursor) vs the oracle.
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    let got: Vec<(u64, u64)> = m.iter().collect();
    if got != want {
        return Err(format!("iter diverges\n  cursor: {got:?}\n  oracle: {want:?}"));
    }
    if m.to_vec() != want {
        return Err("to_vec diverges from iter".into());
    }

    // Point queries over the whole key span (hits and misses).
    for k in 0..KEY_SPAN + 8 {
        if m.find(&k) != oracle.get(&k).copied() {
            return Err(format!("find({k}) diverges"));
        }
        if m.contains_key(&k) != oracle.contains_key(&k) {
            return Err(format!("contains_key({k}) diverges"));
        }
        let rank = oracle.range(..k).count();
        if m.rank(&k) != rank {
            return Err(format!("rank({k}) = {} want {rank}", m.rank(&k)));
        }
        let succ = oracle.range(k..).next().map(|(&a, &v)| (a, v));
        if m.succ(&k) != succ {
            return Err(format!("succ({k}) diverges"));
        }
        let pred = oracle.range(..=k).next_back().map(|(&a, &v)| (a, v));
        if m.pred(&k) != pred {
            return Err(format!("pred({k}) diverges"));
        }
    }

    // Positional selection at every index.
    for i in 0..want.len() + 1 {
        if m.select(i) != want.get(i).copied() {
            return Err(format!("select({i}) diverges"));
        }
    }

    // Range extraction on random windows.
    for _ in 0..8 {
        let a = rng.gen_range(0..KEY_SPAN);
        let z = rng.gen_range(0..KEY_SPAN);
        let (lo, hi) = (a.min(z), a.max(z));
        let want: Vec<(u64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        if m.range_entries(&lo, &hi) != want {
            return Err(format!("range_entries [{lo}, {hi}] diverges"));
        }
        let sub = m.range(&lo, &hi);
        if sub.to_vec() != want {
            return Err(format!("range [{lo}, {hi}] diverges"));
        }
        sub.check_invariants()
            .map_err(|e| format!("range submap invariants: {e}"))?;
    }

    // Single-entry updates: insert (hit and miss) and remove (hit and
    // miss — the miss exercises the share-the-node fast path).
    for _ in 0..6 {
        let k = rng.gen_range(0..KEY_SPAN + 32);
        let v = rng.gen_range(0..1_000);
        let mut oracle2 = oracle.clone();
        oracle2.insert(k, v);
        let m2 = m.insert(k, v);
        let want2: Vec<(u64, u64)> = oracle2.iter().map(|(&a, &b2)| (a, b2)).collect();
        if m2.to_vec() != want2 {
            return Err(format!("insert({k}) diverges"));
        }
        m2.check_invariants()
            .map_err(|e| format!("insert({k}) invariants: {e}"))?;

        let mut oracle3 = oracle.clone();
        oracle3.remove(&k);
        let m3 = m.remove(&k);
        let want3: Vec<(u64, u64)> = oracle3.iter().map(|(&a, &b3)| (a, b3)).collect();
        if m3.to_vec() != want3 {
            return Err(format!("remove({k}) diverges"));
        }
        m3.check_invariants()
            .map_err(|e| format!("remove({k}) invariants: {e}"))?;
    }

    // Set algebra against a second random map (scratch-based base cases).
    let n2 = rng.gen_range(0..400usize);
    let pairs2: Vec<(u64, u64)> = (0..n2)
        .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
        .collect();
    let m2: PacMap<u64, u64, NoAug, C> = PacMap::from_pairs_with(b, pairs2.clone());
    let oracle2: BTreeMap<u64, u64> = pairs2.iter().copied().collect();

    let union = m.union_with(&m2, |a, c| a + c);
    let mut want_union = oracle2.clone();
    for (&k, &v) in &oracle {
        *want_union.entry(k).or_insert(0) = oracle2.get(&k).map_or(v, |w| v + w);
    }
    if union.to_vec() != want_union.into_iter().collect::<Vec<_>>() {
        return Err("union_with diverges".into());
    }
    union
        .check_invariants()
        .map_err(|e| format!("union invariants: {e}"))?;

    let inter = m.intersect_with(&m2, |a, c| a.min(c).to_owned());
    let want_inter: Vec<(u64, u64)> = oracle
        .iter()
        .filter_map(|(&k, &v)| oracle2.get(&k).map(|&w| (k, v.min(w))))
        .collect();
    if inter.to_vec() != want_inter {
        return Err("intersect_with diverges".into());
    }

    let diff = m.difference(&m2);
    let want_diff: Vec<(u64, u64)> = oracle
        .iter()
        .filter(|(k, _)| !oracle2.contains_key(k))
        .map(|(&k, &v)| (k, v))
        .collect();
    if diff.to_vec() != want_diff {
        return Err("difference diverges".into());
    }

    // Batch updates (scratch-based base cases).
    let batch: Vec<(u64, u64)> = (0..rng.gen_range(0..64usize))
        .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
        .collect();
    let mut oracle4 = oracle.clone();
    for &(k, v) in &batch {
        oracle4.insert(k, v);
    }
    // Duplicate batch keys: last wins in both (multi_insert dedups last-wins).
    let m4 = m.multi_insert(batch);
    if m4.to_vec() != oracle4.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>() {
        return Err("multi_insert diverges".into());
    }

    let dels: Vec<u64> = (0..rng.gen_range(0..48usize))
        .map(|_| rng.gen_range(0..KEY_SPAN + 32))
        .collect();
    let mut oracle5 = oracle.clone();
    for k in &dels {
        oracle5.remove(k);
    }
    let m5 = m.multi_delete(dels);
    if m5.to_vec() != oracle5.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>() {
        return Err("multi_delete diverges".into());
    }

    Ok(())
}

/// One randomized set scenario (exercises `GammaCodec`, which only
/// supports scalar keys).
fn run_set_one<C>(seed: u64, b: usize) -> Result<(), String>
where
    C: Codec<u64>,
    NoAug: Augmentation<u64>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(0..400usize);
    let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..KEY_SPAN)).collect();
    let s: PacSet<u64, NoAug, C> = PacSet::from_keys_with(b, keys.clone());
    let oracle: BTreeSet<u64> = keys.iter().copied().collect();

    s.check_invariants().map_err(|e| format!("invariants: {e}"))?;
    let want: Vec<u64> = oracle.iter().copied().collect();
    if s.iter().collect::<Vec<_>>() != want {
        return Err("set iter diverges".into());
    }
    for k in 0..KEY_SPAN + 8 {
        if s.contains(&k) != oracle.contains(&k) {
            return Err(format!("contains({k}) diverges"));
        }
        if s.rank(&k) != oracle.range(..k).count() {
            return Err(format!("rank({k}) diverges"));
        }
        if s.succ(&k) != oracle.range(k..).next().copied() {
            return Err(format!("succ({k}) diverges"));
        }
        if s.pred(&k) != oracle.range(..=k).next_back().copied() {
            return Err(format!("pred({k}) diverges"));
        }
    }
    for i in 0..want.len() + 1 {
        if s.select(i) != want.get(i).copied() {
            return Err(format!("select({i}) diverges"));
        }
    }
    for _ in 0..8 {
        let a = rng.gen_range(0..KEY_SPAN);
        let z = rng.gen_range(0..KEY_SPAN);
        let (lo, hi) = (a.min(z), a.max(z));
        let want: Vec<u64> = oracle.range(lo..=hi).copied().collect();
        if s.range_keys(&lo, &hi) != want {
            return Err(format!("range_keys [{lo}, {hi}] diverges"));
        }
        if s.count_range(&lo, &hi) != want.len() {
            return Err(format!("count_range [{lo}, {hi}] diverges"));
        }
    }
    let keys2: Vec<u64> = (0..rng.gen_range(0..400usize))
        .map(|_| rng.gen_range(0..KEY_SPAN))
        .collect();
    let s2: PacSet<u64, NoAug, C> = PacSet::from_keys_with(b, keys2.clone());
    let oracle2: BTreeSet<u64> = keys2.iter().copied().collect();
    if s.union(&s2).to_vec() != oracle.union(&oracle2).copied().collect::<Vec<_>>() {
        return Err("set union diverges".into());
    }
    if s.intersect(&s2).to_vec() != oracle.intersection(&oracle2).copied().collect::<Vec<_>>() {
        return Err("set intersect diverges".into());
    }
    if s.difference(&s2).to_vec() != oracle.difference(&oracle2).copied().collect::<Vec<_>>() {
        return Err("set difference diverges".into());
    }
    Ok(())
}

const BLOCK_SIZES: [usize; 5] = [1, 2, 8, 32, 128];

fn drive(label: &str, run: impl Fn(u64, usize) -> Result<(), String> + Sync) {
    parlay::run(|| {
        if let Some(seed) = env_seed() {
            for &b in &BLOCK_SIZES {
                if let Err(e) = run(seed, b) {
                    panic!("{label}: replay PROPTEST_SEED={seed} B={b}: {e}");
                }
            }
            return;
        }
        for case in 0..cases() {
            let seed = case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FF_EE00;
            for &b in &BLOCK_SIZES {
                if let Err(e) = run(seed, b) {
                    panic!(
                        "{label}: case {case} failed at B={b}: {e}\n\
                         replay with PROPTEST_SEED={seed}"
                    );
                }
            }
        }
    });
}

#[test]
fn map_raw_codec_matches_oracle() {
    drive("raw map", run_map_one::<RawCodec>);
}

#[test]
fn map_delta_codec_matches_oracle() {
    drive("delta map", run_map_one::<DeltaCodec>);
}

#[test]
fn map_key_delta_codec_matches_oracle() {
    drive("key-delta map", run_map_one::<KeyDeltaCodec>);
}

#[test]
fn set_gamma_codec_matches_oracle() {
    drive("gamma set", run_set_one::<GammaCodec>);
}

#[test]
fn set_delta_codec_matches_oracle() {
    drive("delta set", run_set_one::<DeltaCodec>);
}
