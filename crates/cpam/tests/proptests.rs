//! Property-based tests: PaC-tree collections against std oracles, with
//! full invariant checks after every operation sequence, across block
//! sizes (including the degenerate B = 1 P-tree-like configuration).

use std::collections::{BTreeMap, BTreeSet};

use cpam::{PacMap, PacSeq, PacSet, SumAug};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SetOp {
    Insert(u16),
    Remove(u16),
    MultiInsert(Vec<u16>),
    MultiDelete(Vec<u16>),
    Filter(u16),
}

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        any::<u16>().prop_map(SetOp::Insert),
        any::<u16>().prop_map(SetOp::Remove),
        prop::collection::vec(any::<u16>(), 0..50).prop_map(SetOp::MultiInsert),
        prop::collection::vec(any::<u16>(), 0..50).prop_map(SetOp::MultiDelete),
        (1u16..20).prop_map(SetOp::Filter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn set_operation_sequences_match_btreeset(
        b in prop::sample::select(vec![1usize, 2, 5, 16, 64]),
        init in prop::collection::vec(any::<u16>(), 0..300),
        ops in prop::collection::vec(set_op(), 0..12),
    ) {
        let mut s = PacSet::<u16>::from_keys_with(b, init.clone());
        let mut oracle: BTreeSet<u16> = init.into_iter().collect();
        s.check_invariants().map_err(TestCaseError::fail)?;
        for op in ops {
            match op {
                SetOp::Insert(k) => {
                    s = s.insert(k);
                    oracle.insert(k);
                }
                SetOp::Remove(k) => {
                    s = s.remove(&k);
                    oracle.remove(&k);
                }
                SetOp::MultiInsert(ks) => {
                    s = s.multi_insert(ks.clone());
                    oracle.extend(ks);
                }
                SetOp::MultiDelete(ks) => {
                    s = s.multi_delete(ks.clone());
                    for k in ks {
                        oracle.remove(&k);
                    }
                }
                SetOp::Filter(m) => {
                    s = s.filter(|k| k % m == 0);
                    oracle.retain(|k| k % m == 0);
                }
            }
            s.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(s.len(), oracle.len());
        }
        prop_assert_eq!(s.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn set_algebra_matches_btreeset(
        b in prop::sample::select(vec![2usize, 16, 128]),
        xs in prop::collection::vec(any::<u16>(), 0..400),
        ys in prop::collection::vec(any::<u16>(), 0..400),
    ) {
        let sx = PacSet::<u16>::from_keys_with(b, xs.clone());
        let sy = PacSet::<u16>::from_keys_with(b, ys.clone());
        let ox: BTreeSet<u16> = xs.into_iter().collect();
        let oy: BTreeSet<u16> = ys.into_iter().collect();

        let u = sx.union(&sy);
        u.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(u.to_vec(), ox.union(&oy).copied().collect::<Vec<_>>());

        let i = sx.intersect(&sy);
        i.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(i.to_vec(), ox.intersection(&oy).copied().collect::<Vec<_>>());

        let d = sx.difference(&sy);
        d.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(d.to_vec(), ox.difference(&oy).copied().collect::<Vec<_>>());

        // The naive (expose-only) union must agree with the optimized one.
        prop_assert_eq!(sx.union_naive(&sy).to_vec(), u.to_vec());
    }

    #[test]
    fn map_queries_match_btreemap(
        b in prop::sample::select(vec![1usize, 8, 64]),
        pairs in prop::collection::vec(any::<(u16, u32)>(), 0..300),
        probes in prop::collection::vec(any::<u16>(), 0..40),
    ) {
        let m = PacMap::<u16, u32>::from_pairs_with(b, pairs.clone());
        let mut oracle = BTreeMap::new();
        for (k, v) in pairs {
            oracle.insert(k, v);
        }
        m.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(m.len(), oracle.len());
        for k in probes {
            prop_assert_eq!(m.find(&k), oracle.get(&k).copied());
            prop_assert_eq!(m.rank(&k), oracle.range(..k).count());
            prop_assert_eq!(
                m.succ(&k).map(|e| e.0),
                oracle.range(k..).next().map(|(k2, _)| *k2)
            );
            prop_assert_eq!(
                m.pred(&k).map(|e| e.0),
                oracle.range(..=k).next_back().map(|(k2, _)| *k2)
            );
        }
    }

    #[test]
    fn range_queries_match_oracle(
        b in prop::sample::select(vec![2usize, 32]),
        keys in prop::collection::vec(any::<u16>(), 0..300),
        lo in any::<u16>(),
        width in 0u16..500,
    ) {
        let hi = lo.saturating_add(width);
        let s = PacSet::<u16>::from_keys_with(b, keys.clone());
        let oracle: BTreeSet<u16> = keys.into_iter().collect();
        let expected: Vec<u16> = oracle.range(lo..=hi).copied().collect();
        let r = s.range(&lo, &hi);
        r.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(r.to_vec(), expected.clone());
        prop_assert_eq!(s.count_range(&lo, &hi), expected.len());
    }

    #[test]
    fn aug_range_matches_manual_sum(
        pairs in prop::collection::vec((any::<u16>(), 0u64..1000), 0..250),
        lo in any::<u16>(),
        width in 0u16..400,
    ) {
        let hi = lo.saturating_add(width);
        let m = PacMap::<u16, u64, SumAug>::from_pairs_with(4, pairs.clone());
        m.check_invariants().map_err(TestCaseError::fail)?;
        let mut oracle = BTreeMap::new();
        for (k, v) in pairs {
            oracle.insert(k, v);
        }
        let expected: u64 = oracle.range(lo..=hi).map(|(_, v)| *v).sum();
        prop_assert_eq!(m.aug_range(&lo, &hi), expected);
    }

    #[test]
    fn sequence_ops_match_vec(
        b in prop::sample::select(vec![1usize, 4, 32]),
        values in prop::collection::vec(any::<u32>(), 0..400),
        i in 0usize..500,
        j in 0usize..500,
    ) {
        let s = PacSeq::<u32>::from_slice_with(b, &values);
        s.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(s.to_vec(), values.clone());
        prop_assert_eq!(s.nth(i), values.get(i).copied());

        let take = s.take(i.min(values.len()));
        prop_assert_eq!(take.to_vec(), values[..i.min(values.len())].to_vec());

        let (lo, hi) = (i.min(j).min(values.len()), i.max(j).min(values.len()));
        let sub = s.subseq(lo, hi);
        sub.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(sub.to_vec(), values[lo..hi].to_vec());

        let mut rev = values.clone();
        rev.reverse();
        prop_assert_eq!(s.reverse().to_vec(), rev);
    }

    #[test]
    fn append_matches_concat(
        b in prop::sample::select(vec![2usize, 16]),
        xs in prop::collection::vec(any::<u32>(), 0..300),
        ys in prop::collection::vec(any::<u32>(), 0..300),
    ) {
        let sx = PacSeq::<u32>::from_slice_with(b, &xs);
        let sy = PacSeq::<u32>::from_slice_with(b, &ys);
        let z = sx.append(&sy);
        z.check_invariants().map_err(TestCaseError::fail)?;
        let expected: Vec<u32> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(z.to_vec(), expected);
    }

    #[test]
    fn delta_and_raw_sets_agree(
        keys in prop::collection::vec(any::<u32>(), 0..500),
        others in prop::collection::vec(any::<u32>(), 0..500),
    ) {
        let raw = PacSet::<u32>::from_keys_with(16, keys.clone());
        let packed = cpam::DiffSet::<u32>::from_keys_with(16, keys);
        packed.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(raw.to_vec(), packed.to_vec());

        let raw2 = raw.multi_insert(others.clone());
        let packed2 = packed.multi_insert(others);
        packed2.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(raw2.to_vec(), packed2.to_vec());
    }
}
