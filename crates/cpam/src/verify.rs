//! Structural invariant checking (Definition 4.1), used by tests.

use codecs::Codec;

use crate::aug::Augmentation;
use crate::entry::{Element, Entry};
use crate::join::balanced;
use crate::node::{decode_flat, size, weight, Node, Tree};

/// Checks every PaC-tree invariant on `t` and returns a description of
/// the first violation, if any:
///
/// * weight balance (BB[α], α = 0.29) at every regular node;
/// * blocked leaves: every flat block holds at most `2b` entries, and at
///   least `b` when the whole tree has `b` or more entries; complex trees
///   contain no regular leaf chains (every regular node is larger than
///   `2b` or the whole tree is a simplex);
/// * cached sizes are consistent.
pub(crate) fn check_structure<E, A, C>(b: usize, t: &Tree<E, A, C>) -> Result<(), String>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let total = size(t);
    check_rec(b, t, total)
}

fn check_rec<E, A, C>(b: usize, t: &Tree<E, A, C>, total: usize) -> Result<(), String>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return Ok(()) };
    match &**node {
        leaf @ (Node::Flat { .. } | Node::Lazy { .. }) => {
            let len = {
                let block = leaf.leaf_block();
                C::len(&block)
            };
            if let Node::Lazy { len: cached, .. } = leaf {
                if *cached != len {
                    return Err(format!("lazy node caches len {cached}, block holds {len}"));
                }
            }
            if len == 0 {
                return Err("empty flat node".into());
            }
            if len > 2 * b {
                return Err(format!("flat node of {len} entries exceeds 2b = {}", 2 * b));
            }
            if total >= b && len < b && total != len {
                return Err(format!(
                    "flat node of {len} entries below b = {b} in a tree of {total}"
                ));
            }
            Ok(())
        }
        Node::Regular {
            left,
            right,
            size: sz,
            ..
        } => {
            let computed = size(left) + size(right) + 1;
            if *sz != computed {
                return Err(format!("cached size {sz} != computed {computed}"));
            }
            if !balanced(weight(left), weight(right)) {
                return Err(format!(
                    "weight imbalance: left {} vs right {}",
                    weight(left),
                    weight(right)
                ));
            }
            if *sz <= 2 * b {
                return Err(format!(
                    "regular node of size {sz} should have been folded (b = {b})"
                ));
            }
            check_rec(b, left, total)?;
            check_rec(b, right, total)
        }
    }
}

/// [`check_structure`] plus strict key ordering and augmented-value
/// consistency for ordered trees.
pub(crate) fn check_ordered<E, A, C>(b: usize, t: &Tree<E, A, C>) -> Result<(), String>
where
    E: Entry,
    E::Key: std::fmt::Debug,
    A: Augmentation<E>,
    C: Codec<E>,
    A::Value: PartialEq + std::fmt::Debug,
{
    check_structure(b, t)?;
    check_order_rec::<E, A, C>(t, None, None)?;
    check_aug_rec::<E, A, C>(t)?;
    Ok(())
}

fn check_order_rec<E, A, C>(
    t: &Tree<E, A, C>,
    lo: Option<&E::Key>,
    hi: Option<&E::Key>,
) -> Result<(), String>
where
    E: Entry,
    E::Key: std::fmt::Debug,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return Ok(()) };
    let in_bounds = |k: &E::Key| -> Result<(), String> {
        if let Some(lo) = lo {
            if k <= lo {
                return Err(format!("key {k:?} not above lower bound {lo:?}"));
            }
        }
        if let Some(hi) = hi {
            if k >= hi {
                return Err(format!("key {k:?} not below upper bound {hi:?}"));
            }
        }
        Ok(())
    };
    match &**node {
        Node::Flat { .. } | Node::Lazy { .. } => {
            let entries = decode_flat(node);
            for w in entries.windows(2) {
                if w[0].key() >= w[1].key() {
                    return Err(format!(
                        "block keys out of order: {:?} !< {:?}",
                        w[0].key(),
                        w[1].key()
                    ));
                }
            }
            for e in &entries {
                in_bounds(e.key())?;
            }
            Ok(())
        }
        Node::Regular {
            left, entry, right, ..
        } => {
            in_bounds(entry.key())?;
            check_order_rec::<E, A, C>(left, lo, Some(entry.key()))?;
            check_order_rec::<E, A, C>(right, Some(entry.key()), hi)
        }
    }
}

fn check_aug_rec<E, A, C>(t: &Tree<E, A, C>) -> Result<(), String>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    A::Value: PartialEq + std::fmt::Debug,
{
    let Some(node) = t else { return Ok(()) };
    match &**node {
        leaf @ (Node::Flat { .. } | Node::Lazy { .. }) => {
            let entries = decode_flat(node);
            let expected = A::from_entries(&entries);
            let aug = leaf.aug();
            if *aug != expected {
                return Err(format!("flat aug {aug:?} != recomputed {expected:?}"));
            }
            Ok(())
        }
        Node::Regular {
            left,
            entry,
            right,
            aug,
            ..
        } => {
            let expected = A::combine(
                &A::combine(&crate::node::aug_of(left), &A::from_entry(entry)),
                &crate::node::aug_of(right),
            );
            if *aug != expected {
                return Err(format!("regular aug {aug:?} != recomputed {expected:?}"));
            }
            check_aug_rec::<E, A, C>(left)?;
            check_aug_rec::<E, A, C>(right)
        }
    }
}
