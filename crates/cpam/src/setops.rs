//! Join-based set algorithms: union, intersection, difference, and batch
//! updates (Figs. 8 and 10 of the paper).
//!
//! Each algorithm comes in two flavours: the *optimized* version with the
//! Section 8 base case (inputs of combined size below κ = 8B are
//! flattened into arrays, merged, and rebuilt — 4–7x faster in the paper)
//! and a *naive* expose-only version kept for the Section 8 ablation.

use std::sync::Arc;

use codecs::Codec;

use crate::aug::Augmentation;
use crate::base::{from_sorted, push_all, rebuild_leaf, to_vec};
use crate::entry::Entry;
use crate::grain::par_grain;
use crate::join::{expose_owned, join, join2, split};
use crate::node::{size, Tree};
use crate::scratch::with_scratch;

/// κ = `KAPPA_BLOCKS * b`: the base-case granularity (paper uses 8B).
pub(crate) const KAPPA_BLOCKS: usize = 8;

/// Re-folds a small tree whose root is an (invariant-violating) regular
/// node back into a flat leaf. [`expose`] unfolds flat nodes into their
/// expanded all-regular form, and union's empty-side shortcut can
/// return such a subtree verbatim; every other constructor folds via
/// `node()`. Trees larger than `2b` are already valid and pass through.
fn refold<E, A, C>(b: usize, t: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    match &t {
        Some(node) if !node.is_flat() && node.size() <= 2 * b => from_sorted(b, &to_vec(&t)),
        _ => t,
    }
}

/// Picks the better reuse husk out of two consumed operands: a uniquely
/// owned root wins (its allocation can be overwritten), the other is
/// dropped.
fn pick_husk<E, A, C>(a: Tree<E, A, C>, b: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    match (a, b) {
        (Some(x), y) if Arc::strong_count(&x) == 1 => {
            drop(y);
            Some(x)
        }
        (x, y) => y.or(x),
    }
}

/// Flattens both trees into scratch buffers (sized once from the root
/// sizes), merges them with `merge` into a third, and rebuilds — the
/// Section 8 array base case, allocation-free in steady state. Both
/// operands are consumed; whichever root is uniquely owned donates its
/// allocation to the rebuilt result.
fn merge_base_case<E, A, C>(
    b: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    merge: impl FnOnce(&[E], &[E], &mut Vec<E>),
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    with_scratch(size(&t1), |xs: &mut Vec<E>| {
        push_all(&t1, xs);
        with_scratch(size(&t2), |ys: &mut Vec<E>| {
            push_all(&t2, ys);
            with_scratch(xs.len() + ys.len(), |out: &mut Vec<E>| {
                merge(xs, ys, out);
                rebuild_leaf(b, pick_husk(t1, t2), out)
            })
        })
    })
}

fn merge_union<E: Entry>(xs: &[E], ys: &[E], f: &impl Fn(&E, &E) -> E, out: &mut Vec<E>) {
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].key().cmp(ys[j].key()) {
            std::cmp::Ordering::Less => {
                out.push(xs[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(ys[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(f(&xs[i], &ys[j]));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&xs[i..]);
    out.extend_from_slice(&ys[j..]);
}

fn merge_intersect<E: Entry>(xs: &[E], ys: &[E], f: &impl Fn(&E, &E) -> E, out: &mut Vec<E>) {
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].key().cmp(ys[j].key()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(f(&xs[i], &ys[j]));
                i += 1;
                j += 1;
            }
        }
    }
}

fn merge_difference<E: Entry>(xs: &[E], ys: &[E], out: &mut Vec<E>) {
    let (mut i, mut j) = (0, 0);
    while i < xs.len() {
        if j >= ys.len() {
            out.extend_from_slice(&xs[i..]);
            break;
        }
        match xs[i].key().cmp(ys[j].key()) {
            std::cmp::Ordering::Less => {
                out.push(xs[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
}

/// Union with a combiner for duplicate keys (`f(from_t1, from_t2)`).
///
/// Work `O(m log(n/m) + min(mB, n))`, span `O(log n log m)` (Thm 6.3).
pub(crate) fn union_with<E, A, C, F>(
    b: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    let grain = par_grain(b, size(&t1) + size(&t2));
    union_rec(b, grain, t1, t2, f)
}

fn union_rec<E, A, C, F>(
    b: usize,
    grain: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    let (Some(n1), Some(n2)) = (&t1, &t2) else {
        // One side may be an expose-expanded subtree: re-fold it.
        return refold(b, t1.or(t2));
    };
    let (s1, s2) = (n1.size(), n2.size());
    if s1 + s2 <= KAPPA_BLOCKS * b {
        // Section 8 base case: flatten into scratch, merge, rebuild.
        return merge_base_case(b, t1, t2, |xs, ys, out| merge_union(xs, ys, f, out));
    }
    let (l2, k2, r2, husk) = expose_owned(t2);
    let (l1, m, r1) = split(b, t1, k2.key());
    let entry = match m {
        Some(e1) => f(&e1, &k2),
        None => k2,
    };
    let (tl, tr) = if s1 + s2 > grain {
        parlay::join(
            || union_rec(b, grain, l1, l2, f),
            || union_rec(b, grain, r1, r2, f),
        )
    } else {
        (
            union_rec(b, grain, l1, l2, f),
            union_rec(b, grain, r1, r2, f),
        )
    };
    join(b, husk, tl, entry, tr)
}

/// Expose-only union (Fig. 5 style, no array base case) — kept for the
/// Section 8 ablation benchmark.
pub(crate) fn union_naive<E, A, C, F>(
    b: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    let grain = par_grain(b, size(&t1) + size(&t2));
    union_naive_rec(b, grain, t1, t2, f)
}

fn union_naive_rec<E, A, C, F>(
    b: usize,
    grain: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    let (Some(_), Some(n2)) = (&t1, &t2) else {
        // One side may be an expose-expanded subtree: re-fold it.
        return refold(b, t1.or(t2));
    };
    let total = size(&t1) + n2.size();
    let (l2, k2, r2, husk) = expose_owned(t2);
    let (l1, m, r1) = split(b, t1, k2.key());
    let entry = match m {
        Some(e1) => f(&e1, &k2),
        None => k2,
    };
    let (tl, tr) = if total > grain {
        parlay::join(
            || union_naive_rec(b, grain, l1, l2, f),
            || union_naive_rec(b, grain, r1, r2, f),
        )
    } else {
        (
            union_naive_rec(b, grain, l1, l2, f),
            union_naive_rec(b, grain, r1, r2, f),
        )
    };
    join(b, husk, tl, entry, tr)
}

/// Intersection with a combiner for the retained entries.
pub(crate) fn intersect_with<E, A, C, F>(
    b: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    let grain = par_grain(b, size(&t1) + size(&t2));
    intersect_rec(b, grain, t1, t2, f)
}

fn intersect_rec<E, A, C, F>(
    b: usize,
    grain: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    let (Some(n1), Some(n2)) = (&t1, &t2) else {
        return None;
    };
    let (s1, s2) = (n1.size(), n2.size());
    if s1 + s2 <= KAPPA_BLOCKS * b {
        return merge_base_case(b, t1, t2, |xs, ys, out| merge_intersect(xs, ys, f, out));
    }
    let (l2, k2, r2, husk) = expose_owned(t2);
    let (l1, m, r1) = split(b, t1, k2.key());
    let (tl, tr) = if s1 + s2 > grain {
        parlay::join(
            || intersect_rec(b, grain, l1, l2, f),
            || intersect_rec(b, grain, r1, r2, f),
        )
    } else {
        (
            intersect_rec(b, grain, l1, l2, f),
            intersect_rec(b, grain, r1, r2, f),
        )
    };
    match m {
        Some(e1) => join(b, husk, tl, f(&e1, &k2), tr),
        None => join2(b, husk, tl, tr),
    }
}

/// Difference `t1 \ t2`: entries of `t1` whose keys are not in `t2`.
pub(crate) fn difference<E, A, C>(b: usize, t1: Tree<E, A, C>, t2: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let grain = par_grain(b, size(&t1) + size(&t2));
    difference_rec(b, grain, t1, t2)
}

fn difference_rec<E, A, C>(
    b: usize,
    grain: usize,
    t1: Tree<E, A, C>,
    t2: Tree<E, A, C>,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let (Some(n1), Some(n2)) = (&t1, &t2) else {
        return t1;
    };
    let (s1, s2) = (n1.size(), n2.size());
    if s1 + s2 <= KAPPA_BLOCKS * b {
        return merge_base_case(b, t1, t2, |xs, ys, out| merge_difference(xs, ys, out));
    }
    let (l2, k2, r2, husk) = expose_owned(t2);
    let (l1, _m, r1) = split(b, t1, k2.key());
    let (tl, tr) = if s1 + s2 > grain {
        parlay::join(
            || difference_rec(b, grain, l1, l2),
            || difference_rec(b, grain, r1, r2),
        )
    } else {
        (
            difference_rec(b, grain, l1, l2),
            difference_rec(b, grain, r1, r2),
        )
    };
    join2(b, husk, tl, tr)
}

/// Batch insert (Fig. 8's `multi_insert`): `batch` must be sorted by key
/// and duplicate-free; `f(old, new)` combines with an existing entry.
pub(crate) fn multi_insert<E, A, C, F>(
    b: usize,
    t: Tree<E, A, C>,
    batch: &[E],
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    debug_assert!(batch.windows(2).all(|w| w[0].key() < w[1].key()));
    let grain = par_grain(b, size(&t) + batch.len());
    multi_insert_rec(b, grain, t, batch, f)
}

fn multi_insert_rec<E, A, C, F>(
    b: usize,
    grain: usize,
    t: Tree<E, A, C>,
    batch: &[E],
    f: &F,
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E + Sync,
{
    if batch.is_empty() {
        return t;
    }
    let Some(node) = &t else {
        return from_sorted(b, batch);
    };
    let s = node.size();
    if s + batch.len() <= KAPPA_BLOCKS * b || node.is_flat() {
        return with_scratch(s, |xs: &mut Vec<E>| {
            push_all(&t, xs);
            with_scratch(s + batch.len(), |out: &mut Vec<E>| {
                // Reuse the union merge with roles: existing entries first.
                merge_union(xs, batch, f, out);
                rebuild_leaf(b, t, out)
            })
        });
    }
    let (l, e, r, husk) = expose_owned(t);
    let pos = batch.partition_point(|x| x.key() < e.key());
    let (hit, rest_at) = if pos < batch.len() && batch[pos].key() == e.key() {
        (Some(&batch[pos]), pos + 1)
    } else {
        (None, pos)
    };
    let entry = match hit {
        Some(new) => f(&e, new),
        None => e,
    };
    let (left_batch, right_batch) = (&batch[..pos], &batch[rest_at..]);
    let (tl, tr) = if s + batch.len() > grain {
        parlay::join(
            || multi_insert_rec(b, grain, l, left_batch, f),
            || multi_insert_rec(b, grain, r, right_batch, f),
        )
    } else {
        (
            multi_insert_rec(b, grain, l, left_batch, f),
            multi_insert_rec(b, grain, r, right_batch, f),
        )
    };
    join(b, husk, tl, entry, tr)
}

/// Batch delete: removes all entries whose keys appear in the sorted,
/// duplicate-free `keys`.
pub(crate) fn multi_delete<E, A, C>(b: usize, t: Tree<E, A, C>, keys: &[E::Key]) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
    let grain = par_grain(b, size(&t));
    multi_delete_rec(b, grain, t, keys)
}

fn multi_delete_rec<E, A, C>(
    b: usize,
    grain: usize,
    t: Tree<E, A, C>,
    keys: &[E::Key],
) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    if keys.is_empty() {
        return t;
    }
    let Some(node) = &t else {
        return None;
    };
    let s = node.size();
    if s <= KAPPA_BLOCKS * b || node.is_flat() {
        return with_scratch(s, |xs: &mut Vec<E>| {
            push_all(&t, xs);
            xs.retain(|e| keys.binary_search_by(|k| k.cmp(e.key())).is_err());
            rebuild_leaf(b, t, xs)
        });
    }
    let (l, e, r, husk) = expose_owned(t);
    let pos = keys.partition_point(|k| k < e.key());
    let (hit, rest_at) = if pos < keys.len() && &keys[pos] == e.key() {
        (true, pos + 1)
    } else {
        (false, pos)
    };
    let (left_keys, right_keys) = (&keys[..pos], &keys[rest_at..]);
    let (tl, tr) = if s > grain {
        parlay::join(
            || multi_delete_rec(b, grain, l, left_keys),
            || multi_delete_rec(b, grain, r, right_keys),
        )
    } else {
        (
            multi_delete_rec(b, grain, l, left_keys),
            multi_delete_rec(b, grain, r, right_keys),
        )
    };
    if hit {
        join2(b, husk, tl, tr)
    } else {
        join(b, husk, tl, e, tr)
    }
}
