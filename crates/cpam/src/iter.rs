//! Streaming in-order iteration over a tree.

use std::sync::Arc;

use codecs::{BlockCursor, Codec};

use crate::aug::Augmentation;
use crate::entry::Element;
use crate::node::{BlockRef, Node, Tree};
use crate::stats;

/// An in-order iterator over the entries of a PaC-tree.
///
/// Holds `Arc`s to the spine it is traversing, so it is a snapshot: the
/// source collection can be updated (functionally) while iterating.
///
/// Leaf blocks are streamed through the codec's cursor — entries decode
/// one at a time as the iterator advances, with no per-leaf `Vec`.
pub struct Iter<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    /// Cursor into `leaf`'s block.
    ///
    /// The `'static` lifetime is a privately-maintained fiction: the
    /// cursor actually borrows the block inside `leaf`'s heap
    /// allocation. Safety is kept local to this module by two rules,
    /// both upheld below: (1) `cursor` is cleared or replaced *before*
    /// `leaf` is, and the field is declared first so it also drops
    /// first; (2) `leaf` is never mutated while `cursor` is `Some`.
    /// Moving the `Iter` itself is fine — the block lives behind the
    /// `Arc`, not inline.
    cursor: Option<C::Cursor<'static>>,
    /// Keeps the current leaf's allocation (and thus the cursor's
    /// borrow target) alive.
    leaf: Option<Arc<Node<E, A, C>>>,
    /// For lazy leaves the cursor borrows a pool-loaded block that lives
    /// outside the node; this strong reference keeps it alive. Cleared
    /// together with `leaf`.
    lazy_block: Option<Arc<C::Block>>,
    /// Regular nodes whose entry and right subtree are still pending.
    stack: Vec<Arc<Node<E, A, C>>>,
}

impl<E, A, C> Iter<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    pub(crate) fn new(t: &Tree<E, A, C>) -> Self {
        let mut it = Iter {
            cursor: None,
            leaf: None,
            lazy_block: None,
            stack: Vec::new(),
        };
        it.push_left_spine(t);
        it
    }

    fn push_left_spine(&mut self, mut t: &Tree<E, A, C>) {
        while let Some(node) = t {
            match &**node {
                Node::Regular { left, .. } => {
                    self.stack.push(Arc::clone(node));
                    t = left;
                }
                _ => {
                    debug_assert!(self.cursor.is_none());
                    stats::count_cursor_op();
                    let leaf = Arc::clone(node);
                    // SAFETY: the block either lives inside `leaf`'s Arc
                    // allocation (flat), which `self.leaf` keeps alive
                    // for the cursor's whole lifetime (see the field
                    // docs), or in a pool-loaded Arc kept alive by
                    // `self.lazy_block`; Arc contents never move. The
                    // raw-pointer round-trip launders the borrow to the
                    // field's 'static.
                    let block: *const C::Block = match leaf.leaf_block() {
                        BlockRef::Borrowed(b) => {
                            self.lazy_block = None;
                            b
                        }
                        BlockRef::Loaded(arc) => {
                            let p = Arc::as_ptr(&arc);
                            self.lazy_block = Some(arc);
                            p
                        }
                    };
                    self.cursor = Some(C::cursor(unsafe { &*block }));
                    self.leaf = Some(leaf);
                    return;
                }
            }
        }
    }
}

/// Folds an entire subtree in-order without cursor state: flat nodes
/// stream through the codec's `for_each` (the tightest decode loop),
/// regular nodes recurse.
fn fold_tree<E, A, C, B>(t: &Tree<E, A, C>, mut acc: B, f: &mut impl FnMut(B, E) -> B) -> B
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return acc };
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            acc = fold_tree(left, acc, f);
            acc = f(acc, entry.clone());
            fold_tree(right, acc, f)
        }
        leaf => {
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            let mut acc = Some(acc);
            C::for_each(&block, &mut |e| {
                acc = Some(f(acc.take().expect("acc threaded"), e.clone()));
            });
            acc.expect("acc threaded")
        }
    }
}

impl<E, A, C> Iterator for Iter<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    type Item = E;

    /// Internal iteration override: bulk consumers (`sum`, `collect`,
    /// `for` loops through adapters) bypass the per-entry cursor
    /// save/restore and run the codec's tight streaming loop per block.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, E) -> B,
    {
        let mut acc = init;
        // Drain the in-progress leaf, releasing the cursor before the
        // leaf Arc it borrows (same discipline as `next`).
        if let Some(mut cur) = self.cursor.take() {
            while let Some(e) = cur.peek() {
                let e = e.clone();
                cur.advance();
                acc = f(acc, e);
            }
            drop(cur);
            self.leaf = None;
            self.lazy_block = None;
        }
        // The stack holds ancestors root-first; each pending node
        // contributes its entry then its whole right subtree.
        while let Some(node) = self.stack.pop() {
            let Node::Regular { entry, right, .. } = &*node else {
                unreachable!("flat nodes never sit on the iterator stack");
            };
            acc = f(acc, entry.clone());
            acc = fold_tree(right, acc, &mut f);
        }
        acc
    }

    #[inline]
    fn next(&mut self) -> Option<E> {
        if let Some(cur) = self.cursor.as_mut() {
            if let Some(e) = cur.peek() {
                let e = e.clone();
                cur.advance();
                return Some(e);
            }
            // Exhausted: release the cursor before the leaf it borrows.
            self.cursor = None;
            self.leaf = None;
            self.lazy_block = None;
        }
        let node = self.stack.pop()?;
        let Node::Regular { entry, right, .. } = &*node else {
            unreachable!("flat nodes never sit on the iterator stack");
        };
        let e = entry.clone();
        // Clone the subtree handle before dropping our hold on `node`.
        let right = right.clone();
        self.push_left_spine(&right);
        // Keep `right`'s nodes alive: push_left_spine stored Arcs as needed.
        Some(e)
    }
}
