//! Streaming in-order iteration over a tree.

use std::sync::Arc;

use codecs::Codec;

use crate::aug::Augmentation;
use crate::entry::Element;
use crate::node::{decode_flat, Node, Tree};

/// An in-order iterator over the entries of a PaC-tree.
///
/// Holds `Arc`s to the spine it is traversing, so it is a snapshot: the
/// source collection can be updated (functionally) while iterating.
pub struct Iter<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    /// Regular nodes whose entry and right subtree are still pending.
    stack: Vec<Arc<Node<E, A, C>>>,
    /// Decoded entries of the current flat node (drained front to back).
    block: Vec<E>,
    /// Next index into `block`.
    block_at: usize,
}

impl<E, A, C> Iter<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    pub(crate) fn new(t: &Tree<E, A, C>) -> Self {
        let mut it = Iter {
            stack: Vec::new(),
            block: Vec::new(),
            block_at: 0,
        };
        it.push_left_spine(t);
        it
    }

    fn push_left_spine(&mut self, mut t: &Tree<E, A, C>) {
        while let Some(node) = t {
            match &**node {
                Node::Regular { left, .. } => {
                    self.stack.push(Arc::clone(node));
                    t = left;
                }
                Node::Flat { .. } => {
                    debug_assert!(self.block_at >= self.block.len());
                    self.block = decode_flat(node);
                    self.block_at = 0;
                    return;
                }
            }
        }
    }
}

impl<E, A, C> Iterator for Iter<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    type Item = E;

    fn next(&mut self) -> Option<E> {
        if self.block_at < self.block.len() {
            let e = self.block[self.block_at].clone();
            self.block_at += 1;
            return Some(e);
        }
        let node = self.stack.pop()?;
        let Node::Regular { entry, right, .. } = &*node else {
            unreachable!("flat nodes never sit on the iterator stack");
        };
        let e = entry.clone();
        // Clone the subtree handle before dropping our hold on `node`.
        let right = right.clone();
        self.push_left_spine(&right);
        // Keep `right`'s nodes alive: push_left_spine stored Arcs as needed.
        Some(e)
    }
}
