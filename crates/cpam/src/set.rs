//! [`PacSet`]: a purely-functional ordered set on PaC-trees.

use codecs::{Codec, RawCodec};

use crate::aug::{Augmentation, NoAug};
use crate::entry::ScalarKey;
use crate::iter::Iter;
use crate::node::{aug_of, size, SpaceStats, Tree};
use crate::{algos, base, join as jn, setops, structure, verify, DEFAULT_B};

/// A purely-functional ordered set with blocked, optionally compressed
/// leaves.
///
/// The set analogue of [`crate::PacMap`]: elements are their own keys.
/// With integer elements and [`codecs::DeltaCodec`] this is the paper's
/// compact ordered-set representation (Corollary 4.3).
///
/// # Examples
///
/// ```
/// use cpam::PacSet;
/// use codecs::DeltaCodec;
///
/// let a: PacSet<u64> = PacSet::from_keys((0..100).collect());
/// let b: PacSet<u64> = PacSet::from_keys((50..150).collect());
/// assert_eq!(a.union(&b).len(), 150);
/// assert_eq!(a.intersect(&b).len(), 50);
/// assert_eq!(a.difference(&b).len(), 50);
///
/// // Difference-encoded set: ~1 byte per element for dense keys.
/// let c: PacSet<u64, cpam::NoAug, DeltaCodec> =
///     PacSet::from_keys_with(128, (0..10_000).collect());
/// assert!(c.space_stats().total_bytes < 10_000 * 4);
/// ```
pub struct PacSet<K, A = NoAug, C = RawCodec>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    pub(crate) root: Tree<K, A, C>,
    pub(crate) b: usize,
}

impl<K, A, C> Clone for PacSet<K, A, C>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    fn clone(&self) -> Self {
        PacSet {
            root: self.root.clone(),
            b: self.b,
        }
    }
}

impl<K, A, C> Default for PacSet<K, A, C>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, A, C> std::fmt::Debug for PacSet<K, A, C>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacSet")
            .field("len", &self.len())
            .field("block_size", &self.b)
            .finish()
    }
}

impl<K, A, C> PacSet<K, A, C>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    /// An empty set with the default block size (`B = 128`).
    pub fn new() -> Self {
        Self::with_block_size(DEFAULT_B)
    }

    /// An empty set with block size `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn with_block_size(b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        PacSet { root: None, b }
    }

    /// Builds from arbitrary keys (parallel sort + dedup).
    pub fn from_keys(keys: Vec<K>) -> Self {
        Self::from_keys_with(DEFAULT_B, keys)
    }

    /// [`PacSet::from_keys`] with an explicit block size.
    pub fn from_keys_with(b: usize, mut keys: Vec<K>) -> Self {
        parlay::par_sort(&mut keys);
        keys.dedup();
        PacSet {
            root: base::from_sorted(b, &keys),
            b,
        }
    }

    /// Builds from strictly increasing keys. `O(n)` work.
    pub fn from_sorted_keys(b: usize, keys: &[K]) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        PacSet {
            root: base::from_sorted(b, keys),
            b,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The block size this set was created with.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// True if `k` is a member. `O(log n + B)` work.
    pub fn contains(&self, k: &K) -> bool {
        algos::find(&self.root, k).is_some()
    }

    /// A new set with `k` added.
    pub fn insert(&self, k: K) -> Self {
        self.clone().insert_owned(k)
    }

    /// Consuming [`PacSet::insert`]: uniquely-owned nodes on the update
    /// path are rebuilt in place instead of path-copied (the refcount-1
    /// fast path; see [`crate::PacMap`]'s "Consuming updates" section).
    pub fn insert_owned(self, k: K) -> Self {
        PacSet {
            root: algos::insert(self.b, self.root, k, &|old: &K, _new: &K| old.clone()),
            b: self.b,
        }
    }

    /// A new set without `k`.
    pub fn remove(&self, k: &K) -> Self {
        self.clone().remove_owned(k)
    }

    /// Consuming [`PacSet::remove`].
    pub fn remove_owned(self, k: &K) -> Self {
        PacSet {
            root: algos::remove(self.b, self.root, k),
            b: self.b,
        }
    }

    /// Set union. Work `O(m log(n/m) + min(mB, n))` (Theorem 6.3).
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different block sizes (the result
    /// shares subtrees with both inputs, so mismatched `B` would
    /// silently violate the leaf-size invariant).
    pub fn union(&self, other: &Self) -> Self {
        self.clone().union_owned(other.clone())
    }

    /// Consuming [`PacSet::union`]: both operands are consumed and
    /// whichever side's nodes are uniquely owned are reused in place.
    ///
    /// # Panics
    ///
    /// See [`PacSet::union`].
    pub fn union_owned(self, other: Self) -> Self {
        assert_eq!(self.b, other.b, "union requires equal block sizes");
        PacSet {
            root: setops::union_with(self.b, self.root, other.root, &|a, _| a.clone()),
            b: self.b,
        }
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// See [`PacSet::union`].
    pub fn intersect(&self, other: &Self) -> Self {
        self.clone().intersect_owned(other.clone())
    }

    /// Consuming [`PacSet::intersect`].
    ///
    /// # Panics
    ///
    /// See [`PacSet::union`].
    pub fn intersect_owned(self, other: Self) -> Self {
        assert_eq!(self.b, other.b, "intersect requires equal block sizes");
        PacSet {
            root: setops::intersect_with(self.b, self.root, other.root, &|a, _| a.clone()),
            b: self.b,
        }
    }

    /// Elements of `self` not in `other`.
    ///
    /// # Panics
    ///
    /// See [`PacSet::union`].
    pub fn difference(&self, other: &Self) -> Self {
        self.clone().difference_owned(other.clone())
    }

    /// Consuming [`PacSet::difference`].
    ///
    /// # Panics
    ///
    /// See [`PacSet::union`].
    pub fn difference_owned(self, other: Self) -> Self {
        assert_eq!(self.b, other.b, "difference requires equal block sizes");
        PacSet {
            root: setops::difference(self.b, self.root, other.root),
            b: self.b,
        }
    }

    /// Expose-only union without the Section 8 array base case; exists
    /// for the base-case ablation benchmark.
    #[doc(hidden)]
    pub fn union_naive(&self, other: &Self) -> Self {
        PacSet {
            root: setops::union_naive(self.b, self.root.clone(), other.root.clone(), &|a, _| {
                a.clone()
            }),
            b: self.b,
        }
    }

    /// Batch insert of arbitrary keys (parallel sort + dedup + merge).
    pub fn multi_insert(&self, keys: Vec<K>) -> Self {
        self.clone().multi_insert_owned(keys)
    }

    /// Consuming [`PacSet::multi_insert`].
    pub fn multi_insert_owned(self, mut keys: Vec<K>) -> Self {
        parlay::par_sort(&mut keys);
        keys.dedup();
        PacSet {
            root: setops::multi_insert(self.b, self.root, &keys, &|old: &K, _: &K| old.clone()),
            b: self.b,
        }
    }

    /// Batch delete.
    pub fn multi_delete(&self, keys: Vec<K>) -> Self {
        self.clone().multi_delete_owned(keys)
    }

    /// Consuming [`PacSet::multi_delete`].
    pub fn multi_delete_owned(self, mut keys: Vec<K>) -> Self {
        parlay::par_sort(&mut keys);
        keys.dedup();
        PacSet {
            root: setops::multi_delete(self.b, self.root, &keys),
            b: self.b,
        }
    }

    /// Keeps elements satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&K) -> bool + Sync) -> Self {
        self.clone().filter_owned(pred)
    }

    /// Consuming [`PacSet::filter`].
    pub fn filter_owned(self, pred: impl Fn(&K) -> bool + Sync) -> Self {
        PacSet {
            root: algos::filter(self.b, self.root, &pred),
            b: self.b,
        }
    }

    /// Parallel map-reduce over elements.
    pub fn map_reduce<R: Send + Sync + Clone>(
        &self,
        m: impl Fn(&K) -> R + Sync,
        op: impl Fn(R, R) -> R + Sync,
        id: R,
    ) -> R {
        algos::map_reduce(&self.root, &m, &op, id)
    }

    /// Number of elements strictly less than `k`.
    pub fn rank(&self, k: &K) -> usize {
        algos::rank(&self.root, k)
    }

    /// The `i`-th smallest element.
    pub fn select(&self, i: usize) -> Option<K> {
        algos::select(&self.root, i)
    }

    /// Smallest element `>= k`.
    pub fn succ(&self, k: &K) -> Option<K> {
        algos::succ(&self.root, k)
    }

    /// Largest element `<= k`.
    pub fn pred(&self, k: &K) -> Option<K> {
        algos::pred(&self.root, k)
    }

    /// Smallest element.
    pub fn first(&self) -> Option<K> {
        algos::first(&self.root)
    }

    /// Largest element.
    pub fn last(&self) -> Option<K> {
        algos::last(&self.root)
    }

    /// Elements in `[lo, hi]` as a new set.
    pub fn range(&self, lo: &K, hi: &K) -> Self {
        PacSet {
            root: algos::range(self.b, self.root.clone(), lo, hi),
            b: self.b,
        }
    }

    /// Elements in `[lo, hi]` as a vector, without building a subtree.
    pub fn range_keys(&self, lo: &K, hi: &K) -> Vec<K> {
        algos::range_entries(&self.root, lo, hi)
    }

    /// Number of elements in `[lo, hi]` (two rank queries).
    pub fn count_range(&self, lo: &K, hi: &K) -> usize {
        let below_hi = algos::rank(&self.root, hi) + usize::from(self.contains(hi));
        below_hi - algos::rank(&self.root, lo)
    }

    /// Aggregate of all elements.
    pub fn aug_value(&self) -> A::Value {
        aug_of(&self.root)
    }

    /// All elements in order.
    pub fn to_vec(&self) -> Vec<K> {
        algos::entries_vec(&self.root)
    }

    /// Streaming in-order iterator (snapshot semantics).
    pub fn iter(&self) -> Iter<K, A, C> {
        Iter::new(&self.root)
    }

    /// Heap-space statistics.
    pub fn space_stats(&self) -> SpaceStats {
        crate::node::space(&self.root)
    }

    /// Pre-order walk over the tree's nodes: regular pivot entries and
    /// *already-encoded* leaf blocks (see [`crate::structure`]). The
    /// serialization hook used by the `store` crate's snapshot codec.
    pub fn visit_nodes(&self, f: &mut impl FnMut(structure::NodeRef<'_, K, C::Block>)) {
        structure::visit_preorder(&self.root, f);
    }

    /// Bulk constructor from a pre-order node stream — the inverse of
    /// [`PacSet::visit_nodes`]: rebuilds the identical tree with block
    /// size `b`, adopting encoded blocks verbatim (no re-sorting or
    /// re-encoding) and recomputing cached sizes and aggregates.
    ///
    /// # Errors
    ///
    /// [`structure::BuildError`] when the stream's source fails or the
    /// stream is structurally invalid.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn from_node_stream<S>(
        b: usize,
        next: &mut impl FnMut() -> Result<structure::NodeOwned<K, C::Block>, S>,
    ) -> Result<Self, structure::BuildError<S>> {
        assert!(b > 0, "block size must be positive");
        Ok(PacSet {
            root: structure::build_preorder(b, next)?,
            b,
        })
    }

    /// Pre-order diff walk against `base`; the set counterpart of
    /// [`crate::PacMap::visit_nodes_diff`]. Subtrees shared with `base`
    /// are reported by base-pre-order index and pruned.
    pub fn visit_nodes_diff(
        &self,
        base: &Self,
        f: &mut impl FnMut(structure::DiffNodeRef<'_, K, C::Block>),
    ) {
        let index = structure::index_preorder(&base.root);
        structure::visit_preorder_diff(&self.root, &index, f);
    }

    /// Bulk constructor from a pre-order diff stream — the inverse of
    /// [`PacSet::visit_nodes_diff`]; the set counterpart of
    /// [`crate::PacMap::from_diff_node_stream`].
    ///
    /// # Errors
    ///
    /// [`structure::BuildError`] when the stream's source fails or the
    /// stream is structurally invalid.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn from_diff_node_stream<S>(
        b: usize,
        base: &Self,
        next: &mut impl FnMut() -> Result<structure::DiffNodeOwned<K, C::Block>, S>,
    ) -> Result<Self, structure::BuildError<S>> {
        assert!(b > 0, "block size must be positive");
        let subtrees = structure::collect_preorder(&base.root);
        Ok(PacSet {
            root: structure::build_preorder_diff(b, &subtrees, next)?,
            b,
        })
    }

    /// Verifies every structural invariant.
    ///
    /// # Errors
    ///
    /// Describes the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String>
    where
        K: std::fmt::Debug,
        A::Value: PartialEq + std::fmt::Debug,
    {
        verify::check_ordered(self.b, &self.root)
    }

    /// Splits into (elements `< k`, membership of `k`, elements `> k`).
    pub fn split(&self, k: &K) -> (Self, bool, Self) {
        let (l, m, r) = jn::split(self.b, self.root.clone(), k);
        (
            PacSet { root: l, b: self.b },
            m.is_some(),
            PacSet { root: r, b: self.b },
        )
    }
}

impl<K, A, C> PartialEq for PacSet<K, A, C>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<K, A, C> FromIterator<K> for PacSet<K, A, C>
where
    K: ScalarKey,
    A: Augmentation<K>,
    C: Codec<K>,
{
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        Self::from_keys_with(DEFAULT_B, iter.into_iter().collect())
    }
}
