//! Sequence behaviour against a `Vec` oracle.

use crate::PacSeq;

fn seq_of(n: u64, b: usize) -> (PacSeq<u64>, Vec<u64>) {
    // Deliberately unsorted values: sequences must preserve order.
    let values: Vec<u64> = (0..n).map(|i| (i * 7919) % 1000).collect();
    (PacSeq::from_slice_with(b, &values), values)
}

#[test]
fn build_preserves_order() {
    for &b in &[1usize, 2, 8, 64, 128] {
        let (s, oracle) = seq_of(500, b);
        s.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(s.to_vec(), oracle);
    }
}

#[test]
fn nth_matches_indexing() {
    let (s, oracle) = seq_of(1000, 16);
    for i in [0usize, 1, 500, 998, 999] {
        assert_eq!(s.nth(i), Some(oracle[i]));
    }
    assert_eq!(s.nth(1000), None);
}

#[test]
fn take_drop_subseq() {
    let (s, oracle) = seq_of(1000, 8);
    assert_eq!(s.take(100).to_vec(), &oracle[..100]);
    assert_eq!(s.drop_first(900).to_vec(), &oracle[900..]);
    assert_eq!(s.subseq(250, 750).to_vec(), &oracle[250..750]);
    assert_eq!(s.take(0).len(), 0);
    assert_eq!(s.take(5000).len(), 1000);
    s.take(100).check_invariants().expect("take invariants");
    s.subseq(250, 750).check_invariants().expect("subseq invariants");
}

#[test]
fn append_matches_concat() {
    for &b in &[2usize, 32] {
        let (x, ox) = seq_of(300, b);
        let (y, oy) = seq_of(170, b);
        let z = x.append(&y);
        z.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        let expected: Vec<u64> = ox.iter().chain(oy.iter()).copied().collect();
        assert_eq!(z.to_vec(), expected);
    }
}

#[test]
fn append_empty_cases() {
    let (s, oracle) = seq_of(100, 8);
    let e = PacSeq::<u64>::with_block_size(8);
    assert_eq!(s.append(&e).to_vec(), oracle);
    assert_eq!(e.append(&s).to_vec(), oracle);
    assert!(e.append(&e).is_empty());
}

#[test]
fn reverse_matches_oracle() {
    for &b in &[1usize, 4, 128] {
        let (s, mut oracle) = seq_of(777, b);
        let r = s.reverse();
        r.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        oracle.reverse();
        assert_eq!(r.to_vec(), oracle);
        assert_eq!(r.reverse().to_vec(), s.to_vec());
    }
}

#[test]
fn map_filter_reduce() {
    let (s, oracle) = seq_of(2000, 32);
    let mapped = s.map(|v| v + 1);
    assert_eq!(mapped.nth(0), Some(oracle[0] + 1));
    let filtered = s.filter(|v| v % 2 == 0);
    assert_eq!(
        filtered.to_vec(),
        oracle.iter().copied().filter(|v| v % 2 == 0).collect::<Vec<_>>()
    );
    let total = s.map_reduce(|v| *v, |a, b| a + b, 0u64);
    assert_eq!(total, oracle.iter().sum::<u64>());
    assert_eq!(s.reduce(0, |a, b| a.max(b)), *oracle.iter().max().unwrap());
}

#[test]
fn find_first_matches_position() {
    let (s, oracle) = seq_of(3000, 16);
    for target in [0u64, 500, 999] {
        assert_eq!(
            s.find_first(|v| *v == target),
            oracle.iter().position(|v| *v == target),
            "target {target}"
        );
    }
    assert_eq!(s.find_first(|v| *v > 10_000), None);
}

#[test]
fn is_sorted_detects_order() {
    let sorted: PacSeq<u64> = PacSeq::from_slice_with(16, &(0..5000).collect::<Vec<_>>());
    assert!(sorted.is_sorted());
    let (unsorted, _) = seq_of(5000, 16);
    assert!(!unsorted.is_sorted());
    let empty = PacSeq::<u64>::new();
    assert!(empty.is_sorted());
}

#[test]
fn persistence_of_sequence_versions() {
    let (s, oracle) = seq_of(400, 8);
    let v1 = s.append(&s);
    let v2 = v1.reverse();
    let v3 = v1.take(100);
    assert_eq!(s.len(), 400);
    assert_eq!(v1.len(), 800);
    assert_eq!(v2.len(), 800);
    assert_eq!(v3.len(), 100);
    assert_eq!(s.to_vec(), oracle);
}

#[test]
fn iterator_streams_in_order() {
    let (s, oracle) = seq_of(1234, 32);
    let collected: Vec<u64> = s.iter().collect();
    assert_eq!(collected, oracle);
}

#[test]
fn strings_as_elements() {
    let words: Vec<String> = (0..300).map(|i| format!("w{i}")).collect();
    let s: PacSeq<String> = PacSeq::from_slice_with(16, &words);
    assert_eq!(s.nth(200), Some("w200".to_string()));
    let joined_len = s.map_reduce(|w| w.len(), |a, b| a + b, 0usize);
    assert_eq!(joined_len, words.iter().map(String::len).sum::<usize>());
}
