//! Set behaviour across block sizes, against a `BTreeSet` oracle.

use std::collections::BTreeSet;

use codecs::DeltaCodec;

use crate::{NoAug, PacSet};

const BLOCK_SIZES: &[usize] = &[1, 2, 3, 8, 32, 128];

fn keys(spec: impl IntoIterator<Item = u64>) -> Vec<u64> {
    spec.into_iter().collect()
}

#[test]
fn build_and_membership_all_block_sizes() {
    for &b in BLOCK_SIZES {
        let s = PacSet::<u64>::from_keys_with(b, keys((0..500).map(|i| i * 3)));
        s.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(s.len(), 500);
        assert!(s.contains(&333));
        assert!(!s.contains(&334));
        assert_eq!(s.to_vec(), keys((0..500).map(|i| i * 3)));
    }
}

#[test]
fn build_handles_duplicates_and_unsorted_input() {
    let s = PacSet::<u64>::from_keys_with(8, vec![5, 3, 5, 1, 3, 3, 9]);
    assert_eq!(s.to_vec(), vec![1, 3, 5, 9]);
}

#[test]
fn empty_and_singleton() {
    let e = PacSet::<u64>::new();
    assert!(e.is_empty());
    assert_eq!(e.to_vec(), Vec::<u64>::new());
    let s = e.insert(42);
    assert_eq!(s.len(), 1);
    assert!(s.contains(&42));
    assert!(e.is_empty(), "persistence: original untouched");
}

#[test]
fn insert_remove_roundtrip_all_block_sizes() {
    for &b in BLOCK_SIZES {
        let mut s = PacSet::<u64>::with_block_size(b);
        let mut oracle = BTreeSet::new();
        // Insert in a scrambled order.
        for i in 0..300u64 {
            let k = (i * 7919) % 1000;
            s = s.insert(k);
            oracle.insert(k);
        }
        s.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(s.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
        for i in 0..150u64 {
            let k = (i * 13) % 1000;
            s = s.remove(&k);
            oracle.remove(&k);
        }
        s.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(s.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
    }
}

#[test]
fn union_intersect_difference_match_oracle() {
    for &b in &[2usize, 16, 128] {
        let xs = keys((0..400).map(|i| i * 2));
        let ys = keys((0..400).map(|i| i * 3));
        let sx = PacSet::<u64>::from_keys_with(b, xs.clone());
        let sy = PacSet::<u64>::from_keys_with(b, ys.clone());
        let ox: BTreeSet<u64> = xs.into_iter().collect();
        let oy: BTreeSet<u64> = ys.into_iter().collect();

        let u = sx.union(&sy);
        u.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(u.to_vec(), ox.union(&oy).copied().collect::<Vec<_>>());

        let i = sx.intersect(&sy);
        i.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(i.to_vec(), ox.intersection(&oy).copied().collect::<Vec<_>>());

        let d = sx.difference(&sy);
        d.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(d.to_vec(), ox.difference(&oy).copied().collect::<Vec<_>>());
    }
}

#[test]
fn union_naive_agrees_with_optimized() {
    let sx = PacSet::<u64>::from_keys_with(16, keys((0..800).map(|i| i * 2)));
    let sy = PacSet::<u64>::from_keys_with(16, keys((100..600).map(|i| i * 3)));
    let fast = sx.union(&sy);
    let slow = sx.union_naive(&sy);
    slow.check_invariants().expect("naive invariants");
    assert_eq!(fast.to_vec(), slow.to_vec());
}

#[test]
fn union_imbalanced_sizes() {
    let big = PacSet::<u64>::from_keys_with(32, keys(0..10_000));
    let small = PacSet::<u64>::from_keys_with(32, keys((0..10).map(|i| i * 1000 + 500_000)));
    let u = big.union(&small);
    u.check_invariants().expect("invariants");
    assert_eq!(u.len(), 10_010);
    let u2 = small.union(&big);
    assert_eq!(u2.len(), 10_010);
}

#[test]
fn union_with_self_and_empty() {
    let s = PacSet::<u64>::from_keys_with(8, keys(0..100));
    assert_eq!(s.union(&s).to_vec(), s.to_vec());
    let e = PacSet::<u64>::with_block_size(8);
    assert_eq!(s.union(&e).to_vec(), s.to_vec());
    assert_eq!(e.union(&s).to_vec(), s.to_vec());
    assert!(e.intersect(&s).is_empty());
    assert_eq!(s.difference(&e).to_vec(), s.to_vec());
    assert!(e.difference(&s).is_empty());
}

#[test]
fn multi_insert_and_delete_match_oracle() {
    for &b in &[4usize, 64] {
        let mut s = PacSet::<u64>::from_keys_with(b, keys((0..500).map(|i| i * 4)));
        let mut oracle: BTreeSet<u64> = (0..500).map(|i| i * 4).collect();
        let batch: Vec<u64> = (0..300).map(|i| i * 7).collect();
        s = s.multi_insert(batch.clone());
        for k in &batch {
            oracle.insert(*k);
        }
        s.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(s.to_vec(), oracle.iter().copied().collect::<Vec<_>>());

        let dels: Vec<u64> = (0..400).map(|i| i * 5).collect();
        s = s.multi_delete(dels.clone());
        for k in &dels {
            oracle.remove(k);
        }
        s.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(s.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
    }
}

#[test]
fn rank_select_are_inverse() {
    let s = PacSet::<u64>::from_keys_with(16, keys((0..1000).map(|i| i * 2 + 1)));
    for i in [0usize, 1, 499, 500, 999] {
        let k = s.select(i).expect("in range");
        assert_eq!(s.rank(&k), i);
    }
    assert_eq!(s.select(1000), None);
    assert_eq!(s.rank(&0), 0);
    assert_eq!(s.rank(&u64::MAX), 1000);
}

#[test]
fn succ_pred_first_last() {
    let s = PacSet::<u64>::from_keys_with(8, keys([10, 20, 30, 40]));
    assert_eq!(s.succ(&15), Some(20));
    assert_eq!(s.succ(&20), Some(20));
    assert_eq!(s.succ(&41), None);
    assert_eq!(s.pred(&15), Some(10));
    assert_eq!(s.pred(&9), None);
    assert_eq!(s.first(), Some(10));
    assert_eq!(s.last(), Some(40));
}

#[test]
fn range_and_count_range() {
    let s = PacSet::<u64>::from_keys_with(4, keys((0..200).map(|i| i * 5)));
    let r = s.range(&23, &102);
    r.check_invariants().expect("invariants");
    assert_eq!(r.to_vec(), keys([25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90, 95, 100]));
    assert_eq!(s.count_range(&23, &102), 16);
    assert_eq!(s.count_range(&25, &25), 1);
    assert_eq!(s.count_range(&26, &29), 0);
}

#[test]
fn filter_and_map_reduce() {
    let s = PacSet::<u64>::from_keys_with(16, keys(0..1000));
    let f = s.filter(|k| k % 10 == 0);
    f.check_invariants().expect("invariants");
    assert_eq!(f.len(), 100);
    let total = s.map_reduce(|k| *k, |a, b| a + b, 0u64);
    assert_eq!(total, 999 * 1000 / 2);
}

#[test]
fn filter_keeps_single_element_with_cheap_copy() {
    // The paper's point about functional filter: removing all but one
    // element still yields a valid tree.
    let s = PacSet::<u64>::from_keys_with(128, keys(0..5000));
    let f = s.filter(|k| *k == 2500);
    assert_eq!(f.to_vec(), vec![2500]);
}

#[test]
fn split_respects_key_order() {
    let s = PacSet::<u64>::from_keys_with(8, keys((0..100).map(|i| i * 2)));
    let (lo, found, hi) = s.split(&50);
    assert!(found);
    assert_eq!(lo.len(), 25);
    assert_eq!(hi.len(), 74);
    lo.check_invariants().expect("lo invariants");
    hi.check_invariants().expect("hi invariants");
    let (lo2, found2, _hi2) = s.split(&51);
    assert!(!found2);
    assert_eq!(lo2.len(), 26);
}

#[test]
fn snapshots_are_isolated() {
    let s0 = PacSet::<u64>::from_keys_with(8, keys(0..100));
    let s1 = s0.insert(1000);
    let s2 = s1.multi_insert(keys(2000..2100));
    let s3 = s2.multi_delete(keys(0..50));
    assert_eq!(s0.len(), 100);
    assert_eq!(s1.len(), 101);
    assert_eq!(s2.len(), 201);
    assert_eq!(s3.len(), 151);
    assert!(s0.contains(&10) && !s3.contains(&10));
}

#[test]
fn delta_encoded_set_behaves_identically() {
    let raw = PacSet::<u64>::from_keys_with(32, keys((0..2000).map(|i| i * 3)));
    let packed = PacSet::<u64, NoAug, DeltaCodec>::from_keys_with(32, keys((0..2000).map(|i| i * 3)));
    packed.check_invariants().expect("invariants");
    assert_eq!(raw.to_vec(), packed.to_vec());
    assert_eq!(raw.rank(&999), packed.rank(&999));
    let pu = packed.union(&PacSet::from_keys_with(32, keys(0..500)));
    pu.check_invariants().expect("invariants");
    assert_eq!(pu.len(), raw.union(&PacSet::from_keys_with(32, keys(0..500))).len());
    // And it is much smaller.
    assert!(packed.space_stats().total_bytes < raw.space_stats().total_bytes / 3);
}

#[test]
fn space_stats_count_entries() {
    let s = PacSet::<u64>::from_keys_with(128, keys(0..10_000));
    let st = s.space_stats();
    assert_eq!(st.entries, 10_000);
    assert!(st.flat_nodes >= 10_000 / 256 && st.flat_nodes <= 10_000 / 128 + 1);
    // Blocking: regular nodes are rare.
    assert!(st.regular_nodes < st.entries / 64);
}

#[test]
fn iterator_matches_to_vec() {
    let s = PacSet::<u64>::from_keys_with(8, keys((0..500).map(|i| i * 7)));
    let via_iter: Vec<u64> = s.iter().collect();
    assert_eq!(via_iter, s.to_vec());
}

#[test]
fn block_size_one_matches_ptree_semantics() {
    // B = 1: every leaf is a block of 1-2 entries; the paper notes this
    // configuration behaves like a P-tree.
    let s = PacSet::<u64>::from_keys_with(1, keys(0..200));
    s.check_invariants().expect("invariants");
    assert_eq!(s.len(), 200);
    let s2 = s.insert(500).remove(&0);
    s2.check_invariants().expect("invariants");
    assert_eq!(s2.len(), 200);
}
