//! Map and augmentation behaviour, against a `BTreeMap` oracle.

use std::collections::BTreeMap;

use crate::{MaxAug, PacMap, SumAug};

fn pairs(range: std::ops::Range<u64>, f: impl Fn(u64) -> u64) -> Vec<(u64, u64)> {
    range.map(|i| (i, f(i))).collect()
}

#[test]
fn build_find_and_replace_semantics() {
    let m = PacMap::<u64, u64>::from_pairs_with(16, vec![(1, 10), (2, 20), (1, 11)]);
    // Last duplicate wins in from_pairs.
    assert_eq!(m.find(&1), Some(11));
    assert_eq!(m.find(&2), Some(20));
    assert_eq!(m.find(&3), None);
    assert_eq!(m.len(), 2);
}

#[test]
fn insert_with_combines_values() {
    let m = PacMap::<u64, u64>::from_pairs_with(8, pairs(0..100, |i| i));
    let m2 = m.insert_with(50, 7, |old, new| old + new);
    assert_eq!(m2.find(&50), Some(57));
    assert_eq!(m.find(&50), Some(50), "original version unchanged");
}

#[test]
fn oracle_random_operations() {
    for &b in &[2usize, 16, 128] {
        let mut m = PacMap::<u64, u64>::with_block_size(b);
        let mut oracle = BTreeMap::new();
        let mut state = 88172645463325252u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..600 {
            let k = rand() % 256;
            match step % 4 {
                0 | 1 => {
                    m = m.insert(k, step as u64);
                    oracle.insert(k, step as u64);
                }
                2 => {
                    m = m.remove(&k);
                    oracle.remove(&k);
                }
                _ => {
                    assert_eq!(m.find(&k), oracle.get(&k).copied(), "b={b} step={step}");
                }
            }
        }
        m.check_invariants().unwrap_or_else(|e| panic!("b={b}: {e}"));
        assert_eq!(
            m.to_vec(),
            oracle.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
    }
}

#[test]
fn union_with_value_combination() {
    let a = PacMap::<u64, u64>::from_pairs_with(8, pairs(0..100, |_| 1));
    let b = PacMap::<u64, u64>::from_pairs_with(8, pairs(50..150, |_| 2));
    let u = a.union_with(&b, |x, y| x + y);
    assert_eq!(u.len(), 150);
    assert_eq!(u.find(&10), Some(1));
    assert_eq!(u.find(&75), Some(3), "overlap combines");
    assert_eq!(u.find(&120), Some(2));

    let right_biased = a.union(&b);
    assert_eq!(right_biased.find(&75), Some(2));
}

#[test]
fn intersect_and_difference_values() {
    let a = PacMap::<u64, u64>::from_pairs_with(8, pairs(0..100, |i| i));
    let b = PacMap::<u64, u64>::from_pairs_with(8, pairs(50..150, |i| i * 10));
    let i = a.intersect_with(&b, |x, _| *x);
    assert_eq!(i.len(), 50);
    assert_eq!(i.find(&60), Some(60));
    let d = a.difference(&b);
    assert_eq!(d.len(), 50);
    assert!(d.contains_key(&49) && !d.contains_key(&50));
}

#[test]
fn multi_insert_with_combine() {
    let m = PacMap::<u64, u64>::from_pairs_with(16, pairs(0..200, |_| 1));
    let batch: Vec<(u64, u64)> = (100..300).map(|i| (i, 10)).collect();
    let m2 = m.multi_insert_with(batch, |old, new| old + new);
    m2.check_invariants().expect("invariants");
    assert_eq!(m2.len(), 300);
    assert_eq!(m2.find(&50), Some(1));
    assert_eq!(m2.find(&150), Some(11));
    assert_eq!(m2.find(&250), Some(10));
}

#[test]
fn map_values_preserves_shape_and_keys() {
    let m = PacMap::<u64, u64>::from_pairs_with(32, pairs(0..1000, |i| i));
    let doubled = m.map_values(|_, v| v * 2);
    assert_eq!(doubled.len(), 1000);
    assert_eq!(doubled.find(&300), Some(600));
    // Shape preservation: identical node counts.
    assert_eq!(
        m.space_stats().regular_nodes,
        doubled.space_stats().regular_nodes
    );
    assert_eq!(m.space_stats().flat_nodes, doubled.space_stats().flat_nodes);
}

#[test]
fn sum_augmentation_tracks_totals() {
    let m = PacMap::<u64, u64, SumAug>::from_pairs_with(8, pairs(0..100, |i| i));
    m.check_invariants().expect("invariants");
    assert_eq!(m.aug_value(), 99 * 100 / 2);
    // aug_range over [10, 19]: sum of 10..=19.
    assert_eq!(m.aug_range(&10, &19), (10..=19).sum::<u64>());
    // Range boundaries off the ends.
    assert_eq!(m.aug_range(&0, &99), m.aug_value());
    assert_eq!(m.aug_range(&200, &300), 0);
    // Updates maintain augmentation.
    let m2 = m.insert(1000, 5);
    assert_eq!(m2.aug_value(), m.aug_value() + 5);
    let m3 = m2.remove(&0);
    assert_eq!(m3.aug_value(), m2.aug_value());
    let m4 = m3.remove(&50);
    assert_eq!(m4.aug_value(), m3.aug_value() - 50);
    m4.check_invariants().expect("invariants");
}

#[test]
fn max_augmentation_and_prune_search() {
    // Interval-tree pattern: key = left endpoint, value = right endpoint,
    // augmentation = max right endpoint.
    let intervals: Vec<(u64, u64)> = vec![(0, 10), (5, 8), (6, 20), (15, 18), (30, 35)];
    let m = PacMap::<u64, u64, MaxAug>::from_pairs_with(2, intervals);
    m.check_invariants().expect("invariants");
    assert_eq!(m.aug_value(), 35);
    // Stab at q = 9: intervals with left <= 9 and right >= 9.
    let q = 9u64;
    let hits = m.prune_search(&q, |max_right| *max_right >= q, |_, right| *right >= q);
    assert_eq!(hits, vec![(0, 10), (6, 20)]);
    // Stab at q = 25: nothing covers it.
    let q = 25u64;
    let hits = m.prune_search(&q, |max_right| *max_right >= q, |_, right| *right >= q);
    assert!(hits.is_empty());
}

#[test]
fn range_decompose_counts_match_range_entries() {
    let m = PacMap::<u64, u64, SumAug>::from_pairs_with(4, pairs(0..500, |_| 1));
    for (lo, hi) in [(0u64, 499u64), (10, 10), (13, 257), (490, 600), (600, 700)] {
        let mut count = 0u64;
        m.range_decompose(&lo, &hi, |part| match part {
            crate::RangePart::Subtree(sum) => count += *sum,
            crate::RangePart::Entry(_, v) => count += *v,
        });
        assert_eq!(count, m.range_entries(&lo, &hi).len() as u64, "[{lo},{hi}]");
    }
}

#[test]
fn rank_select_succ_pred() {
    let m = PacMap::<u64, u64>::from_pairs_with(16, pairs(0..100, |i| i).into_iter().map(|(k, v)| (k * 3, v)).collect());
    assert_eq!(m.rank(&0), 0);
    assert_eq!(m.rank(&1), 1);
    assert_eq!(m.select(10), Some((30, 10)));
    assert_eq!(m.succ(&31).map(|e| e.0), Some(33));
    assert_eq!(m.pred(&31).map(|e| e.0), Some(30));
    assert_eq!(m.first(), Some((0, 0)));
    assert_eq!(m.last(), Some((297, 99)));
}

#[test]
fn append_concatenates_disjoint_maps() {
    let a = PacMap::<u64, u64>::from_pairs_with(8, pairs(0..100, |i| i));
    let b = PacMap::<u64, u64>::from_pairs_with(8, pairs(100..200, |i| i));
    let c = a.append(&b);
    c.check_invariants().expect("invariants");
    assert_eq!(c.len(), 200);
    assert_eq!(c.find(&150), Some(150));
}

#[test]
fn join_and_split_roundtrip() {
    let m = PacMap::<u64, u64>::from_pairs_with(8, pairs(0..200, |i| i));
    let (lo, v, hi) = m.split(&100);
    assert_eq!(v, Some(100));
    let rejoined = PacMap::join(&lo, 100, 100, &hi);
    rejoined.check_invariants().expect("invariants");
    assert_eq!(rejoined.to_vec(), m.to_vec());
}

#[test]
fn filter_on_key_and_value() {
    let m = PacMap::<u64, u64>::from_pairs_with(32, pairs(0..1000, |i| i % 7));
    let f = m.filter(|k, v| k % 2 == 0 && *v == 3);
    f.check_invariants().expect("invariants");
    for (k, v) in f.to_vec() {
        assert!(k % 2 == 0 && v == 3);
    }
    assert_eq!(
        f.len(),
        (0..1000u64).filter(|i| i % 2 == 0 && i % 7 == 3).count()
    );
}

#[test]
fn equality_compares_contents() {
    let a = PacMap::<u64, u64>::from_pairs_with(8, pairs(0..50, |i| i));
    let b = PacMap::<u64, u64>::from_pairs_with(64, pairs(0..50, |i| i));
    // Different block sizes, same contents.
    assert_eq!(a, b);
    let c = b.insert(7, 99);
    assert_ne!(a, c);
}
