//! Lazy (paged) leaf behaviour: `from_paged_stream` builds a tree whose
//! leaves are page references, materialized through a [`BlockSource`]
//! only when a query path crosses them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::structure::PagedNodeOwned;
use crate::{BlockSource, PacMap};

type Block = Box<[(u64, u64)]>;

/// An in-memory page store that counts loads. With `evict_always` it
/// hands out a fresh allocation per load, modelling a pool whose every
/// page has been evicted between queries.
struct VecSource {
    pages: Vec<Arc<Block>>,
    loads: AtomicUsize,
    evict_always: bool,
}

impl BlockSource<Block> for VecSource {
    fn load(&self, page: u32) -> Arc<Block> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        let page = &self.pages[page as usize];
        if self.evict_always {
            Arc::new((**page).clone())
        } else {
            Arc::clone(page)
        }
    }
}

/// Flattens `map` into (pre-order structure stream, page store).
fn page_out(map: &PacMap<u64, u64>) -> (Vec<PagedNodeOwned<(u64, u64)>>, VecSource) {
    let mut stream = Vec::new();
    let mut pages: Vec<Arc<Block>> = Vec::new();
    map.visit_nodes(&mut |node| match node {
        crate::structure::NodeRef::Empty => stream.push(PagedNodeOwned::Empty),
        crate::structure::NodeRef::Regular(e) => stream.push(PagedNodeOwned::Regular(*e)),
        crate::structure::NodeRef::Flat(block) => {
            stream.push(PagedNodeOwned::Leaf {
                page: pages.len() as u32,
                len: block.len() as u32,
            });
            pages.push(Arc::new(block.clone()));
        }
    });
    (
        stream,
        VecSource {
            pages,
            loads: AtomicUsize::new(0),
            evict_always: false,
        },
    )
}

fn paged_copy_with(
    map: &PacMap<u64, u64>,
    evict_always: bool,
) -> (PacMap<u64, u64>, Arc<VecSource>) {
    let (stream, mut src) = page_out(map);
    src.evict_always = evict_always;
    let src = Arc::new(src);
    let mut it = stream.into_iter();
    let lazy = PacMap::from_paged_stream::<()>(
        map.block_size(),
        src.clone() as Arc<dyn BlockSource<Block>>,
        &mut || Ok(it.next().expect("stream exhausted")),
    )
    .expect("valid stream");
    (lazy, src)
}

fn paged_copy(map: &PacMap<u64, u64>) -> (PacMap<u64, u64>, Arc<VecSource>) {
    paged_copy_with(map, false)
}

const B: usize = 8;

fn sample(n: u64) -> PacMap<u64, u64> {
    PacMap::from_sorted_pairs(B, &(0..n).map(|i| (i * 3, i)).collect::<Vec<_>>())
}

#[test]
fn open_is_lazy_and_queries_page_on_demand() {
    let map = sample(10_000);
    let (lazy, src) = paged_copy(&map);
    // Building from the stream reads no pages at all.
    assert_eq!(src.loads.load(Ordering::Relaxed), 0);
    assert_eq!(lazy.len(), map.len());

    // One point query crosses exactly one leaf.
    assert_eq!(lazy.find(&300), Some(100));
    assert_eq!(src.loads.load(Ordering::Relaxed), 1);

    // A short range touches O(range/B) pages, not all of them.
    let hits = lazy.range_entries(&3000, &3090);
    assert_eq!(hits, map.range_entries(&3000, &3090));
    let after_range = src.loads.load(Ordering::Relaxed);
    assert!(after_range < src.pages.len() / 2, "range loaded {after_range} pages");
}

#[test]
fn lazy_tree_is_equivalent_and_valid() {
    for n in [0u64, 1, 5, 40, 1000] {
        let map = sample(n);
        let (lazy, _src) = paged_copy(&map);
        lazy.check_invariants().unwrap();
        assert!(lazy.iter().eq(map.iter()));
        assert_eq!(lazy.space_stats().entries, map.len());
    }
}

#[test]
fn weak_cache_releases_blocks_between_queries() {
    let map = sample(5_000);
    let (lazy, src) = paged_copy_with(&map, true);
    lazy.find(&300);
    lazy.find(&300);
    // The per-leaf cache is weak: once the first query's handle drops
    // and the source has evicted the page, the second query must load
    // again. Memory stays bounded by the source's (pool) policy, not
    // by the tree.
    assert_eq!(src.loads.load(Ordering::Relaxed), 2);
}

#[test]
fn weak_cache_hits_while_source_keeps_page_resident() {
    let map = sample(5_000);
    let (lazy, src) = paged_copy(&map);
    lazy.find(&300);
    lazy.find(&300);
    // The source kept a strong handle (page still resident), so the
    // leaf's weak cache upgrades and the second query is load-free at
    // this layer too — no round-trip through the source at all would
    // need a strong per-leaf cache; one cheap re-load is the deal.
    assert!(src.loads.load(Ordering::Relaxed) <= 2);
}

#[test]
fn updates_materialize_only_the_touched_leaf() {
    let map = sample(2_000);
    let (lazy, src) = paged_copy(&map);
    let updated = lazy.insert(301, 7);
    assert_eq!(updated.find(&301), Some(7));
    assert_eq!(updated.find(&300), Some(100));
    assert_eq!(updated.len(), map.len() + 1);
    // The insert path materialized one leaf; verification reads more,
    // but the update itself stays O(path).
    assert!(src.loads.load(Ordering::Relaxed) <= 4);
    updated.check_invariants().unwrap();
}

#[test]
fn set_ops_on_lazy_trees_match_eager() {
    let a = sample(800);
    let (lazy_a, _) = paged_copy(&a);
    let b = PacMap::from_sorted_pairs(B, &(0..500u64).map(|i| (i * 5, i + 9)).collect::<Vec<_>>());
    let eager = a.union(&b);
    let from_lazy = lazy_a.union(&b);
    assert!(from_lazy.iter().eq(eager.iter()));
    from_lazy.check_invariants().unwrap();
}

#[test]
fn oversized_paged_leaf_is_rejected() {
    let src = Arc::new(VecSource {
        pages: vec![Arc::new((0..100u64).map(|i| (i, i)).collect::<Vec<_>>().into_boxed_slice())],
        loads: AtomicUsize::new(0),
        evict_always: false,
    });
    let mut fed = false;
    let res = PacMap::<u64, u64>::from_paged_stream::<()>(
        B,
        src as Arc<dyn BlockSource<Block>>,
        &mut || {
            assert!(!std::mem::replace(&mut fed, true), "should stop after one node");
            Ok(PagedNodeOwned::Leaf { page: 0, len: 100 })
        },
    );
    assert!(res.is_err());
}
