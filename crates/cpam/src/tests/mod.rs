//! Unit tests for the cpam crate internals and wrappers.

mod differential_tests;
mod lazy_tests;
mod map_tests;
mod seq_tests;
mod set_tests;
