//! Differential tests for the batch-parallel map API: randomized op
//! sequences drive `PacMap::{multi_insert_with, multi_delete, range,
//! union_with, insert_with, remove, filter}` against a `BTreeMap`
//! oracle, across the paper's block-size sweep B ∈ {1, 2, 8, 32, 128}.
//!
//! Every sequence runs through **both** API flavours in lockstep — the
//! persistent `&self` methods and the consuming `*_owned` methods — so
//! the ownership-aware in-place path is differentially checked against
//! the same oracle as the path-copying one. Snapshot pins of the
//! consuming replica are interleaved at every step and re-validated at
//! the end of the sequence: if an in-place rebuild ever touched a node
//! a pin could reach, the pin's recorded contents diverge and the seed
//! is reported.
//!
//! Every divergence panics with the exact reproducing seed
//! (`PROPTEST_SEED=<n>`), and setting that variable replays just that
//! sequence on every block size.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::PacMap;

const KEY_SPAN: u64 = 128;

fn cases() -> u64 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

fn oracle_vec(oracle: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    oracle.iter().map(|(&k, &v)| (k, v)).collect()
}

fn check(
    step: &str,
    m: &PacMap<u64, u64>,
    mc: &PacMap<u64, u64>,
    oracle: &BTreeMap<u64, u64>,
) -> Result<(), String> {
    let want = oracle_vec(oracle);
    let got = m.to_vec();
    if got != want {
        return Err(format!(
            "{step}: persistent API diverges\n  pacmap: {got:?}\n  oracle: {want:?}"
        ));
    }
    let got_c = mc.to_vec();
    if got_c != want {
        return Err(format!(
            "{step}: consuming API diverges\n  pacmap: {got_c:?}\n  oracle: {want:?}"
        ));
    }
    m.check_invariants()
        .map_err(|e| format!("{step}: persistent: {e}"))?;
    mc.check_invariants()
        .map_err(|e| format!("{step}: consuming: {e}"))
}

/// One randomized sequence over one block size: the same ops through
/// the persistent map `m` and the consuming map `mc`, with pins of `mc`
/// interleaved.
fn run_one(seed: u64, b: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m: PacMap<u64, u64> = PacMap::with_block_size(b);
    let mut mc: PacMap<u64, u64> = PacMap::with_block_size(b);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    // Pinned `(snapshot, expected contents, step)` of the consuming map.
    type Pin = (PacMap<u64, u64>, Vec<(u64, u64)>, usize);
    let mut pins: Vec<Pin> = Vec::new();

    let steps = 1 + rng.gen_range(0..8usize);
    for step in 0..steps {
        // Half the steps pin the consuming replica *before* mutating
        // it, so later in-place updates run against a shared spine.
        if rng.gen_range(0..2) == 0 {
            pins.push((mc.clone(), oracle_vec(&oracle), step));
        }
        match rng.gen_range(0..7) {
            // multi_insert_with: duplicate keys (both within the batch
            // and vs the map) combine with f — the group-by semantics.
            0 => {
                let len = rng.gen_range(0..24usize);
                let batch: Vec<(u64, u64)> = (0..len)
                    .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
                    .collect();
                for (k, v) in &batch {
                    *oracle.entry(*k).or_insert(0) += v;
                }
                m = m.multi_insert_with(batch.clone(), |old, new| old + new);
                mc = mc.multi_insert_with_owned(batch, |old, new| old + new);
                check(&format!("step {step}: multi_insert_with"), &m, &mc, &oracle)?;
            }
            // multi_delete: absent keys and duplicates must be no-ops.
            1 => {
                let len = rng.gen_range(0..16usize);
                let keys: Vec<u64> =
                    (0..len).map(|_| rng.gen_range(0..KEY_SPAN + 32)).collect();
                for k in &keys {
                    oracle.remove(k);
                }
                m = m.multi_delete(keys.clone());
                mc = mc.multi_delete_owned(keys);
                check(&format!("step {step}: multi_delete"), &m, &mc, &oracle)?;
            }
            // range: the submap [lo, hi] both as a tree and as entries.
            2 => {
                let a = rng.gen_range(0..KEY_SPAN);
                let z = rng.gen_range(0..KEY_SPAN);
                let (lo, hi) = (a.min(z), a.max(z));
                let want: Vec<(u64, u64)> =
                    oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                let sub = m.range(&lo, &hi);
                if sub.to_vec() != want {
                    return Err(format!(
                        "step {step}: range [{lo}, {hi}] diverges\n  pacmap: {:?}\n  oracle: {want:?}",
                        sub.to_vec()
                    ));
                }
                sub.check_invariants()
                    .map_err(|e| format!("step {step}: range submap: {e}"))?;
                if m.range_entries(&lo, &hi) != want {
                    return Err(format!("step {step}: range_entries [{lo}, {hi}] diverges"));
                }
            }
            // insert_with: point insert, combining on an existing key.
            3 => {
                let k = rng.gen_range(0..KEY_SPAN);
                let v = rng.gen_range(0..1_000);
                *oracle.entry(k).or_insert(0) += v;
                m = m.insert_with(k, v, |old, new| old + new);
                mc = mc.insert_with_owned(k, v, |old, new| old + new);
                check(&format!("step {step}: insert_with"), &m, &mc, &oracle)?;
            }
            // remove: point delete, possibly missing.
            4 => {
                let k = rng.gen_range(0..KEY_SPAN + 32);
                oracle.remove(&k);
                m = m.remove(&k);
                mc = mc.remove_owned(&k);
                check(&format!("step {step}: remove"), &m, &mc, &oracle)?;
            }
            // filter: drop a keyed residue class.
            5 => {
                let modulus = 2 + rng.gen_range(0..5u64);
                let keep = rng.gen_range(0..modulus);
                oracle.retain(|k, _| k % modulus != keep);
                m = m.filter(|k, _| k % modulus != keep);
                mc = mc.filter_owned(|k, _| k % modulus != keep);
                check(&format!("step {step}: filter"), &m, &mc, &oracle)?;
            }
            // union_with: merge with an independently generated map,
            // combining values on key collisions.
            _ => {
                let len = rng.gen_range(0..24usize);
                let pairs: Vec<(u64, u64)> = (0..len)
                    .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
                    .collect();
                // Binary ops require matching block sizes (asserted —
                // a property this very harness uncovered: mixed-B
                // unions share leaves across trees and silently break
                // the leaf-size invariant).
                let other: PacMap<u64, u64> = PacMap::from_pairs_with(b, pairs.clone());
                let mut other_oracle: BTreeMap<u64, u64> = BTreeMap::new();
                for (k, v) in pairs {
                    other_oracle.insert(k, v); // from_pairs: last wins
                }
                for (k, v) in other_oracle {
                    oracle
                        .entry(k)
                        .and_modify(|o| *o = o.wrapping_mul(31).wrapping_add(v))
                        .or_insert(v);
                }
                m = m.union_with(&other, |a, b| a.wrapping_mul(31).wrapping_add(*b));
                mc = mc.union_with_owned(other, |a, b| a.wrapping_mul(31).wrapping_add(*b));
                check(&format!("step {step}: union_with"), &m, &mc, &oracle)?;
            }
        }
    }
    // Every pin must still read exactly what was current when it was
    // taken: in-place reuse must never have leaked into a shared spine.
    for (pin, want, at) in &pins {
        if pin.to_vec() != *want {
            return Err(format!(
                "pin taken at step {at} was mutated by a later consuming update\n  \
                 pin:    {:?}\n  expected: {want:?}",
                pin.to_vec()
            ));
        }
        pin.check_invariants()
            .map_err(|e| format!("pin taken at step {at}: {e}"))?;
    }
    Ok(())
}

fn run_block_size(b: usize) {
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => ((b as u64).wrapping_mul(0xA076_1D64_78BD_642F), cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_one(seed, b) {
            panic!(
                "pacmap differential divergence (b={b}): {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p cpam differential"
            );
        }
    }
}

#[test]
fn differential_b1() {
    run_block_size(1);
}

#[test]
fn differential_b2() {
    run_block_size(2);
}

#[test]
fn differential_b8() {
    run_block_size(8);
}

#[test]
fn differential_b32() {
    run_block_size(32);
}

#[test]
fn differential_b128() {
    run_block_size(128);
}

/// Mixed-block-size binary ops are a loud error, not silent corruption
/// (found by this harness: the union would adopt the other tree's
/// leaves and violate the leaf-size invariant).
#[test]
#[should_panic(expected = "equal block sizes")]
fn union_with_mismatched_block_sizes_panics() {
    let a: PacMap<u64, u64> = PacMap::from_pairs_with(2, vec![(1, 1)]);
    let b: PacMap<u64, u64> = PacMap::from_pairs_with(64, (0..40).map(|i| (i, i)).collect());
    let _ = a.union(&b);
}
