//! Differential tests for the batch-parallel map API: randomized op
//! sequences drive `PacMap::{multi_insert_with, multi_delete, range,
//! union_with}` against a `BTreeMap` oracle, across the paper's
//! block-size sweep B ∈ {1, 2, 8, 32, 128}. Every divergence panics
//! with the exact reproducing seed (`PROPTEST_SEED=<n>`), and setting
//! that variable replays just that sequence on every block size.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::PacMap;

const KEY_SPAN: u64 = 128;

fn cases() -> u64 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok())
}

fn check(step: &str, m: &PacMap<u64, u64>, oracle: &BTreeMap<u64, u64>) -> Result<(), String> {
    let got = m.to_vec();
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    if got != want {
        return Err(format!(
            "{step}: contents diverge\n  pacmap: {got:?}\n  oracle: {want:?}"
        ));
    }
    m.check_invariants().map_err(|e| format!("{step}: {e}"))
}

/// One randomized sequence over one block size.
fn run_one(seed: u64, b: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m: PacMap<u64, u64> = PacMap::with_block_size(b);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();

    let steps = 1 + rng.gen_range(0..6usize);
    for step in 0..steps {
        match rng.gen_range(0..4) {
            // multi_insert_with: duplicate keys (both within the batch
            // and vs the map) combine with f — the group-by semantics.
            0 => {
                let len = rng.gen_range(0..24usize);
                let batch: Vec<(u64, u64)> = (0..len)
                    .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
                    .collect();
                for (k, v) in &batch {
                    *oracle.entry(*k).or_insert(0) += v;
                }
                m = m.multi_insert_with(batch, |old, new| old + new);
                check(&format!("step {step}: multi_insert_with"), &m, &oracle)?;
            }
            // multi_delete: absent keys and duplicates must be no-ops.
            1 => {
                let len = rng.gen_range(0..16usize);
                let keys: Vec<u64> =
                    (0..len).map(|_| rng.gen_range(0..KEY_SPAN + 32)).collect();
                for k in &keys {
                    oracle.remove(k);
                }
                m = m.multi_delete(keys);
                check(&format!("step {step}: multi_delete"), &m, &oracle)?;
            }
            // range: the submap [lo, hi] both as a tree and as entries.
            2 => {
                let a = rng.gen_range(0..KEY_SPAN);
                let z = rng.gen_range(0..KEY_SPAN);
                let (lo, hi) = (a.min(z), a.max(z));
                let want: Vec<(u64, u64)> =
                    oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                let sub = m.range(&lo, &hi);
                if sub.to_vec() != want {
                    return Err(format!(
                        "step {step}: range [{lo}, {hi}] diverges\n  pacmap: {:?}\n  oracle: {want:?}",
                        sub.to_vec()
                    ));
                }
                sub.check_invariants()
                    .map_err(|e| format!("step {step}: range submap: {e}"))?;
                if m.range_entries(&lo, &hi) != want {
                    return Err(format!("step {step}: range_entries [{lo}, {hi}] diverges"));
                }
            }
            // union_with: merge with an independently generated map,
            // combining values on key collisions.
            _ => {
                let len = rng.gen_range(0..24usize);
                let pairs: Vec<(u64, u64)> = (0..len)
                    .map(|_| (rng.gen_range(0..KEY_SPAN), rng.gen_range(0..1_000)))
                    .collect();
                // Binary ops require matching block sizes (asserted —
                // a property this very harness uncovered: mixed-B
                // unions share leaves across trees and silently break
                // the leaf-size invariant).
                let other: PacMap<u64, u64> = PacMap::from_pairs_with(b, pairs.clone());
                let mut other_oracle: BTreeMap<u64, u64> = BTreeMap::new();
                for (k, v) in pairs {
                    other_oracle.insert(k, v); // from_pairs: last wins
                }
                for (k, v) in other_oracle {
                    oracle
                        .entry(k)
                        .and_modify(|o| *o = o.wrapping_mul(31).wrapping_add(v))
                        .or_insert(v);
                }
                m = m.union_with(&other, |a, b| a.wrapping_mul(31).wrapping_add(*b));
                check(&format!("step {step}: union_with"), &m, &oracle)?;
            }
        }
    }
    Ok(())
}

fn run_block_size(b: usize) {
    let (start, n) = match env_seed() {
        Some(seed) => (seed, 1),
        None => ((b as u64).wrapping_mul(0xA076_1D64_78BD_642F), cases()),
    };
    for case in 0..n {
        let seed = start.wrapping_add(case);
        if let Err(msg) = run_one(seed, b) {
            panic!(
                "pacmap differential divergence (b={b}): {msg}\n\
                 reproduce with: PROPTEST_SEED={seed} cargo test -p cpam differential"
            );
        }
    }
}

#[test]
fn differential_b1() {
    run_block_size(1);
}

#[test]
fn differential_b2() {
    run_block_size(2);
}

#[test]
fn differential_b8() {
    run_block_size(8);
}

#[test]
fn differential_b32() {
    run_block_size(32);
}

#[test]
fn differential_b128() {
    run_block_size(128);
}

/// Mixed-block-size binary ops are a loud error, not silent corruption
/// (found by this harness: the union would adopt the other tree's
/// leaves and violate the leaf-size invariant).
#[test]
#[should_panic(expected = "equal block sizes")]
fn union_with_mismatched_block_sizes_panics() {
    let a: PacMap<u64, u64> = PacMap::from_pairs_with(2, vec![(1, 1)]);
    let b: PacMap<u64, u64> = PacMap::from_pairs_with(64, (0..40).map(|i| (i, i)).collect());
    let _ = a.union(&b);
}
