//! The `join`/`expose` layer (Fig. 5 of the paper).
//!
//! Everything above this module — union, filter, maps, sequences — is
//! written against `join`, `join2`, `split` and `expose` exactly as in
//! PAM; blocked leaves and compression are handled *only* here, which is
//! the paper's central implementation claim (Section 5).

use codecs::Codec;

use crate::aug::Augmentation;
use crate::base::{build_regular, flatten_into, from_sorted};
use crate::entry::{Element, Entry};
use crate::node::{decode_flat_into, make_flat, make_regular, size, weight, Node, Tree};
use crate::scratch::with_scratch;

/// Weight-balance factor α = 0.29 (paper default; α ≤ 1 − 1/√2).
const ALPHA_NUM: usize = 29;
const ALPHA_DEN: usize = 100;

/// True if a node with child weights `(wl, wr)` satisfies BB[α].
#[inline]
pub(crate) fn balanced(wl: usize, wr: usize) -> bool {
    let total = wl + wr;
    wl * ALPHA_DEN >= ALPHA_NUM * total && wr * ALPHA_DEN >= ALPHA_NUM * total
}

/// True if the left side is too heavy to link directly.
#[inline]
fn left_heavy(wl: usize, wr: usize) -> bool {
    wl * ALPHA_DEN > (ALPHA_DEN - ALPHA_NUM) * (wl + wr)
}

/// The `node()` smart constructor (Fig. 5): links `l`, `e`, `r` and
/// enforces the blocked-leaves invariant:
///
/// * total > 4b — plain regular node;
/// * total ≤ 2b — fold everything into one flat node;
/// * 2b < total ≤ 4b — redistribute into two half-size flat children.
pub(crate) fn node_ctor<E, A, C>(b: usize, l: Tree<E, A, C>, e: E, r: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let total = size(&l) + size(&r) + 1;
    if total > 4 * b {
        return make_regular(l, e, r);
    }
    // Folding path: flatten into a reused scratch buffer (sized once
    // from the subtree sizes), then re-encode.
    with_scratch(total, |entries| {
        flatten_into(&l, &e, &r, entries);
        if total <= 2 * b {
            return make_flat(entries);
        }
        // 2b < total <= 4b: both halves land in [b, 2b].
        let mid = total / 2;
        make_regular(
            make_flat(&entries[..mid]),
            entries[mid].clone(),
            make_flat(&entries[mid + 1..]),
        )
    })
}

/// `expose` (Fig. 5): splits a nonempty tree into `(left, entry, right)`.
///
/// Regular nodes hand back their fields; flat nodes are *unfolded* into a
/// perfectly balanced expanded form first (`O(B)` work).
pub(crate) fn expose<E, A, C>(t: &Node<E, A, C>) -> (Tree<E, A, C>, E, Tree<E, A, C>)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    match t {
        Node::Regular {
            left, entry, right, ..
        } => (left.clone(), entry.clone(), right.clone()),
        Node::Flat { .. } => with_scratch(t.size(), |entries| {
            decode_flat_into(t, entries);
            let mid = entries.len() / 2;
            let l = build_regular::<E, A, C>(&entries[..mid]);
            let r = build_regular::<E, A, C>(&entries[mid + 1..]);
            (l, entries[mid].clone(), r)
        }),
    }
}

/// `join` (Fig. 5): concatenates `l ++ [e] ++ r` into a balanced PaC-tree.
///
/// `O(B + log(n/m))` work where `n`, `m` are the larger/smaller sizes
/// (Theorem 6.1).
pub(crate) fn join<E, A, C>(b: usize, l: Tree<E, A, C>, e: E, r: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let (wl, wr) = (weight(&l), weight(&r));
    if left_heavy(wl, wr) {
        join_right(b, l, e, r)
    } else if left_heavy(wr, wl) {
        join_left(b, l, e, r)
    } else {
        node_ctor(b, l, e, r)
    }
}

fn join_right<E, A, C>(b: usize, tl: Tree<E, A, C>, e: E, tr: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    if balanced(weight(&tl), weight(&tr)) {
        return node_ctor(b, tl, e, tr);
    }
    // tl is strictly heavier, hence nonempty.
    let node = tl.expect("join_right: heavy side empty");
    let (l, k2, c) = expose(&node);
    drop(node);
    let t2 = join_right(b, c, e, tr);
    if balanced(weight(&l), weight(&t2)) {
        return node_ctor(b, l, k2, t2);
    }
    let t2node = t2.expect("join_right: joined tree empty");
    let (l1, k1, r1) = expose(&t2node);
    drop(t2node);
    if balanced(weight(&l), weight(&l1)) && balanced(weight(&l) + weight(&l1), weight(&r1)) {
        // Single left rotation.
        node_ctor(b, node_ctor(b, l, k2, l1), k1, r1)
    } else {
        // Double rotation: rotate `l1` right, then left.
        let l1node = l1.expect("join_right: rotation pivot empty");
        let (l2, k3, r2) = expose(&l1node);
        drop(l1node);
        node_ctor(b, node_ctor(b, l, k2, l2), k3, node_ctor(b, r2, k1, r1))
    }
}

fn join_left<E, A, C>(b: usize, tl: Tree<E, A, C>, e: E, tr: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    if balanced(weight(&tl), weight(&tr)) {
        return node_ctor(b, tl, e, tr);
    }
    let node = tr.expect("join_left: heavy side empty");
    let (c, k2, r) = expose(&node);
    drop(node);
    let t2 = join_left(b, tl, e, c);
    if balanced(weight(&t2), weight(&r)) {
        return node_ctor(b, t2, k2, r);
    }
    let t2node = t2.expect("join_left: joined tree empty");
    let (l1, k1, r1) = expose(&t2node);
    drop(t2node);
    if balanced(weight(&r1), weight(&r)) && balanced(weight(&r1) + weight(&r), weight(&l1)) {
        // Single right rotation.
        node_ctor(b, l1, k1, node_ctor(b, r1, k2, r))
    } else {
        // Double rotation: rotate `r1` left, then right.
        let r1node = r1.expect("join_left: rotation pivot empty");
        let (l2, k3, r2) = expose(&r1node);
        drop(r1node);
        node_ctor(b, node_ctor(b, l1, k1, l2), k3, node_ctor(b, r2, k2, r))
    }
}

/// Removes and returns the last entry (`splitLast` in Fig. 10).
pub(crate) fn split_last<E, A, C>(b: usize, t: Tree<E, A, C>) -> (Tree<E, A, C>, E)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let node = t.expect("split_last on empty tree");
    match &*node {
        Node::Flat { .. } => with_scratch(node.size(), |entries| {
            decode_flat_into(&node, entries);
            let (last, rest) = entries.split_last().expect("flat node is never empty");
            (from_sorted(b, rest), last.clone())
        }),
        Node::Regular {
            left, entry, right, ..
        } => {
            if right.is_none() {
                (left.clone(), entry.clone())
            } else {
                let (r2, last) = split_last(b, right.clone());
                (join(b, left.clone(), entry.clone(), r2), last)
            }
        }
    }
}

/// Concatenates two trees with no middle entry (`join2`, Fig. 10).
pub(crate) fn join2<E, A, C>(b: usize, l: Tree<E, A, C>, r: Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    match l {
        None => r,
        Some(_) => {
            let (l2, last) = split_last(b, l);
            join(b, l2, last, r)
        }
    }
}

/// `split` (Fig. 5): partitions `t` by key `k` into entries strictly
/// before, the entry with key `k` (if present), and entries strictly
/// after. `O(B + log(|T|/B))` work on complex trees (Theorem 6.2).
pub(crate) fn split<E, A, C>(
    b: usize,
    t: &Tree<E, A, C>,
    k: &E::Key,
) -> (Tree<E, A, C>, Option<E>, Tree<E, A, C>)
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else {
        return (None, None, None);
    };
    match &**node {
        Node::Flat { .. } => {
            // Efficient base case: decode into scratch, binary-search,
            // and rebuild both sides as packed trees.
            with_scratch(node.size(), |entries: &mut Vec<E>| {
                decode_flat_into(node, entries);
                match entries.binary_search_by(|e| e.key().cmp(k)) {
                    Ok(i) => (
                        from_sorted(b, &entries[..i]),
                        Some(entries[i].clone()),
                        from_sorted(b, &entries[i + 1..]),
                    ),
                    Err(i) => (
                        from_sorted(b, &entries[..i]),
                        None,
                        from_sorted(b, &entries[i..]),
                    ),
                }
            })
        }
        Node::Regular {
            left, entry, right, ..
        } => match k.cmp(entry.key()) {
            std::cmp::Ordering::Equal => (left.clone(), Some(entry.clone()), right.clone()),
            std::cmp::Ordering::Less => {
                let (ll, m, lr) = split(b, left, k);
                (ll, m, join(b, lr, entry.clone(), right.clone()))
            }
            std::cmp::Ordering::Greater => {
                let (rl, m, rr) = split(b, right, k);
                (join(b, left.clone(), entry.clone(), rl), m, rr)
            }
        },
    }
}

/// Splits by position: left tree gets the first `i` entries.
pub(crate) fn split_at<E, A, C>(
    b: usize,
    t: &Tree<E, A, C>,
    i: usize,
) -> (Tree<E, A, C>, Tree<E, A, C>)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else {
        return (None, None);
    };
    if i == 0 {
        return (None, t.clone());
    }
    if i >= node.size() {
        return (t.clone(), None);
    }
    match &**node {
        Node::Flat { .. } => with_scratch(node.size(), |entries: &mut Vec<E>| {
            decode_flat_into(node, entries);
            (from_sorted(b, &entries[..i]), from_sorted(b, &entries[i..]))
        }),
        Node::Regular {
            left, entry, right, ..
        } => {
            let lsize = size(left);
            if i <= lsize {
                let (a, c) = split_at(b, left, i);
                (a, join(b, c, entry.clone(), right.clone()))
            } else if i == lsize + 1 {
                (join(b, left.clone(), entry.clone(), None), right.clone())
            } else {
                let (a, c) = split_at(b, right, i - lsize - 1);
                (join(b, left.clone(), entry.clone(), a), c)
            }
        }
    }
}
