//! The `join`/`expose` layer (Fig. 5 of the paper).
//!
//! Everything above this module — union, filter, maps, sequences — is
//! written against `join`, `join2`, `split` and `expose` exactly as in
//! PAM; blocked leaves and compression are handled *only* here, which is
//! the paper's central implementation claim (Section 5).
//!
//! # Ownership threading
//!
//! Every primitive here consumes its tree arguments. Where the old
//! code borrowed a node and cloned its children (bumping refcounts down
//! the whole spine, which forces the copying path everywhere below), the
//! consuming code *moves* children out of uniquely-owned nodes with
//! [`expose_owned`] and hands the emptied node — its **husk** — to the
//! rebuild site, where [`crate::node::reuse_regular`] /
//! [`crate::node::reuse_flat`] overwrite it in place. A shared node
//! (refcount > 1: some snapshot still reaches it) takes the classic
//! path-copying route instead, so persistence semantics are untouched —
//! the refcount check *is* the safety proof, per node, at the moment of
//! the rebuild.

use codecs::Codec;

use crate::aug::Augmentation;
use crate::base::{build_regular, flatten_into, from_sorted, rebuild_leaf};
use crate::entry::{Element, Entry};
use crate::node::{decode_flat_into, make_flat, reuse_regular, reuse_flat, size, weight, Node, Tree};
use crate::scratch::with_scratch;

/// Weight-balance factor α = 0.29 (paper default; α ≤ 1 − 1/√2).
const ALPHA_NUM: usize = 29;
const ALPHA_DEN: usize = 100;

/// True if a node with child weights `(wl, wr)` satisfies BB[α].
#[inline]
pub(crate) fn balanced(wl: usize, wr: usize) -> bool {
    let total = wl + wr;
    wl * ALPHA_DEN >= ALPHA_NUM * total && wr * ALPHA_DEN >= ALPHA_NUM * total
}

/// True if the left side is too heavy to link directly.
#[inline]
fn left_heavy(wl: usize, wr: usize) -> bool {
    wl * ALPHA_DEN > (ALPHA_DEN - ALPHA_NUM) * (wl + wr)
}

/// The `node()` smart constructor (Fig. 5): links `l`, `e`, `r` and
/// enforces the blocked-leaves invariant:
///
/// * total > 4b — plain regular node;
/// * total ≤ 2b — fold everything into one flat node;
/// * 2b < total ≤ 4b — redistribute into two half-size flat children.
///
/// `src` is the husk of the node this rebuild replaces (or `None` when
/// the caller does not own one); a uniquely-owned husk is overwritten in
/// place instead of allocating.
pub(crate) fn node_ctor<E, A, C>(
    b: usize,
    src: Tree<E, A, C>,
    l: Tree<E, A, C>,
    e: E,
    r: Tree<E, A, C>,
) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let total = size(&l) + size(&r) + 1;
    if total > 4 * b {
        return reuse_regular(src, l, e, r);
    }
    // Folding path: flatten into a reused scratch buffer (sized once
    // from the subtree sizes), then re-encode.
    with_scratch(total, |entries| {
        flatten_into(&l, &e, &r, entries);
        drop((l, r));
        if total <= 2 * b {
            return reuse_flat(src, entries);
        }
        // 2b < total <= 4b: both halves land in [b, 2b].
        let mid = total / 2;
        reuse_regular(
            src,
            make_flat(&entries[..mid]),
            entries[mid].clone(),
            make_flat(&entries[mid + 1..]),
        )
    })
}

/// `expose` (Fig. 5): splits a nonempty tree into `(left, entry, right)`.
///
/// Regular nodes hand back their fields; flat nodes are *unfolded* into a
/// perfectly balanced expanded form first (`O(B)` work).
pub(crate) fn expose<E, A, C>(t: &Node<E, A, C>) -> (Tree<E, A, C>, E, Tree<E, A, C>)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    match t {
        Node::Regular {
            left, entry, right, ..
        } => (left.clone(), entry.clone(), right.clone()),
        _ => with_scratch(t.size(), |entries| {
            decode_flat_into(t, entries);
            let mid = entries.len() / 2;
            let l = build_regular::<E, A, C>(&entries[..mid]);
            let r = build_regular::<E, A, C>(&entries[mid + 1..]);
            (l, entries[mid].clone(), r)
        }),
    }
}

/// What [`expose_owned`] yields: `(left, entry, right, husk)`.
pub(crate) type Exposed<E, A, C> = (Tree<E, A, C>, E, Tree<E, A, C>, Tree<E, A, C>);

/// What [`split`] yields: `(before, entry at the key, after)`.
pub(crate) type Split<E, A, C> = (Tree<E, A, C>, Option<E>, Tree<E, A, C>);

/// Consuming `expose`: `(left, entry, right, husk)`.
///
/// On a uniquely-owned regular node the children are *moved* out (no
/// refcount traffic, so ownership stays provable all the way down) and
/// the emptied node is returned as the `husk` for the rebuild site to
/// reuse. A shared node falls back to the cloning [`expose`] with no
/// husk; a uniquely-owned flat node unfolds but still donates its
/// allocation as the husk.
pub(crate) fn expose_owned<E, A, C>(t: Tree<E, A, C>) -> Exposed<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut arc = t.expect("expose_owned on empty tree");
    if let Some(Node::Regular {
        left, entry, right, ..
    }) = std::sync::Arc::get_mut(&mut arc)
    {
        let (l, e, r) = (left.take(), entry.clone(), right.take());
        return (l, e, r, Some(arc));
    }
    let unique = std::sync::Arc::get_mut(&mut arc).is_some();
    let (l, e, r) = expose(&arc);
    (l, e, r, unique.then_some(arc))
}

/// `join` (Fig. 5): concatenates `l ++ [e] ++ r` into a balanced
/// PaC-tree, reusing the husk `src` for the linking node when owned.
///
/// `O(B + log(n/m))` work where `n`, `m` are the larger/smaller sizes
/// (Theorem 6.1).
pub(crate) fn join<E, A, C>(
    b: usize,
    src: Tree<E, A, C>,
    l: Tree<E, A, C>,
    e: E,
    r: Tree<E, A, C>,
) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let (wl, wr) = (weight(&l), weight(&r));
    if left_heavy(wl, wr) {
        join_right(b, src, l, e, r)
    } else if left_heavy(wr, wl) {
        join_left(b, src, l, e, r)
    } else {
        node_ctor(b, src, l, e, r)
    }
}

fn join_right<E, A, C>(
    b: usize,
    spare: Tree<E, A, C>,
    tl: Tree<E, A, C>,
    e: E,
    tr: Tree<E, A, C>,
) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    if balanced(weight(&tl), weight(&tr)) {
        return node_ctor(b, spare, tl, e, tr);
    }
    // tl is strictly heavier, hence nonempty.
    let (l, k2, c, husk) = expose_owned(tl);
    // The spare travels down to where the new linking node is built;
    // each rebuilt node on the way back up pairs with the husk of the
    // node it replaces.
    let t2 = join_right(b, spare, c, e, tr);
    if balanced(weight(&l), weight(&t2)) {
        return node_ctor(b, husk, l, k2, t2);
    }
    let (l1, k1, r1, husk2) = expose_owned(t2);
    if balanced(weight(&l), weight(&l1)) && balanced(weight(&l) + weight(&l1), weight(&r1)) {
        // Single left rotation.
        node_ctor(b, husk2, node_ctor(b, husk, l, k2, l1), k1, r1)
    } else {
        // Double rotation: rotate `l1` right, then left.
        let (l2, k3, r2, husk3) = expose_owned(l1);
        node_ctor(
            b,
            husk3,
            node_ctor(b, husk, l, k2, l2),
            k3,
            node_ctor(b, husk2, r2, k1, r1),
        )
    }
}

fn join_left<E, A, C>(
    b: usize,
    spare: Tree<E, A, C>,
    tl: Tree<E, A, C>,
    e: E,
    tr: Tree<E, A, C>,
) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    if balanced(weight(&tl), weight(&tr)) {
        return node_ctor(b, spare, tl, e, tr);
    }
    let (c, k2, r, husk) = expose_owned(tr);
    let t2 = join_left(b, spare, tl, e, c);
    if balanced(weight(&t2), weight(&r)) {
        return node_ctor(b, husk, t2, k2, r);
    }
    let (l1, k1, r1, husk2) = expose_owned(t2);
    if balanced(weight(&r1), weight(&r)) && balanced(weight(&r1) + weight(&r), weight(&l1)) {
        // Single right rotation.
        node_ctor(b, husk2, l1, k1, node_ctor(b, husk, r1, k2, r))
    } else {
        // Double rotation: rotate `r1` left, then right.
        let (l2, k3, r2, husk3) = expose_owned(r1);
        node_ctor(
            b,
            husk3,
            node_ctor(b, husk2, l1, k1, l2),
            k3,
            node_ctor(b, husk, r2, k2, r),
        )
    }
}

/// Removes and returns the last entry (`splitLast` in Fig. 10).
pub(crate) fn split_last<E, A, C>(b: usize, t: Tree<E, A, C>) -> (Tree<E, A, C>, E)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let node = t.expect("split_last on empty tree");
    if node.is_flat() {
        return with_scratch(node.size(), |entries: &mut Vec<E>| {
            decode_flat_into(&node, entries);
            let last = entries.pop().expect("flat node is never empty");
            (rebuild_leaf(b, Some(node), entries), last)
        });
    }
    let (left, entry, right, husk) = expose_owned(Some(node));
    if right.is_none() {
        (left, entry)
    } else {
        let (r2, last) = split_last(b, right);
        (join(b, husk, left, entry, r2), last)
    }
}

/// Concatenates two trees with no middle entry (`join2`, Fig. 10),
/// reusing the husk `spare` when owned.
pub(crate) fn join2<E, A, C>(
    b: usize,
    spare: Tree<E, A, C>,
    l: Tree<E, A, C>,
    r: Tree<E, A, C>,
) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    match l {
        None => r,
        Some(_) => {
            let (l2, last) = split_last(b, l);
            join(b, spare, l2, last, r)
        }
    }
}

/// `split` (Fig. 5): partitions `t` by key `k` into entries strictly
/// before, the entry with key `k` (if present), and entries strictly
/// after. `O(B + log(|T|/B))` work on complex trees (Theorem 6.2).
pub(crate) fn split<E, A, C>(b: usize, t: Tree<E, A, C>, k: &E::Key) -> Split<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else {
        return (None, None, None);
    };
    if node.is_flat() {
        // Efficient base case: decode into scratch, binary-search,
        // and rebuild both sides as packed trees.
        return with_scratch(node.size(), |entries: &mut Vec<E>| {
            decode_flat_into(&node, entries);
            match entries.binary_search_by(|e| e.key().cmp(k)) {
                Ok(i) => (
                    from_sorted(b, &entries[..i]),
                    Some(entries[i].clone()),
                    from_sorted(b, &entries[i + 1..]),
                ),
                Err(i) => (
                    from_sorted(b, &entries[..i]),
                    None,
                    from_sorted(b, &entries[i..]),
                ),
            }
        });
    }
    let (left, entry, right, husk) = expose_owned(Some(node));
    match k.cmp(entry.key()) {
        std::cmp::Ordering::Equal => (left, Some(entry), right),
        std::cmp::Ordering::Less => {
            let (ll, m, lr) = split(b, left, k);
            (ll, m, join(b, husk, lr, entry, right))
        }
        std::cmp::Ordering::Greater => {
            let (rl, m, rr) = split(b, right, k);
            (join(b, husk, left, entry, rl), m, rr)
        }
    }
}

/// Splits by position: left tree gets the first `i` entries.
pub(crate) fn split_at<E, A, C>(
    b: usize,
    t: Tree<E, A, C>,
    i: usize,
) -> (Tree<E, A, C>, Tree<E, A, C>)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else {
        return (None, None);
    };
    if i == 0 {
        return (None, Some(node));
    }
    if i >= node.size() {
        return (Some(node), None);
    }
    if node.is_flat() {
        return with_scratch(node.size(), |entries: &mut Vec<E>| {
            decode_flat_into(&node, entries);
            (from_sorted(b, &entries[..i]), from_sorted(b, &entries[i..]))
        });
    }
    let (left, entry, right, husk) = expose_owned(Some(node));
    let lsize = size(&left);
    if i <= lsize {
        let (a, c) = split_at(b, left, i);
        (a, join(b, husk, c, entry, right))
    } else if i == lsize + 1 {
        (join(b, husk, left, entry, None), right)
    } else {
        let (a, c) = split_at(b, right, i - lsize - 1);
        (join(b, husk, left, entry, a), c)
    }
}
