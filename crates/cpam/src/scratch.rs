//! Reusable per-thread decode buffers for the base cases that genuinely
//! need a materialized entry slice (setops merges, `join`'s `node()`
//! fold, `split`, `expose`).
//!
//! These paths decode whole (small) subtrees before re-encoding them; a
//! fresh `Vec` per node made every flat-node touch a heap allocation.
//! [`with_scratch`] hands out a thread-local buffer instead: the first
//! use on a thread allocates, every later use on that thread reuses the
//! grown capacity, so steady-state base cases are allocation-free.
//!
//! Buffers are pooled per entry type (the pool is keyed by `TypeId`) and
//! per thread; nested uses of the same type — e.g. a setops base case
//! flattening both inputs — pop distinct buffers off a small stack, so
//! reentrancy is safe. Buffers are cleared before reuse and before being
//! returned, so no entry outlives its `with_scratch` call.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// Per-thread pool: for each entry type, a stack of cleared buffers.
    static POOL: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> = RefCell::new(HashMap::new());
}

/// Largest buffer (in bytes of capacity) the pool keeps. The steady-state
/// users are base cases bounded by `O(κ·b)` entries, far below this; an
/// outlier — e.g. `multi_insert` of a huge batch into a small tree, whose
/// base case flattens the whole merge — gets its buffer freed on return
/// instead of parking tens of megabytes on the thread forever.
const MAX_POOLED_BYTES: usize = 1 << 20;

/// Runs `f` with a cleared scratch buffer of capacity at least
/// `min_capacity`, recycling it afterwards. The result must not borrow
/// the buffer (entries are cleared on return).
pub(crate) fn with_scratch<E: 'static, R>(
    min_capacity: usize,
    f: impl FnOnce(&mut Vec<E>) -> R,
) -> R {
    let mut buf: Vec<E> = POOL
        .with(|pool| {
            pool.borrow_mut()
                .get_mut(&TypeId::of::<E>())
                .and_then(|stack| stack.pop())
        })
        .map(|boxed| *boxed.downcast::<Vec<E>>().expect("pool keyed by TypeId"))
        .unwrap_or_default();
    buf.reserve(min_capacity);
    let r = f(&mut buf);
    buf.clear();
    if buf.capacity().saturating_mul(std::mem::size_of::<E>()) <= MAX_POOLED_BYTES {
        POOL.with(|pool| {
            pool.borrow_mut()
                .entry(TypeId::of::<E>())
                .or_default()
                .push(Box::new(buf));
        });
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_capacity_across_calls() {
        let cap_first = with_scratch::<u64, _>(1000, |buf| {
            buf.extend(0..1000u64);
            buf.capacity()
        });
        // Second call on this thread gets the same (cleared) buffer back.
        let (len, cap) = with_scratch::<u64, _>(0, |buf| (buf.len(), buf.capacity()));
        assert_eq!(len, 0);
        assert!(cap >= cap_first);
    }

    #[test]
    fn nested_same_type_uses_distinct_buffers() {
        with_scratch::<u64, _>(4, |outer| {
            outer.push(1);
            with_scratch::<u64, _>(4, |inner| {
                inner.push(2);
                assert_eq!(outer.len(), 1);
                assert_eq!(inner.len(), 1);
            });
            assert_eq!(outer, &vec![1]);
        });
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let huge = MAX_POOLED_BYTES / std::mem::size_of::<u64>() + 1;
        with_scratch::<u64, _>(huge, |buf| assert!(buf.capacity() >= huge));
        // The next buffer handed out is a fresh (or small pooled) one,
        // not the oversized outlier.
        with_scratch::<u64, _>(0, |buf| {
            assert!(buf.capacity() * std::mem::size_of::<u64>() <= MAX_POOLED_BYTES);
        });
    }

    #[test]
    fn distinct_types_coexist() {
        with_scratch::<u64, _>(1, |a| {
            a.push(7);
            with_scratch::<(u64, String), _>(1, |b| {
                b.push((1, "x".into()));
                assert_eq!(a[0], 7);
            });
        });
    }
}
