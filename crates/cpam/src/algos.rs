//! Point operations, range queries, and bulk functional operations
//! (Figs. 6 and 8 of the paper, plus the augmented-query primitives the
//! applications in Section 9 are built on).
//!
//! Flat-node base cases go through the codec's zero-allocation access
//! layer ([`codecs::Codec::search_by`] / [`codecs::Codec::get`] /
//! cursors): point queries and range walks never materialize a block,
//! and the structural base cases that do need every entry decode into a
//! reused [`crate::scratch`] buffer instead of a fresh `Vec` per node.

use codecs::{BlockCursor, Codec};

use crate::aug::Augmentation;
use crate::base::{from_sorted, rebuild_leaf, to_vec};
use crate::entry::{Element, Entry};
use crate::join::{expose_owned, join, join2, split};
use crate::node::{size, Node, Tree};
use crate::scratch::with_scratch;
use crate::stats;

use crate::grain::{par_grain, walk_grain};

/// Looks up the entry with key `k`. `O(log n + B)` work, allocation-free
/// (the flat base case is a sampled in-block search, not a decode).
pub(crate) fn find<E, A, C>(t: &Tree<E, A, C>, k: &E::Key) -> Option<E>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut cur = t;
    loop {
        let node = cur.as_ref()?;
        match &**node {
            Node::Regular {
                left, entry, right, ..
            } => match k.cmp(entry.key()) {
                std::cmp::Ordering::Equal => return Some(entry.clone()),
                std::cmp::Ordering::Less => cur = left,
                std::cmp::Ordering::Greater => cur = right,
            },
            leaf => {
                stats::count_cursor_op();
                let block = leaf.leaf_block();
                return C::search_by(&block, |e| e.key().cmp(k)).ok().map(|(_, e)| e);
            }
        }
    }
}

/// Inserts one entry; `f(old, new)` combines with an existing entry.
/// `O(log n + B)` work. Consumes the tree: every uniquely-owned node on
/// the root-to-leaf path is rebuilt in place; shared nodes (and
/// everything below the first shared node reached through them) are
/// path-copied as before.
pub(crate) fn insert<E, A, C, F>(b: usize, t: Tree<E, A, C>, e: E, f: &F) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E, &E) -> E,
{
    let Some(node) = t else {
        return from_sorted(b, std::slice::from_ref(&e));
    };
    if node.is_flat() {
        // Merge the new entry in one cursor pass over the block —
        // no decode-then-`Vec::insert` shuffle — into a scratch
        // buffer that is re-encoded into the node's own allocation
        // when we hold the only reference.
        stats::count_cursor_op();
        return with_scratch(node.size() + 1, |out: &mut Vec<E>| {
            {
                let block = node.leaf_block();
                let mut cur = C::cursor(&block);
                let mut pending = Some(e);
                while let Some(x) = cur.peek() {
                    if let Some(new) = pending.take() {
                        match x.key().cmp(new.key()) {
                            std::cmp::Ordering::Less => pending = Some(new),
                            std::cmp::Ordering::Equal => {
                                out.push(f(x, &new));
                                cur.advance();
                                continue;
                            }
                            std::cmp::Ordering::Greater => {
                                out.push(new);
                            }
                        }
                    }
                    out.push(x.clone());
                    cur.advance();
                }
                if let Some(new) = pending {
                    out.push(new);
                }
            }
            rebuild_leaf(b, Some(node), out)
        });
    }
    let (left, entry, right, husk) = expose_owned(Some(node));
    match e.key().cmp(entry.key()) {
        std::cmp::Ordering::Equal => join(b, husk, left, f(&entry, &e), right),
        std::cmp::Ordering::Less => join(b, husk, insert(b, left, e, f), entry, right),
        std::cmp::Ordering::Greater => join(b, husk, left, entry, insert(b, right, e, f)),
    }
}

/// Removes the entry with key `k`, if present. `O(log n + B)` work; a
/// miss is allocation-free (the block is probed with a cursor search and
/// the unchanged tree is returned as-is). Consumes the tree like
/// [`insert`].
pub(crate) fn remove<E, A, C>(b: usize, t: Tree<E, A, C>, k: &E::Key) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let node = t?;
    if node.is_flat() {
        stats::count_cursor_op();
        let hit = {
            let block = node.leaf_block();
            match C::search_by(&block, |x| x.key().cmp(k)) {
                Ok((hit, _)) => hit,
                // Miss: nothing to rebuild, keep the node as-is.
                Err(_) => return Some(node),
            }
        };
        return with_scratch(node.size(), |out: &mut Vec<E>| {
            {
                let block = node.leaf_block();
                let mut cur = C::cursor(&block);
                let mut i = 0;
                while let Some(x) = cur.peek() {
                    if i != hit {
                        out.push(x.clone());
                    }
                    i += 1;
                    cur.advance();
                }
            }
            rebuild_leaf(b, Some(node), out)
        });
    }
    let (left, entry, right, husk) = expose_owned(Some(node));
    match k.cmp(entry.key()) {
        std::cmp::Ordering::Equal => join2(b, husk, left, right),
        std::cmp::Ordering::Less => join(b, husk, remove(b, left, k), entry, right),
        std::cmp::Ordering::Greater => join(b, husk, left, entry, remove(b, right, k)),
    }
}

/// Number of entries with keys strictly less than `k` (the paper's Rank).
pub(crate) fn rank<E, A, C>(t: &Tree<E, A, C>, k: &E::Key) -> usize
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut acc = 0;
    let mut cur = t;
    loop {
        let Some(node) = cur else { return acc };
        match &**node {
            Node::Regular {
                left, entry, right, ..
            } => match k.cmp(entry.key()) {
                std::cmp::Ordering::Less | std::cmp::Ordering::Equal => cur = left,
                std::cmp::Ordering::Greater => {
                    acc += size(left) + 1;
                    cur = right;
                }
            },
            leaf => {
                stats::count_cursor_op();
                // Both outcomes of the sampled search give the number of
                // keys strictly below `k` (keys are unique).
                let block = leaf.leaf_block();
                return acc
                    + match C::search_by(&block, |e| e.key().cmp(k)) {
                        Ok((i, _)) | Err(i) => i,
                    };
            }
        }
    }
}

/// The entry at in-order position `i` (the paper's `n-th`/Select).
/// `O(log n + B)` work — contrast with `O(1)` array indexing in Fig. 2.
pub(crate) fn select<E, A, C>(t: &Tree<E, A, C>, i: usize) -> Option<E>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut cur = t;
    let mut i = i;
    loop {
        let node = cur.as_ref()?;
        if i >= node.size() {
            return None;
        }
        match &**node {
            Node::Regular {
                left, entry, right, ..
            } => {
                let lsize = size(left);
                match i.cmp(&lsize) {
                    std::cmp::Ordering::Less => cur = left,
                    std::cmp::Ordering::Equal => return Some(entry.clone()),
                    std::cmp::Ordering::Greater => {
                        i -= lsize + 1;
                        cur = right;
                    }
                }
            }
            leaf => {
                stats::count_cursor_op();
                let block = leaf.leaf_block();
                return Some(C::get(&block, i));
            }
        }
    }
}

/// Smallest entry with key `>= k` (the paper's Next, inclusive flavour).
pub(crate) fn succ<E, A, C>(t: &Tree<E, A, C>, k: &E::Key) -> Option<E>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut best: Option<E> = None;
    let mut cur = t;
    loop {
        let Some(node) = cur else { return best };
        match &**node {
            Node::Regular {
                left, entry, right, ..
            } => {
                if entry.key() >= k {
                    best = Some(entry.clone());
                    cur = left;
                } else {
                    cur = right;
                }
            }
            leaf => {
                stats::count_cursor_op();
                let block = leaf.leaf_block();
                return match C::search_by(&block, |e| e.key().cmp(k)) {
                    Ok((_, e)) => Some(e),
                    Err(i) if i < C::len(&block) => {
                        stats::count_cursor_op();
                        Some(C::get(&block, i))
                    }
                    Err(_) => best,
                };
            }
        }
    }
}

/// Largest entry with key `<= k` (the paper's Previous, inclusive).
pub(crate) fn pred<E, A, C>(t: &Tree<E, A, C>, k: &E::Key) -> Option<E>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut best: Option<E> = None;
    let mut cur = t;
    loop {
        let Some(node) = cur else { return best };
        match &**node {
            Node::Regular {
                left, entry, right, ..
            } => {
                if entry.key() <= k {
                    best = Some(entry.clone());
                    cur = right;
                } else {
                    cur = left;
                }
            }
            leaf => {
                stats::count_cursor_op();
                let block = leaf.leaf_block();
                return match C::search_by(&block, |e| e.key().cmp(k)) {
                    Ok((_, e)) => Some(e),
                    Err(i) if i > 0 => {
                        stats::count_cursor_op();
                        Some(C::get(&block, i - 1))
                    }
                    Err(_) => best,
                };
            }
        }
    }
}

/// The subtree of entries with keys in `[lo, hi]` (the paper's Range).
/// `O(log n + B)` work.
pub(crate) fn range<E, A, C>(b: usize, t: Tree<E, A, C>, lo: &E::Key, hi: &E::Key) -> Tree<E, A, C>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let (_, m_lo, ge_lo) = split(b, t, lo);
    let (mid, m_hi, _) = split(b, ge_lo, hi);
    let mut out = mid;
    if let Some(e) = m_hi {
        out = join(b, None, out, e, None);
    }
    if let Some(e) = m_lo {
        out = join(b, None, None, e, out);
    }
    out
}

/// One piece of a canonical range decomposition: either the aggregate of
/// a maximal subtree fully inside the range, or a boundary entry.
pub(crate) enum Part<'a, E, AV> {
    /// Aggregate of a subtree entirely contained in the range.
    Aug(&'a AV),
    /// A single boundary entry inside the range.
    Entry(&'a E),
}

/// The callback a range decomposition feeds its [`Part`]s to.
pub(crate) type PartSink<'f, E, AV> = dyn for<'a> FnMut(Part<'a, E, AV>) + 'f;

/// Canonical range decomposition of `[lo, hi]` (inclusive): calls `f`
/// with the aggregate of each maximal subtree entirely inside the range
/// and with each of the `O(log n + B)` boundary entries.
///
/// This powers `aug_range` and the 2D range tree's count query without
/// materializing the range or combining heavyweight augmented values.
pub(crate) fn range_decompose<E, A, C>(
    t: &Tree<E, A, C>,
    lo: &E::Key,
    hi: &E::Key,
    f: &mut PartSink<'_, E, A::Value>,
) where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    // Invariant: only called on subtrees that may intersect [lo, hi].
    let Some(node) = t else { return };
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            let k = entry.key();
            if k < lo {
                range_decompose(right, lo, hi, f);
            } else if k > hi {
                range_decompose(left, lo, hi, f);
            } else {
                descend_ge(left, lo, f);
                f(Part::Entry(entry));
                descend_le(right, hi, f);
            }
        }
        leaf => {
            // Whole-block containment check via the first/last entries
            // (both O(RESTART_INTERVAL) point gets, no decode).
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            let first = C::get(&block, 0);
            let last = C::get(&block, C::len(&block) - 1);
            if first.key() >= lo && last.key() <= hi {
                f(Part::Aug(leaf.aug()));
            } else {
                // Seek to the first in-range entry, stream until past hi.
                let start = match C::search_by(&block, |e| e.key().cmp(lo)) {
                    Ok((i, _)) | Err(i) => i,
                };
                let mut cur = C::cursor_at(&block, start);
                while let Some(e) = cur.peek() {
                    if e.key() > hi {
                        break;
                    }
                    f(Part::Entry(e));
                    cur.advance();
                }
            }
        }
    }
}

/// Contributes everything with key >= `lo` from `t`.
fn descend_ge<E, A, C>(
    t: &Tree<E, A, C>,
    lo: &E::Key,
    f: &mut PartSink<'_, E, A::Value>,
) where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return };
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            if entry.key() >= lo {
                f(Part::Entry(entry));
                on_aug_whole(right, f);
                descend_ge(left, lo, f);
            } else {
                descend_ge(right, lo, f);
            }
        }
        leaf => {
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            if C::get(&block, 0).key() >= lo {
                f(Part::Aug(leaf.aug()));
            } else {
                let start = match C::search_by(&block, |e| e.key().cmp(lo)) {
                    Ok((i, _)) | Err(i) => i,
                };
                let mut cur = C::cursor_at(&block, start);
                while let Some(e) = cur.peek() {
                    f(Part::Entry(e));
                    cur.advance();
                }
            }
        }
    }
}

/// Contributes everything with key <= `hi` from `t`.
fn descend_le<E, A, C>(
    t: &Tree<E, A, C>,
    hi: &E::Key,
    f: &mut PartSink<'_, E, A::Value>,
) where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return };
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            if entry.key() <= hi {
                on_aug_whole(left, f);
                f(Part::Entry(entry));
                descend_le(right, hi, f);
            } else {
                descend_le(left, hi, f);
            }
        }
        leaf => {
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            if C::get(&block, C::len(&block) - 1).key() <= hi {
                f(Part::Aug(leaf.aug()));
            } else {
                let mut cur = C::cursor(&block);
                while let Some(e) = cur.peek() {
                    if e.key() > hi {
                        break;
                    }
                    f(Part::Entry(e));
                    cur.advance();
                }
            }
        }
    }
}

fn on_aug_whole<E, A, C>(t: &Tree<E, A, C>, f: &mut PartSink<'_, E, A::Value>)
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    if let Some(node) = t {
        f(Part::Aug(node.aug()));
    }
}

/// Aggregate of all entries with keys in `[lo, hi]` (the paper's
/// `aug_range`). `O(log n + B)` work.
pub(crate) fn aug_range<E, A, C>(t: &Tree<E, A, C>, lo: &E::Key, hi: &E::Key) -> A::Value
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut acc = A::identity();
    range_decompose(t, lo, hi, &mut |part| {
        acc = match part {
            Part::Aug(v) => A::combine(&acc, v),
            Part::Entry(e) => A::combine(&acc, &A::from_entry(e)),
        };
    });
    acc
}

/// Augmentation-pruned search: collects entries with key `<= kmax`
/// satisfying `pred`, skipping any subtree where `enter(aug)` is false.
///
/// With the max-right-endpoint augmentation this is exactly the interval
/// tree's stabbing query: `O(k log n)` for `k` reported intervals.
pub(crate) fn prune_search<E, A, C>(
    t: &Tree<E, A, C>,
    kmax: &E::Key,
    enter: &dyn Fn(&A::Value) -> bool,
    pred: &dyn Fn(&E) -> bool,
    out: &mut Vec<E>,
) where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return };
    if !enter(node.aug()) {
        return;
    }
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            prune_search(left, kmax, enter, pred, out);
            if entry.key() <= kmax {
                if pred(entry) {
                    out.push(entry.clone());
                }
                prune_search(right, kmax, enter, pred, out);
            }
        }
        leaf => {
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            let mut cur = C::cursor(&block);
            while let Some(e) = cur.peek() {
                if e.key() > kmax {
                    break;
                }
                if pred(e) {
                    out.push(e.clone());
                }
                cur.advance();
            }
        }
    }
}

/// Keeps entries satisfying `pred` (Fig. 6's `filter`).
/// `O(n)` work, `O(log^2 n)` span. Consumes the tree: surviving spans of
/// a uniquely-owned tree are rebuilt in place.
pub(crate) fn filter<E, A, C, F>(b: usize, t: Tree<E, A, C>, pred: &F) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E) -> bool + Sync,
{
    let grain = par_grain(b, crate::node::size(&t));
    filter_rec(b, grain, t, pred)
}

fn filter_rec<E, A, C, F>(b: usize, grain: usize, t: Tree<E, A, C>, pred: &F) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E) -> bool + Sync,
{
    let node = t?;
    if node.is_flat() {
        stats::count_cursor_op();
        return with_scratch(node.size(), |kept: &mut Vec<E>| {
            {
                let block = node.leaf_block();
                C::for_each(&block, &mut |e| {
                    if pred(e) {
                        kept.push(e.clone());
                    }
                });
            }
            rebuild_leaf(b, Some(node), kept)
        });
    }
    let sz = node.size();
    let (left, entry, right, husk) = expose_owned(Some(node));
    let (tl, tr) = if sz > grain {
        parlay::join(
            || filter_rec(b, grain, left, pred),
            || filter_rec(b, grain, right, pred),
        )
    } else {
        (
            filter_rec(b, grain, left, pred),
            filter_rec(b, grain, right, pred),
        )
    };
    if pred(&entry) {
        join(b, husk, tl, entry, tr)
    } else {
        join2(b, husk, tl, tr)
    }
}

/// Structure-preserving entry map: same shape (and therefore same cost
/// profile), entries transformed by `f`.
///
/// For keyed trees `f` must preserve the relative key order (the typical
/// use is mapping values only).
pub(crate) fn map_entries<E, A, C, E2, A2, C2, F>(t: &Tree<E, A, C>, f: &F) -> Tree<E2, A2, C2>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    E2: Element,
    A2: Augmentation<E2>,
    C2: Codec<E2>,
    F: Fn(&E) -> E2 + Sync,
{
    let grain = walk_grain(crate::node::size(t));
    map_entries_rec(grain, t, f)
}

fn map_entries_rec<E, A, C, E2, A2, C2, F>(
    grain: usize,
    t: &Tree<E, A, C>,
    f: &F,
) -> Tree<E2, A2, C2>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    E2: Element,
    A2: Augmentation<E2>,
    C2: Codec<E2>,
    F: Fn(&E) -> E2 + Sync,
{
    let Some(node) = t else { return None };
    match &**node {
        Node::Regular {
            left,
            entry,
            right,
            size: sz,
            ..
        } => {
            let (tl, tr) = if *sz > grain {
                parlay::join(
                    || map_entries_rec(grain, left, f),
                    || map_entries_rec(grain, right, f),
                )
            } else {
                (
                    map_entries_rec(grain, left, f),
                    map_entries_rec(grain, right, f),
                )
            };
            crate::node::make_regular(tl, f(entry), tr)
        }
        leaf => {
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            with_scratch(node.size(), |mapped: &mut Vec<E2>| {
                C::for_each(&block, &mut |e| mapped.push(f(e)));
                crate::node::make_flat(mapped)
            })
        }
    }
}

/// Parallel map-reduce over all entries (Fig. 8's `reduce`).
/// `O(n)` work, `O(log n)` span.
pub(crate) fn map_reduce<E, A, C, R, M, Op>(t: &Tree<E, A, C>, m: &M, op: &Op, id: R) -> R
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    R: Send + Sync + Clone,
    M: Fn(&E) -> R + Sync,
    Op: Fn(R, R) -> R + Sync,
{
    let grain = walk_grain(crate::node::size(t));
    map_reduce_rec(grain, t, m, op, id)
}

fn map_reduce_rec<E, A, C, R, M, Op>(
    grain: usize,
    t: &Tree<E, A, C>,
    m: &M,
    op: &Op,
    id: R,
) -> R
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    R: Send + Sync + Clone,
    M: Fn(&E) -> R + Sync,
    Op: Fn(R, R) -> R + Sync,
{
    let Some(node) = t else { return id };
    match &**node {
        Node::Regular {
            left,
            entry,
            right,
            size: sz,
            ..
        } => {
            let (a, c) = if *sz > grain {
                parlay::join(
                    || map_reduce_rec(grain, left, m, op, id.clone()),
                    || map_reduce_rec(grain, right, m, op, id.clone()),
                )
            } else {
                (
                    map_reduce_rec(grain, left, m, op, id.clone()),
                    map_reduce_rec(grain, right, m, op, id.clone()),
                )
            };
            op(op(a, m(entry)), c)
        }
        leaf => {
            let block = leaf.leaf_block();
            let mut acc = id;
            C::for_each(&block, &mut |e| {
                acc = op(acc.clone(), m(e));
            });
            acc
        }
    }
}

/// Extracts the entries in `[lo, hi]` as a vector (report query).
pub(crate) fn range_entries<E, A, C>(t: &Tree<E, A, C>, lo: &E::Key, hi: &E::Key) -> Vec<E>
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let mut out = Vec::new();
    collect_range(t, lo, hi, &mut out);
    out
}

fn collect_range<E, A, C>(t: &Tree<E, A, C>, lo: &E::Key, hi: &E::Key, out: &mut Vec<E>)
where
    E: Entry,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return };
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            let k = entry.key();
            if k >= lo {
                collect_range(left, lo, hi, out);
            }
            if k >= lo && k <= hi {
                out.push(entry.clone());
            }
            if k <= hi {
                collect_range(right, lo, hi, out);
            }
        }
        leaf => {
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            let from = match C::search_by(&block, |e| e.key().cmp(lo)) {
                Ok((i, _)) | Err(i) => i,
            };
            let mut cur = C::cursor_at(&block, from);
            while let Some(e) = cur.peek() {
                if e.key() > hi {
                    break;
                }
                out.push(e.clone());
                cur.advance();
            }
        }
    }
}

/// Folds over every stored augmented value (one per node, regular or
/// flat) — used for space accounting of tree-valued augmentations.
pub(crate) fn fold_augs<E, A, C, R>(t: &Tree<E, A, C>, acc: R, f: &mut dyn FnMut(R, &A::Value) -> R) -> R
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return acc };
    match &**node {
        Node::Regular {
            left, right, aug, ..
        } => {
            let acc = f(acc, aug);
            let acc = fold_augs(left, acc, f);
            fold_augs(right, acc, f)
        }
        leaf => f(acc, leaf.aug()),
    }
}

/// First entry (in order), if any.
pub(crate) fn first<E, A, C>(t: &Tree<E, A, C>) -> Option<E>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    select(t, 0)
}

/// Last entry (in order), if any.
pub(crate) fn last<E, A, C>(t: &Tree<E, A, C>) -> Option<E>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let n = size(t);
    if n == 0 {
        None
    } else {
        select(t, n - 1)
    }
}

/// All entries as a vector (delegates to the parallel flattener).
pub(crate) fn entries_vec<E, A, C>(t: &Tree<E, A, C>) -> Vec<E>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    to_vec(t)
}
