//! [`PacMap`]: a purely-functional ordered map on PaC-trees.

use codecs::{Codec, RawCodec};

use crate::aug::{Augmentation, NoAug};
use crate::entry::{Element, ScalarKey};
use crate::iter::Iter;
use crate::node::{aug_of, size, SpaceStats, Tree};
use crate::{algos, base, join as jn, seq, setops, structure, verify, DEFAULT_B};

/// One piece of a canonical range decomposition (see
/// [`PacMap::range_decompose`]).
#[derive(Debug)]
pub enum RangePart<'a, K, V, AV> {
    /// The aggregate of a maximal subtree fully inside the range.
    Subtree(&'a AV),
    /// A boundary entry inside the range.
    Entry(&'a K, &'a V),
}

/// A purely-functional ordered map with blocked, optionally compressed
/// leaves and user-defined augmentation.
///
/// All operations are non-destructive: they return a new map sharing
/// structure with the old one, so a `clone` is an `O(1)` snapshot that
/// can be read while newer versions are being produced — the paper's
/// multiversioning story.
///
/// # Consuming updates
///
/// Every update also has a *consuming* variant (`insert_owned`,
/// `remove_owned`, `multi_insert_owned`, `union_owned`, ...). Semantics
/// are identical, but because the map is passed by value the update can
/// check, per node, whether it holds the only reference — and rebuild
/// uniquely-owned nodes **in place** instead of path-copying (the
/// paper's refcount-1 optimization). Holding a clone anywhere keeps
/// every shared node copy-on-write, so snapshots stay immutable; see
/// [`crate::stats::OpCounts::nodes_reused`]. The borrowing methods
/// simply clone and delegate, which pins the whole tree and always
/// copies the path:
///
/// ```
/// use cpam::PacMap;
///
/// let mut m: PacMap<u64, u64> = PacMap::from_pairs((0..1000).map(|i| (i, i)).collect());
/// // Hot loop: consuming updates mutate uniquely-owned nodes in place.
/// for k in 1000..2000 {
///     m = m.insert_owned(k, k);
/// }
/// let snapshot = m.clone(); // O(1); from here updates copy the shared path
/// m = m.insert_owned(9999, 1);
/// assert_eq!(snapshot.len(), 2000);
/// assert_eq!(m.len(), 2001);
/// ```
///
/// Type parameters: key `K`, value `V`, augmentation `A` (default none)
/// and block codec `C` (default blocking without compression). The block
/// size `B` is a runtime parameter fixed at creation (paper default 128).
///
/// # Examples
///
/// ```
/// use cpam::PacMap;
///
/// let m: PacMap<u64, u64> = PacMap::from_pairs((0..1000).map(|i| (i, i * i)).collect());
/// assert_eq!(m.len(), 1000);
/// assert_eq!(m.find(&31), Some(961));
///
/// let snapshot = m.clone();                  // O(1)
/// let m2 = m.insert(2000, 1);                // path-copied
/// assert_eq!(snapshot.len(), 1000);
/// assert_eq!(m2.len(), 1001);
/// ```
pub struct PacMap<K, V, A = NoAug, C = RawCodec>
where
    K: ScalarKey,
    V: Element,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    pub(crate) root: Tree<(K, V), A, C>,
    pub(crate) b: usize,
}

impl<K, V, A, C> Clone for PacMap<K, V, A, C>
where
    K: ScalarKey,
    V: Element,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    fn clone(&self) -> Self {
        PacMap {
            root: self.root.clone(),
            b: self.b,
        }
    }
}

impl<K, V, A, C> Default for PacMap<K, V, A, C>
where
    K: ScalarKey,
    V: Element,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, A, C> std::fmt::Debug for PacMap<K, V, A, C>
where
    K: ScalarKey,
    V: Element,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacMap")
            .field("len", &self.len())
            .field("block_size", &self.b)
            .finish()
    }
}

impl<K, V, A, C> PacMap<K, V, A, C>
where
    K: ScalarKey,
    V: Element,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    /// An empty map with the default block size (`B = 128`).
    pub fn new() -> Self {
        Self::with_block_size(DEFAULT_B)
    }

    /// An empty map with block size `b` (leaves hold `b..2b` entries).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn with_block_size(b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        PacMap { root: None, b }
    }

    /// Builds from arbitrary pairs (sorted in parallel; on duplicate keys
    /// the *last* pair wins). Paper's Build: `O(n log n)` work.
    pub fn from_pairs(pairs: Vec<(K, V)>) -> Self {
        Self::from_pairs_with(DEFAULT_B, pairs)
    }

    /// [`PacMap::from_pairs`] with an explicit block size.
    pub fn from_pairs_with(b: usize, mut pairs: Vec<(K, V)>) -> Self {
        parlay::par_sort_by(&mut pairs, &|a, b| a.0.cmp(&b.0));
        // Last pair with a given key wins.
        let mut dedup: Vec<(K, V)> = Vec::with_capacity(pairs.len());
        for p in pairs {
            if dedup.last().is_some_and(|q| q.0 == p.0) {
                *dedup.last_mut().expect("nonempty") = p;
            } else {
                dedup.push(p);
            }
        }
        PacMap {
            root: base::from_sorted(b, &dedup),
            b,
        }
    }

    /// Builds from pairs already sorted by strictly increasing key.
    /// `O(n)` work, `O(log n)` span.
    ///
    /// # Panics
    ///
    /// Debug-panics if keys are not strictly increasing.
    pub fn from_sorted_pairs(b: usize, pairs: &[(K, V)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        PacMap {
            root: base::from_sorted(b, pairs),
            b,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The block size this map was created with.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// The value stored under `k`, if any. `O(log n + B)` work.
    pub fn find(&self, k: &K) -> Option<V> {
        algos::find(&self.root, k).map(|e| e.1)
    }

    /// True if `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        algos::find(&self.root, k).is_some()
    }

    /// A new map with `(k, v)` inserted (replacing any existing value).
    pub fn insert(&self, k: K, v: V) -> Self {
        self.clone().insert_owned(k, v)
    }

    /// Consuming [`PacMap::insert`]: uniquely-owned nodes on the update
    /// path are rebuilt in place instead of path-copied.
    pub fn insert_owned(self, k: K, v: V) -> Self {
        self.insert_with_owned(k, v, |_, new| new.clone())
    }

    /// A new map with `(k, v)` inserted; on an existing key the stored
    /// value becomes `f(old, new)`.
    pub fn insert_with(&self, k: K, v: V, f: impl Fn(&V, &V) -> V) -> Self {
        self.clone().insert_with_owned(k, v, f)
    }

    /// Consuming [`PacMap::insert_with`].
    pub fn insert_with_owned(self, k: K, v: V, f: impl Fn(&V, &V) -> V) -> Self {
        let root = algos::insert(self.b, self.root, (k, v), &|old: &(K, V), new: &(K, V)| {
            (new.0.clone(), f(&old.1, &new.1))
        });
        PacMap { root, b: self.b }
    }

    /// A new map without key `k`.
    pub fn remove(&self, k: &K) -> Self {
        self.clone().remove_owned(k)
    }

    /// Consuming [`PacMap::remove`].
    pub fn remove_owned(self, k: &K) -> Self {
        PacMap {
            root: algos::remove(self.b, self.root, k),
            b: self.b,
        }
    }

    /// Union; on duplicate keys the entry from `other` wins.
    ///
    /// # Panics
    ///
    /// Panics if the two maps have different block sizes (the result
    /// shares subtrees with both inputs, so mismatched `B` would
    /// silently violate the leaf-size invariant).
    pub fn union(&self, other: &Self) -> Self {
        self.union_with(other, |_, theirs| theirs.clone())
    }

    /// Union with `f(self_value, other_value)` combining duplicates.
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn union_with(&self, other: &Self, f: impl Fn(&V, &V) -> V + Sync) -> Self {
        self.clone().union_with_owned(other.clone(), f)
    }

    /// Consuming [`PacMap::union_with`]: both operands are consumed and
    /// whichever side's nodes are uniquely owned are reused in place.
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn union_with_owned(self, other: Self, f: impl Fn(&V, &V) -> V + Sync) -> Self {
        assert_eq!(self.b, other.b, "union_with requires equal block sizes");
        let g = |a: &(K, V), b: &(K, V)| (a.0.clone(), f(&a.1, &b.1));
        PacMap {
            root: setops::union_with(self.b, self.root, other.root, &g),
            b: self.b,
        }
    }

    /// Consuming [`PacMap::union`].
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn union_owned(self, other: Self) -> Self {
        self.union_with_owned(other, |_, theirs| theirs.clone())
    }

    /// Intersection; kept entries combine values with `f`.
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn intersect_with(&self, other: &Self, f: impl Fn(&V, &V) -> V + Sync) -> Self {
        self.clone().intersect_with_owned(other.clone(), f)
    }

    /// Consuming [`PacMap::intersect_with`].
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn intersect_with_owned(self, other: Self, f: impl Fn(&V, &V) -> V + Sync) -> Self {
        assert_eq!(self.b, other.b, "intersect_with requires equal block sizes");
        let g = |a: &(K, V), b: &(K, V)| (a.0.clone(), f(&a.1, &b.1));
        PacMap {
            root: setops::intersect_with(self.b, self.root, other.root, &g),
            b: self.b,
        }
    }

    /// Entries of `self` whose keys are not in `other`.
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn difference(&self, other: &Self) -> Self {
        self.clone().difference_owned(other.clone())
    }

    /// Consuming [`PacMap::difference`].
    ///
    /// # Panics
    ///
    /// See [`PacMap::union`].
    pub fn difference_owned(self, other: Self) -> Self {
        assert_eq!(self.b, other.b, "difference requires equal block sizes");
        PacMap {
            root: setops::difference(self.b, self.root, other.root),
            b: self.b,
        }
    }

    /// Batch insert (paper's `multi_insert`): sorts and deduplicates the
    /// batch in parallel (last wins), then merges. On keys already
    /// present the new value replaces the old.
    pub fn multi_insert(&self, batch: Vec<(K, V)>) -> Self {
        self.clone().multi_insert_owned(batch)
    }

    /// Consuming [`PacMap::multi_insert`].
    pub fn multi_insert_owned(self, batch: Vec<(K, V)>) -> Self {
        self.multi_insert_with_owned(batch, |_, new| new.clone())
    }

    /// [`PacMap::multi_insert`] with `f(old, new)` combining values on
    /// existing keys; duplicate keys *within* the batch are combined with
    /// `f` as well (in batch order), so it doubles as a group-by.
    pub fn multi_insert_with(&self, batch: Vec<(K, V)>, f: impl Fn(&V, &V) -> V + Sync) -> Self {
        self.clone().multi_insert_with_owned(batch, f)
    }

    /// Consuming [`PacMap::multi_insert_with`].
    pub fn multi_insert_with_owned(
        self,
        mut batch: Vec<(K, V)>,
        f: impl Fn(&V, &V) -> V + Sync,
    ) -> Self {
        parlay::par_sort_by(&mut batch, &|a, b| a.0.cmp(&b.0));
        let mut dedup: Vec<(K, V)> = Vec::with_capacity(batch.len());
        for p in batch {
            match dedup.last_mut() {
                Some(q) if q.0 == p.0 => q.1 = f(&q.1, &p.1),
                _ => dedup.push(p),
            }
        }
        let g = |old: &(K, V), new: &(K, V)| (old.0.clone(), f(&old.1, &new.1));
        PacMap {
            root: setops::multi_insert(self.b, self.root, &dedup, &g),
            b: self.b,
        }
    }

    /// Batch delete: removes every key in `keys`.
    pub fn multi_delete(&self, keys: Vec<K>) -> Self {
        self.clone().multi_delete_owned(keys)
    }

    /// Consuming [`PacMap::multi_delete`].
    pub fn multi_delete_owned(self, mut keys: Vec<K>) -> Self {
        parlay::par_sort(&mut keys);
        keys.dedup();
        PacMap {
            root: setops::multi_delete(self.b, self.root, &keys),
            b: self.b,
        }
    }

    /// Keeps entries satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&K, &V) -> bool + Sync) -> Self {
        self.clone().filter_owned(pred)
    }

    /// Consuming [`PacMap::filter`]: surviving spans of a uniquely-owned
    /// map are rebuilt in place.
    pub fn filter_owned(self, pred: impl Fn(&K, &V) -> bool + Sync) -> Self {
        PacMap {
            root: algos::filter(self.b, self.root, &|e: &(K, V)| pred(&e.0, &e.1)),
            b: self.b,
        }
    }

    /// Maps values (keys unchanged); the result drops augmentation and
    /// compression (choose them explicitly with a typed constructor if
    /// needed).
    pub fn map_values<V2: Element>(&self, f: impl Fn(&K, &V) -> V2 + Sync) -> PacMap<K, V2> {
        PacMap {
            root: algos::map_entries(&self.root, &|e: &(K, V)| (e.0.clone(), f(&e.0, &e.1))),
            b: self.b,
        }
    }

    /// Parallel map-reduce over entries.
    pub fn map_reduce<R: Send + Sync + Clone>(
        &self,
        m: impl Fn(&K, &V) -> R + Sync,
        op: impl Fn(R, R) -> R + Sync,
        id: R,
    ) -> R {
        algos::map_reduce(&self.root, &|e: &(K, V)| m(&e.0, &e.1), &op, id)
    }

    /// Number of keys strictly less than `k`.
    pub fn rank(&self, k: &K) -> usize {
        algos::rank(&self.root, k)
    }

    /// The `i`-th entry in key order.
    pub fn select(&self, i: usize) -> Option<(K, V)> {
        algos::select(&self.root, i)
    }

    /// Smallest entry with key `>= k`.
    pub fn succ(&self, k: &K) -> Option<(K, V)> {
        algos::succ(&self.root, k)
    }

    /// Largest entry with key `<= k`.
    pub fn pred(&self, k: &K) -> Option<(K, V)> {
        algos::pred(&self.root, k)
    }

    /// First (smallest-key) entry.
    pub fn first(&self) -> Option<(K, V)> {
        algos::first(&self.root)
    }

    /// Last (largest-key) entry.
    pub fn last(&self) -> Option<(K, V)> {
        algos::last(&self.root)
    }

    /// The submap with keys in `[lo, hi]`. `O(log n + B)` work.
    pub fn range(&self, lo: &K, hi: &K) -> Self {
        PacMap {
            root: algos::range(self.b, self.root.clone(), lo, hi),
            b: self.b,
        }
    }

    /// The entries with keys in `[lo, hi]`, as a vector.
    pub fn range_entries(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        algos::range_entries(&self.root, lo, hi)
    }

    /// Aggregate of all entries (identity if empty).
    pub fn aug_value(&self) -> A::Value {
        aug_of(&self.root)
    }

    /// Aggregate of the entries with keys in `[lo, hi]` (paper's
    /// `aug_range`). `O(log n + B)` work.
    pub fn aug_range(&self, lo: &K, hi: &K) -> A::Value {
        algos::aug_range(&self.root, lo, hi)
    }

    /// Canonical range decomposition: `f` receives the aggregate of each
    /// maximal subtree fully inside `[lo, hi]` and each boundary entry.
    /// The building block for range-tree count queries.
    pub fn range_decompose(&self, lo: &K, hi: &K, mut f: impl FnMut(RangePart<'_, K, V, A::Value>)) {
        algos::range_decompose(&self.root, lo, hi, &mut |part| match part {
            algos::Part::Aug(v) => f(RangePart::Subtree(v)),
            algos::Part::Entry(e) => f(RangePart::Entry(&e.0, &e.1)),
        });
    }

    /// Augmentation-pruned search: collects entries with key `<= kmax`
    /// satisfying `pred`, skipping subtrees where `enter(aug)` is false
    /// (e.g. interval-tree stabbing queries; see `spatial`).
    pub fn prune_search(
        &self,
        kmax: &K,
        enter: impl Fn(&A::Value) -> bool,
        pred: impl Fn(&K, &V) -> bool,
    ) -> Vec<(K, V)> {
        let mut out = Vec::new();
        algos::prune_search(
            &self.root,
            kmax,
            &enter,
            &|e: &(K, V)| pred(&e.0, &e.1),
            &mut out,
        );
        out
    }

    /// All entries in key order.
    pub fn to_vec(&self) -> Vec<(K, V)> {
        algos::entries_vec(&self.root)
    }

    /// All keys in order.
    pub fn keys(&self) -> Vec<K> {
        let pairs = self.to_vec();
        pairs.into_iter().map(|(k, _)| k).collect()
    }

    /// All values in key order.
    pub fn values(&self) -> Vec<V> {
        let pairs = self.to_vec();
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// Streaming in-order iterator (a snapshot: later updates to the map
    /// do not affect it).
    pub fn iter(&self) -> Iter<(K, V), A, C> {
        Iter::new(&self.root)
    }

    /// Concatenates two maps; every key of `self` must be smaller than
    /// every key of `other` (debug-checked). `O(log n + B)` work.
    pub fn append(&self, other: &Self) -> Self {
        debug_assert!(match (self.last(), other.first()) {
            (Some((a, _)), Some((b, _))) => a < b,
            _ => true,
        });
        PacMap {
            root: seq::append(self.b, &self.root, &other.root),
            b: self.b,
        }
    }

    /// Folds over every *stored* augmented value (one per regular node
    /// and one per leaf block). Used to account for the space of
    /// tree-valued augmentations such as range-tree inner sets.
    pub fn fold_augs<R>(&self, init: R, mut f: impl FnMut(R, &A::Value) -> R) -> R {
        algos::fold_augs(&self.root, init, &mut f)
    }

    /// Heap-space statistics (the paper's Fig. 13 measurements).
    pub fn space_stats(&self) -> SpaceStats {
        crate::node::space(&self.root)
    }

    /// Pre-order walk over the tree's nodes: regular pivot entries and
    /// *already-encoded* leaf blocks (see [`crate::structure`]). This is
    /// the serialization hook — a snapshot codec copies blocks verbatim
    /// instead of flattening and re-encoding the map.
    pub fn visit_nodes(&self, f: &mut impl FnMut(structure::NodeRef<'_, (K, V), C::Block>)) {
        structure::visit_preorder(&self.root, f);
    }

    /// Bulk constructor from a pre-order node stream — the inverse of
    /// [`PacMap::visit_nodes`]. Rebuilds the identical tree (same shape,
    /// same encoded blocks, no re-sorting) with block size `b`,
    /// recomputing cached sizes and augmented values.
    ///
    /// # Errors
    ///
    /// [`structure::BuildError`] when the stream's source fails or the
    /// stream is structurally invalid (oversized blocks, runaway depth).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn from_node_stream<S>(
        b: usize,
        next: &mut impl FnMut() -> Result<structure::NodeOwned<(K, V), C::Block>, S>,
    ) -> Result<Self, structure::BuildError<S>> {
        assert!(b > 0, "block size must be positive");
        Ok(PacMap {
            root: structure::build_preorder(b, next)?,
            b,
        })
    }

    /// Pre-order *diff* walk against `base`: subtrees physically shared
    /// with `base` (same `Arc` allocation, i.e. untouched since `base`
    /// was pinned) are reported as a single
    /// [`structure::DiffNodeRef::Shared`] carrying the subtree's
    /// pre-order index in `base`, and are not descended into. This is
    /// the incremental-snapshot hook: a page diffed against the
    /// previous checkpoint's pinned root serializes only the new nodes.
    ///
    /// Sound only while the caller keeps `base` alive for the duration
    /// of the walk — a pinned base keeps its refcounts ≥ 2, which the
    /// in-place-reuse machinery treats as immutable.
    pub fn visit_nodes_diff(
        &self,
        base: &Self,
        f: &mut impl FnMut(structure::DiffNodeRef<'_, (K, V), C::Block>),
    ) {
        let index = structure::index_preorder(&base.root);
        structure::visit_preorder_diff(&self.root, &index, f);
    }

    /// Bulk constructor from a pre-order diff stream — the inverse of
    /// [`PacMap::visit_nodes_diff`]. `base` must be behaviourally equal
    /// to the tree the encoder diffed against (same shape and blocks;
    /// typically the decoded previous checkpoint); shared references
    /// resolve to its subtrees, so the result shares structure with it.
    ///
    /// # Errors
    ///
    /// [`structure::BuildError`] when the stream's source fails or the
    /// stream is structurally invalid (oversized blocks, runaway depth,
    /// shared indices past the base tree).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn from_diff_node_stream<S>(
        b: usize,
        base: &Self,
        next: &mut impl FnMut() -> Result<structure::DiffNodeOwned<(K, V), C::Block>, S>,
    ) -> Result<Self, structure::BuildError<S>> {
        assert!(b > 0, "block size must be positive");
        let subtrees = structure::collect_preorder(&base.root);
        Ok(PacMap {
            root: structure::build_preorder_diff(b, &subtrees, next)?,
            b,
        })
    }

    /// Verifies every structural invariant; returns the first violation.
    ///
    /// # Errors
    ///
    /// Describes the violated invariant (imbalance, block size out of
    /// bounds, key disorder, stale cached size or aggregate).
    pub fn check_invariants(&self) -> Result<(), String>
    where
        K: std::fmt::Debug,
        A::Value: PartialEq + std::fmt::Debug,
    {
        verify::check_ordered(self.b, &self.root)
    }

    /// Splits into (entries with key < `k`, value at `k`, entries with
    /// key > `k`) — the raw `split` primitive (Fig. 5).
    pub fn split(&self, k: &K) -> (Self, Option<V>, Self) {
        let (l, m, r) = jn::split(self.b, self.root.clone(), k);
        (
            PacMap { root: l, b: self.b },
            m.map(|e| e.1),
            PacMap { root: r, b: self.b },
        )
    }

    /// Joins `left ++ [(k, v)] ++ right`; all keys in `left` must be
    /// `< k` and all keys in `right` `> k` (debug-checked). The raw
    /// `join` primitive (Fig. 5).
    pub fn join(left: &Self, k: K, v: V, right: &Self) -> Self {
        debug_assert!(left.last().is_none_or(|(a, _)| a < k));
        debug_assert!(right.first().is_none_or(|(a, _)| a > k));
        PacMap {
            root: jn::join(left.b, None, left.root.clone(), (k, v), right.root.clone()),
            b: left.b,
        }
    }
}

impl<K, V, C> PacMap<K, V, NoAug, C>
where
    K: ScalarKey,
    V: Element,
    C: Codec<(K, V)>,
{
    /// Bulk constructor from a pre-order *paged* node stream: like
    /// [`PacMap::from_node_stream`], but leaves arrive as `(page, len)`
    /// references into a paged snapshot file instead of inline blocks,
    /// and are materialized lazily through `src` on first access
    /// (`find`/`range`/iteration touch only the pages their path
    /// crosses). `O(structure)` work — independent of the data size.
    ///
    /// Only unaugmented maps can be paged: a lazy leaf cannot compute
    /// an aggregate without defeating the point of not reading it.
    ///
    /// # Errors
    ///
    /// [`structure::BuildError`] when the stream's source fails or the
    /// stream is structurally invalid (oversized leaves, runaway
    /// depth).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn from_paged_stream<S>(
        b: usize,
        src: std::sync::Arc<dyn crate::BlockSource<C::Block>>,
        next: &mut impl FnMut() -> Result<structure::PagedNodeOwned<(K, V)>, S>,
    ) -> Result<Self, structure::BuildError<S>> {
        assert!(b > 0, "block size must be positive");
        Ok(PacMap {
            root: structure::build_preorder_paged(b, &src, next)?,
            b,
        })
    }
}

impl<K, V, A, C> PartialEq for PacMap<K, V, A, C>
where
    K: ScalarKey,
    V: Element + PartialEq,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<K, V, A, C> FromIterator<(K, V)> for PacMap<K, V, A, C>
where
    K: ScalarKey,
    V: Element,
    A: Augmentation<(K, V)>,
    C: Codec<(K, V)>,
{
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self::from_pairs_with(DEFAULT_B, iter.into_iter().collect())
    }
}
