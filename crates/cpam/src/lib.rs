//! CPAM in Rust: parallel, compressed, purely-functional collections on
//! PaC-trees.
//!
//! This crate reimplements the data structure and library of
//! *"PaC-trees: Supporting Parallel and Compressed Purely-Functional
//! Collections"* (PLDI 2022): weight-balanced binary search trees whose
//! leaves are *blocked* — packed into encoded arrays of `B..2B` entries —
//! giving close-to-array space usage while keeping `O(log n)`-style
//! functional updates and a full parallel collection interface.
//!
//! # The three collection types
//!
//! * [`PacSet`] — ordered sets (union/intersect/difference, rank/select,
//!   ranges);
//! * [`PacMap`] — ordered maps with optional *augmentation* (an
//!   associative aggregate maintained per subtree, e.g. max or sum);
//! * [`PacSeq`] — sequences (take/subseq/append/reverse/map/reduce).
//!
//! All are persistent: every operation returns a new collection sharing
//! structure with the input, a `clone` is an `O(1)` snapshot, and
//! reference counting (`Arc`) reclaims unshared nodes — the paper's
//! memory-management design, for free in Rust.
//!
//! # Compression
//!
//! Leaf blocks are encoded through the [`codecs::Codec`] trait:
//! [`codecs::RawCodec`] stores plain arrays (the paper's default), while
//! [`codecs::DeltaCodec`] difference-encodes integer keys with byte
//! codes, reaching ~1 byte per entry on locality-friendly data
//! (Theorem 4.2). User-defined codecs plug in the same way.
//!
//! ```
//! use cpam::{PacSet, NoAug};
//! use codecs::DeltaCodec;
//!
//! // A plain and a difference-encoded set over the same keys.
//! let keys: Vec<u64> = (0..100_000).map(|i| 3 * i).collect();
//! let plain: PacSet<u64> = PacSet::from_keys(keys.clone());
//! let packed: PacSet<u64, NoAug, DeltaCodec> = PacSet::from_keys(keys);
//! assert_eq!(plain.len(), packed.len());
//! // Delta encoding: ~8x smaller than raw 8-byte keys.
//! assert!(packed.space_stats().total_bytes * 4 < plain.space_stats().total_bytes);
//! ```
//!
//! # Parallelism
//!
//! Bulk operations (build, union, filter, map, reduce, batch updates)
//! fork through [`parlay::join`]; wrap a batch of work in
//! [`parlay::run`] to enter the pool once. Everything is deterministic.

mod algos;
mod base;
mod entry;
mod grain;
mod iter;
mod join;
mod node;
mod scratch;
mod seq;
mod setops;
mod verify;

mod aug;
mod map;
mod pseq;
mod set;
mod tradeoff;

pub mod stats;
pub mod structure;

pub use aug::{Augmentation, MaxAug, NoAug, SumAug};
pub use entry::{Element, Entry, ScalarKey};
pub use iter::Iter;
pub use map::{PacMap, RangePart};
pub use node::{BlockSource, SpaceStats};
pub use pseq::PacSeq;
pub use set::PacSet;
pub use tradeoff::UnsortedLeafSet;

/// The paper's default block size.
pub const DEFAULT_B: usize = 128;

/// A difference-encoded ordered set of integer keys.
pub type DiffSet<K, A = NoAug> = PacSet<K, A, codecs::DeltaCodec>;

/// A difference-encoded ordered map (integer keys, byte-coded values).
pub type DiffMap<K, V, A = NoAug> = PacMap<K, V, A, codecs::DeltaCodec>;

#[cfg(test)]
mod tests;
