//! Global operation counters used by the cost-bound experiments
//! (Table 1 / Fig. 3 validation in `EXPERIMENTS.md`).
//!
//! Counters are process-wide relaxed atomics: negligible cost next to the
//! allocations they count, and precise enough to compare measured node
//! copies against the paper's analytic bounds.

use std::sync::atomic::{AtomicU64, Ordering};

static NODE_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BLOCK_ENCODES: AtomicU64 = AtomicU64::new(0);
static BLOCK_DECODES: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn count_node_alloc() {
    NODE_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_block_encode() {
    BLOCK_ENCODES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_block_decode() {
    BLOCK_DECODES.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Tree nodes allocated (regular + flat).
    pub node_allocs: u64,
    /// Leaf blocks encoded (`fold`s).
    pub block_encodes: u64,
    /// Leaf blocks decoded (`unfold`s / `expose`s of flat nodes).
    pub block_decodes: u64,
}

/// Reads the counters.
///
/// ```
/// let before = cpam::stats::read();
/// let _set = cpam::PacSet::<u64>::from_keys((0..1000).collect::<Vec<_>>());
/// let after = cpam::stats::read();
/// assert!(after.node_allocs > before.node_allocs);
/// ```
pub fn read() -> OpCounts {
    OpCounts {
        node_allocs: NODE_ALLOCS.load(Ordering::Relaxed),
        block_encodes: BLOCK_ENCODES.load(Ordering::Relaxed),
        block_decodes: BLOCK_DECODES.load(Ordering::Relaxed),
    }
}

/// Difference between two snapshots (`later - earlier`).
pub fn delta(earlier: OpCounts, later: OpCounts) -> OpCounts {
    OpCounts {
        node_allocs: later.node_allocs - earlier.node_allocs,
        block_encodes: later.block_encodes - earlier.block_encodes,
        block_decodes: later.block_decodes - earlier.block_decodes,
    }
}
