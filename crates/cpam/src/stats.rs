//! Global operation counters used by the cost-bound experiments
//! (Table 1 / Fig. 3 validation in `EXPERIMENTS.md`).
//!
//! Counters are process-wide relaxed atomics: negligible cost next to the
//! allocations they count, and precise enough to compare measured node
//! copies against the paper's analytic bounds.

use std::sync::atomic::{AtomicU64, Ordering};

static NODE_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BLOCK_ENCODES: AtomicU64 = AtomicU64::new(0);
static BLOCK_DECODES: AtomicU64 = AtomicU64::new(0);
static CURSOR_OPS: AtomicU64 = AtomicU64::new(0);
static NODES_REUSED: AtomicU64 = AtomicU64::new(0);
static NODES_COPIED: AtomicU64 = AtomicU64::new(0);
static NODES_DROPPED: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn count_node_alloc() {
    NODE_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_node_drop() {
    NODES_DROPPED.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_node_reuse() {
    NODES_REUSED.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_node_copy() {
    NODES_COPIED.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_block_encode() {
    BLOCK_ENCODES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_block_decode() {
    BLOCK_DECODES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_cursor_op() {
    CURSOR_OPS.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Tree nodes allocated (regular + flat).
    pub node_allocs: u64,
    /// Leaf blocks encoded (`fold`s).
    pub block_encodes: u64,
    /// Leaf blocks *fully* decoded — a materialization of every entry,
    /// whether into a fresh vector or a reused scratch buffer.
    pub block_decodes: u64,
    /// Allocation-free in-block accesses: cursor-backed point searches,
    /// index gets and streaming scans of flat nodes. Point lookups on a
    /// compressed tree advance this counter while `block_decodes` stays
    /// flat — that is the "no full decode on find" invariant the
    /// regression tests assert.
    pub cursor_ops: u64,
    /// Nodes rebuilt *in place* by the ownership-aware update path: the
    /// caller held the only reference (`Arc` refcount 1), so the node's
    /// allocation was overwritten instead of path-copied.
    pub nodes_reused: u64,
    /// Nodes a reuse-eligible update site had to copy after all: the
    /// node was shared (pinned by a snapshot or reached through the
    /// borrowing `&self` API), so mutating it would have been visible
    /// through the other reference.
    pub nodes_copied: u64,
    /// Tree nodes deallocated. `node_allocs - nodes_dropped` is the
    /// number of live nodes in the process; the version-GC reclaim
    /// gates assert that dropping unpinned history returns this
    /// balance to a fresh-store baseline.
    pub nodes_dropped: u64,
}

/// Reads the counters.
///
/// ```
/// let before = cpam::stats::read();
/// let set = cpam::PacSet::<u64>::from_keys((0..1000).collect::<Vec<_>>());
/// // 501 lands inside a leaf block (500 is a root pivot), so the
/// // lookup is a cursor search.
/// assert!(set.contains(&501));
/// let after = cpam::stats::read();
/// assert!(after.node_allocs > before.node_allocs);
/// assert!(after.cursor_ops > before.cursor_ops);
/// ```
pub fn read() -> OpCounts {
    OpCounts {
        node_allocs: NODE_ALLOCS.load(Ordering::Relaxed),
        block_encodes: BLOCK_ENCODES.load(Ordering::Relaxed),
        block_decodes: BLOCK_DECODES.load(Ordering::Relaxed),
        cursor_ops: CURSOR_OPS.load(Ordering::Relaxed),
        nodes_reused: NODES_REUSED.load(Ordering::Relaxed),
        nodes_copied: NODES_COPIED.load(Ordering::Relaxed),
        nodes_dropped: NODES_DROPPED.load(Ordering::Relaxed),
    }
}

/// Difference between two snapshots (`later - earlier`).
///
/// Free-function form kept for existing call sites; prefer the method
/// form `later.delta(earlier)`, which reads in snapshot order and
/// avoids the swapped-argument footgun.
pub fn delta(earlier: OpCounts, later: OpCounts) -> OpCounts {
    later.delta(earlier)
}

/// Bridge the global counters into an `obs` registry as pull-style
/// callbacks (`cpam_node_allocs_total`, `cpam_block_decodes_total`,
/// ...). The counters themselves are untouched — the hot paths keep
/// their single relaxed `fetch_add` and `stats::read()` keeps working —
/// so instrumentation adds zero cost until something scrapes the
/// registry. Idempotent: re-registering a name is a no-op.
pub fn register_with(registry: &obs::Registry) {
    registry.register_callback("cpam_node_allocs_total", || {
        NODE_ALLOCS.load(Ordering::Relaxed)
    });
    registry.register_callback("cpam_block_encodes_total", || {
        BLOCK_ENCODES.load(Ordering::Relaxed)
    });
    registry.register_callback("cpam_block_decodes_total", || {
        BLOCK_DECODES.load(Ordering::Relaxed)
    });
    registry.register_callback("cpam_cursor_ops_total", || {
        CURSOR_OPS.load(Ordering::Relaxed)
    });
    registry.register_callback("cpam_nodes_reused_total", || {
        NODES_REUSED.load(Ordering::Relaxed)
    });
    registry.register_callback("cpam_nodes_copied_total", || {
        NODES_COPIED.load(Ordering::Relaxed)
    });
    registry.register_callback("cpam_nodes_dropped_total", || {
        NODES_DROPPED.load(Ordering::Relaxed)
    });
}

impl OpCounts {
    /// Counter increments between `earlier` and `self`, where both were
    /// read from [`read`] and `earlier` was taken first:
    ///
    /// ```
    /// let before = cpam::stats::read();
    /// let set = cpam::PacSet::<u64>::from_keys((0..100).collect::<Vec<_>>());
    /// let spent = cpam::stats::read().delta(before);
    /// assert!(spent.node_allocs > 0);
    /// drop(set);
    /// ```
    pub fn delta(&self, earlier: OpCounts) -> OpCounts {
        OpCounts {
            node_allocs: self.node_allocs - earlier.node_allocs,
            block_encodes: self.block_encodes - earlier.block_encodes,
            block_decodes: self.block_decodes - earlier.block_decodes,
            cursor_ops: self.cursor_ops - earlier.cursor_ops,
            nodes_reused: self.nodes_reused - earlier.nodes_reused,
            nodes_copied: self.nodes_copied - earlier.nodes_copied,
            nodes_dropped: self.nodes_dropped - earlier.nodes_dropped,
        }
    }
}

impl OpCounts {
    /// Nodes allocated but not yet deallocated between two snapshots:
    /// `node_allocs - nodes_dropped` of a [`delta`]. Saturates at zero
    /// when a window frees more than it allocates.
    pub fn live_nodes(&self) -> u64 {
        self.node_allocs.saturating_sub(self.nodes_dropped)
    }
}

impl OpCounts {
    /// Fraction of reuse-eligible node rebuilds that mutated in place:
    /// `reused / (reused + copied)`, or 0 when no eligible site ran.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.nodes_reused + self.nodes_copied;
        if total == 0 {
            0.0
        } else {
            self.nodes_reused as f64 / total as f64
        }
    }
}
