//! Adaptive fork-granularity policy for the bulk tree operations.
//!
//! Fork cutoffs used to be fixed constants (`max(4b, 1024)` for the
//! divide-and-conquer set operations, `4096` for builds and walks),
//! which pays full `StackJob` bookkeeping on a single-threaded pool and
//! picks the same split depth whether 1 or 64 workers are available.
//! This module centralizes the policy:
//!
//! - **1 worker:** every cutoff is `usize::MAX` — bulk ops run pure
//!   sequential code with zero fork overhead (the scheduler's solo
//!   `join` fast path makes a stray fork cheap, this makes it free).
//! - **T workers:** the static floor is kept (small subproblems are
//!   never worth a fork) but scaled up to `n / (8 * T)` for large root
//!   problems: about `8T` leaf tasks per operation is enough slack for
//!   work stealing to balance load without flooding the deques with
//!   thousands of tiny jobs.
//!
//! `n` is the size of the *root* problem; callers compute a grain once
//! at the entry point and thread it through their recursion, so the
//! cutoff is a property of the whole operation, not of each subtree.
//!
//! The worker count is read once and cached: the pool's size is fixed
//! after startup, and the policy is consulted on every recursive step.

use std::sync::OnceLock;

fn pool_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(parlay::num_threads)
}

/// Fork cutoff for the divide-and-conquer set operations (union,
/// intersect, difference, multi_insert, multi_delete) on trees with
/// block-size parameter `b`, for a root problem of `n` entries.
///
/// Subproblems of at most `max(4b, 1024)` entries — a handful of leaf
/// blocks — always run sequentially; see the module docs for the
/// thread-count scaling.
pub(crate) fn par_grain(b: usize, n: usize) -> usize {
    let threads = pool_threads();
    if threads <= 1 {
        return usize::MAX;
    }
    (4 * b).max(1024).max(n / (8 * threads))
}

/// Fork cutoff for structure builds and linear walks (`from_sorted`,
/// `to_vec`, map/filter/fold traversals) over `n` entries, where the
/// per-entry work has no block-size dependence.
pub(crate) fn walk_grain(n: usize) -> usize {
    let threads = pool_threads();
    if threads <= 1 {
        return usize::MAX;
    }
    4096usize.max(n / (8 * threads))
}

/// Whether the pool can run anything in parallel at all. Used by fork
/// sites with non-size-based heuristics (e.g. parallel subtree drops).
pub(crate) fn pool_is_parallel() -> bool {
    pool_threads() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grains_scale_with_problem_size() {
        if pool_threads() <= 1 {
            assert_eq!(par_grain(32, 1_000_000), usize::MAX);
            assert_eq!(walk_grain(1_000_000), usize::MAX);
            assert!(!pool_is_parallel());
        } else {
            let t = pool_threads();
            // Small problems keep the static floor.
            assert_eq!(par_grain(32, 1000), 1024);
            assert_eq!(walk_grain(1000), 4096);
            // Large problems scale as n / 8T.
            let n = 80_000_000;
            assert_eq!(par_grain(32, n), n / (8 * t));
            assert_eq!(walk_grain(n), n / (8 * t));
            assert!(pool_is_parallel());
        }
    }

    #[test]
    fn block_size_floor_dominates_for_big_blocks() {
        if pool_threads() > 1 {
            assert_eq!(par_grain(512, 1000), 2048);
        }
    }
}
