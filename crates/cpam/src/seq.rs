//! Positional (sequence) operations: the paper's Sequence interface
//! (Table 1) — take, subseq, append, reverse, find-first — on top of the
//! same tree representation, ignoring keys entirely.

use codecs::{BlockCursor, Codec};

use crate::aug::Augmentation;
use crate::base::from_sorted;
use crate::entry::Element;
use crate::join::{join2, split_at};
use crate::node::{decode_flat_into, make_flat, make_regular, size, Node, Tree};
use crate::scratch::with_scratch;
use crate::stats;

/// First `i` entries (the paper's Take). `O(log n + B)` work.
pub(crate) fn take<E, A, C>(b: usize, t: &Tree<E, A, C>, i: usize) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    split_at(b, t.clone(), i).0
}

/// Everything after the first `i` entries.
pub(crate) fn drop_first<E, A, C>(b: usize, t: &Tree<E, A, C>, i: usize) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    split_at(b, t.clone(), i).1
}

/// The subsequence `[lo, hi)` by position.
pub(crate) fn subseq<E, A, C>(b: usize, t: &Tree<E, A, C>, lo: usize, hi: usize) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    debug_assert!(lo <= hi);
    let (_, suffix) = split_at(b, t.clone(), lo);
    split_at(b, suffix, hi - lo).0
}

/// Concatenation (the paper's Append): `O(log n + B)` work — the
/// headline win over `O(n)` array append in Fig. 2.
pub(crate) fn append<E, A, C>(b: usize, l: &Tree<E, A, C>, r: &Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    join2(b, None, l.clone(), r.clone())
}

/// Reverses the sequence. `O(n)` work, `O(log n)` span: children swap and
/// blocks re-encode reversed.
pub(crate) fn reverse<E, A, C>(t: &Tree<E, A, C>) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    let Some(node) = t else { return None };
    match &**node {
        Node::Regular {
            left,
            entry,
            right,
            size: sz,
            ..
        } => {
            let (rl, rr) = if *sz > 2048 {
                parlay::join(|| reverse(right), || reverse(left))
            } else {
                (reverse(right), reverse(left))
            };
            make_regular(rl, entry.clone(), rr)
        }
        _ => with_scratch(node.size(), |entries: &mut Vec<E>| {
            decode_flat_into(node, entries);
            entries.reverse();
            make_flat(entries)
        }),
    }
}

/// Index of the first entry satisfying `pred`, scanning geometrically
/// growing prefixes so a match at position `k` costs `O(k)` work (the
/// paper's FindFirst).
pub(crate) fn find_first<E, A, C, F>(t: &Tree<E, A, C>, pred: &F) -> Option<usize>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E) -> bool + Sync,
{
    find_first_rec(t, pred, 0)
}

fn find_first_rec<E, A, C, F>(t: &Tree<E, A, C>, pred: &F, offset: usize) -> Option<usize>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
    F: Fn(&E) -> bool + Sync,
{
    let node = t.as_ref()?;
    match &**node {
        Node::Regular {
            left, entry, right, ..
        } => {
            let lsize = size(left);
            find_first_rec(left, pred, offset)
                .or_else(|| pred(entry).then_some(offset + lsize))
                .or_else(|| find_first_rec(right, pred, offset + lsize + 1))
        }
        leaf => {
            // Stream the block with early exit — a hit at position `i`
            // decodes only `i + 1` entries and allocates nothing.
            stats::count_cursor_op();
            let block = leaf.leaf_block();
            let mut cur = C::cursor(&block);
            let mut i = 0;
            loop {
                let e = cur.peek()?;
                if pred(e) {
                    return Some(offset + i);
                }
                i += 1;
                cur.advance();
            }
        }
    }
}

/// Builds a sequence tree from a slice, preserving order.
pub(crate) fn from_slice<E, A, C>(b: usize, entries: &[E]) -> Tree<E, A, C>
where
    E: Element,
    A: Augmentation<E>,
    C: Codec<E>,
{
    from_sorted(b, entries)
}
